"""Model reusability on low-resource academic data (Sec. IV-I / Fig. 6).

Patents carry only owners, references, and text — no venues, keywords,
or affiliations. This example mirrors the paper's protocol: preferences
learned from January-October 2017 filings, citations from November-
December used for verification.

Run:  python examples/patent_recommendation.py
"""

from repro.analysis.metrics import ndcg_at_k
from repro.baselines import SVDRecommender, RippleNetRecommender
from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.data import corpus_statistics, load_patents
from repro.experiments.protocol import split_task_by_month


def main() -> None:
    corpus = load_patents()
    stats = corpus_statistics(corpus)
    print("patent corpus:", stats)
    print("(note: no keywords, venues, or affiliations — the academic "
          "network shrinks to patents + owners + time)\n")

    task = split_task_by_month(corpus, 11, n_users=15, candidate_size=20,
                               min_prefix=20, seed=0)
    print(f"{len(task.train_papers)} Jan-Oct patents for training, "
          f"{len(task.new_papers)} Nov-Dec patents as candidates, "
          f"{len(task.users)} inventors\n")

    for recommender in (SVDRecommender(seed=0), RippleNetRecommender(),
                        NPRecRecommender(NPRecConfig(seed=0))):
        recommender.fit(task.corpus, task.train_papers, task.new_papers)
        scores = []
        for user in task.users:
            ranked = recommender.rank(list(user.train_papers),
                                      user.candidate_set(20))
            scores.append(ndcg_at_k(ranked, set(user.relevant_ids), 20))
        print(f"{recommender.name:<12s} nDCG@20 = {sum(scores)/len(scores):.3f}")

    print("\nNPRec keeps working with only ownership + citation structure: "
          "the text channel and the remaining graph entities carry the "
          "interest and influence signal (the paper's reusability claim).")


if __name__ == "__main__":
    main()
