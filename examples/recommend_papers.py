"""Personalized new-paper recommendation: NPRec vs two baselines.

Builds the Sec. IV-E evaluation on an ACM-like corpus, fits NPRec,
NBCF, and RippleNet, and compares their rankings for a handful of
researchers — including the per-user hit positions that drive MRR.

Run:  python examples/recommend_papers.py
"""

from repro.analysis.metrics import ndcg_at_k, reciprocal_rank
from repro.baselines import NBCFRecommender, RippleNetRecommender
from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.data import load_acm
from repro.experiments.protocol import split_task_by_year


def main() -> None:
    corpus = load_acm(scale=0.6)
    task = split_task_by_year(corpus, 2014, n_users=15, candidate_size=20,
                              min_prefix=20, seed=0)
    print(f"{len(task.train_papers)} historical papers, "
          f"{len(task.new_papers)} new papers, {len(task.users)} test users\n")

    recommenders = [
        NBCFRecommender(),
        RippleNetRecommender(),
        NPRecRecommender(NPRecConfig(seed=0)),
    ]
    for recommender in recommenders:
        recommender.fit(task.corpus, task.train_papers, task.new_papers)

    print(f"{'method':<12s} {'nDCG@20':>8s} {'MRR':>8s}")
    for recommender in recommenders:
        ndcgs, mrrs = [], []
        for user in task.users:
            ranked = recommender.rank(list(user.train_papers),
                                      user.candidate_set(20))
            ndcgs.append(ndcg_at_k(ranked, set(user.relevant_ids), 20))
            mrrs.append(reciprocal_rank(ranked, set(user.relevant_ids)))
        print(f"{recommender.name:<12s} {sum(ndcgs)/len(ndcgs):8.3f} "
              f"{sum(mrrs)/len(mrrs):8.3f}")

    # Zoom into one user with the best model (NPRec).
    nprec = recommenders[-1]
    user = task.users[0]
    ranked = nprec.rank(list(user.train_papers), user.candidate_set(20))
    print(f"\nNPRec ranking for {user.author_id}:")
    for rank, pid in enumerate(ranked[:8], start=1):
        paper = task.corpus.get_paper(pid)
        marker = " <== cited" if pid in user.relevant_ids else ""
        print(f"  {rank:2d}. {paper.title[:52]}{marker}")


if __name__ == "__main__":
    main()
