"""Quickstart: the full pipeline in a couple of minutes.

1. Generate a Scopus-like synthetic corpus.
2. Train SEM (expert rules -> twin network -> subspace embeddings).
3. Show that subspace difference tracks citations.
4. Train NPRec and recommend new papers to one researcher.

Run:  python examples/quickstart.py
"""

from repro.analysis import spearman_correlation
from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.data import load_scopus
from repro.experiments.protocol import split_task_by_year
from repro.text import SUBSPACE_NAMES


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A Scopus-like corpus (deterministic, offline)
    # ------------------------------------------------------------------
    corpus = load_scopus(scale=0.5)
    print(f"corpus: {len(corpus)} papers, {len(corpus.authors)} authors, "
          f"fields={corpus.fields()}")

    # ------------------------------------------------------------------
    # 2. SEM on the computer-science slice
    # ------------------------------------------------------------------
    cs_papers = corpus.by_field("computer_science")
    sem = SubspaceEmbeddingMethod(SEMConfig(n_triplets=60, epochs=2, seed=0))
    sem.fit(cs_papers)
    print(f"\nSEM trained on {len(cs_papers)} CS papers; "
          f"final twin-network violation rate: "
          f"{sem.history_.violation_rates[-1]:.2f}")

    # ------------------------------------------------------------------
    # 3. Difference vs citations per subspace (Tab. I, one cell each)
    # ------------------------------------------------------------------
    citations = [p.citation_count for p in cs_papers]
    print("\nSpearman(subspace difference, citations) on CS:")
    for k, role in enumerate(SUBSPACE_NAMES):
        rho = spearman_correlation(sem.outlier_scores(cs_papers, k), citations)
        print(f"  {role:<10s} {rho:+.3f}")
    print("(computer science should peak on the method subspace)")

    # ------------------------------------------------------------------
    # 4. NPRec: recommend new papers to one researcher
    # ------------------------------------------------------------------
    task = split_task_by_year(corpus, 2014, n_users=5, candidate_size=20,
                              min_prefix=10, seed=0)
    recommender = NPRecRecommender(NPRecConfig(
        seed=0, epochs=3, max_positives=80,
        sem=SEMConfig(n_triplets=40, epochs=1)))
    recommender.fit(task.corpus, task.train_papers, task.new_papers)

    user = task.users[0]
    ranked = recommender.rank(list(user.train_papers), user.candidate_set(10))
    print(f"\ntop-5 recommendations for {user.author_id} "
          f"(interests: {len(user.train_papers)} historical papers):")
    for rank, pid in enumerate(ranked[:5], start=1):
        paper = task.corpus.get_paper(pid)
        hit = "  <-- actually cited!" if pid in user.relevant_ids else ""
        print(f"  {rank}. [{paper.year}] {paper.title[:50]}{hit}")


if __name__ == "__main__":
    main()
