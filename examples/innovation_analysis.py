"""Innovation analysis across scientific disciplines (Sec. III-E/F/G).

Reproduces the paper's empirical story on a Scopus-like corpus:

* in computer science, *method* novelty attracts citations;
* in medicine, *result* novelty does;
* in sociology, *background* novelty does;

and shows the most/least "different" papers per discipline — the
difference ranking that underpins new-paper quality evaluation.

Run:  python examples/innovation_analysis.py
"""

import numpy as np

from repro.analysis import linear_regression, spearman_correlation
from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.data import load_scopus
from repro.text import SUBSPACE_NAMES


def main() -> None:
    corpus = load_scopus()
    print(f"analysing {len(corpus)} papers across {corpus.fields()}\n")

    for field in corpus.fields():
        papers = corpus.by_field(field)
        citations = [p.citation_count for p in papers]
        sem = SubspaceEmbeddingMethod(SEMConfig(seed=0)).fit(papers)

        print(f"--- {field} ({len(papers)} papers) ---")
        best_role, best_rho = None, -1.0
        for k, role in enumerate(SUBSPACE_NAMES):
            scores = sem.outlier_scores(papers, k)
            rho = spearman_correlation(scores, citations)
            trend = linear_regression(np.log1p(citations), scores)
            print(f"  {role:<10s} rho={rho:+.3f}  slope={trend.slope:+.3f}")
            if rho > best_rho:
                best_role, best_rho = role, rho
        print(f"  => {field} rewards {best_role} innovation\n")

        # The difference ranking: most novel papers first (Sec. III-E).
        k_best = SUBSPACE_NAMES.index(best_role)
        ranking = sem.difference_ranking(papers, k_best)
        print(f"  most different papers in the {best_role} subspace:")
        for pid in ranking[:3]:
            paper = corpus.get_paper(pid)
            print(f"    [{paper.citation_count:4d} citations] {paper.title[:48]}")
        print(f"  least different:")
        for pid in ranking[-2:]:
            paper = corpus.get_paper(pid)
            print(f"    [{paper.citation_count:4d} citations] {paper.title[:48]}")
        print()


if __name__ == "__main__":
    main()
