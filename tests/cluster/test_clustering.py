"""Tests for k-means, GMM+BIC, LOF, and t-SNE."""

import numpy as np
import pytest

from repro.cluster import (
    GaussianMixture,
    KMeans,
    kmeans_plus_plus,
    local_outlier_factor,
    normalized_lof,
    select_components_bic,
    tsne,
)
from repro.errors import NotFittedError


def blobs(n_per=40, centers=((0, 0), (8, 8), (-8, 8)), std=0.7, seed=0):
    rng = np.random.default_rng(seed)
    data, labels = [], []
    for i, centre in enumerate(centers):
        data.append(rng.normal(centre, std, size=(n_per, len(centre))))
        labels.extend([i] * n_per)
    return np.vstack(data), np.array(labels)


def cluster_purity(true_labels, predicted):
    total = 0
    for cluster in np.unique(predicted):
        members = true_labels[predicted == cluster]
        total += np.bincount(members).max()
    return total / len(true_labels)


class TestKMeans:
    def test_recovers_blobs(self):
        data, labels = blobs()
        km = KMeans(3, seed=0).fit(data)
        assert cluster_purity(labels, km.labels_) > 0.95

    def test_predict_consistent_with_fit(self):
        data, _ = blobs()
        km = KMeans(3, seed=0).fit(data)
        np.testing.assert_array_equal(km.predict(data), km.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))

    def test_plus_plus_spreads_centres(self):
        data, _ = blobs()
        centres = kmeans_plus_plus(data, 3, np.random.default_rng(0))
        d01 = np.linalg.norm(centres[0] - centres[1])
        assert d01 > 3.0

    def test_identical_points(self):
        data = np.ones((10, 2))
        km = KMeans(2, seed=0).fit(data)
        assert km.inertia_ == pytest.approx(0.0)


class TestGMM:
    def test_recovers_blobs(self):
        data, labels = blobs()
        gmm = GaussianMixture(3, seed=0).fit(data)
        assert cluster_purity(labels, gmm.predict(data)) > 0.95

    def test_responsibilities_sum_to_one(self):
        data, _ = blobs()
        gmm = GaussianMixture(3, seed=0).fit(data)
        np.testing.assert_allclose(gmm.predict_proba(data).sum(axis=1), 1.0)

    def test_log_likelihood_improves_with_right_k(self):
        data, _ = blobs()
        ll1 = GaussianMixture(1, seed=0).fit(data).score(data)
        ll3 = GaussianMixture(3, seed=0).fit(data).score(data)
        assert ll3 > ll1

    def test_bic_selects_true_component_count(self):
        data, _ = blobs(n_per=60)
        best = select_components_bic(data, max_components=6, seed=0)
        assert best.n_components == 3

    def test_bic_single_cluster(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 2))
        best = select_components_bic(data, max_components=4, seed=0)
        assert best.n_components <= 2

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GaussianMixture(2).predict(np.zeros((3, 2)))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            GaussianMixture(5).fit(np.zeros((2, 2)))

    def test_weights_normalised(self):
        data, _ = blobs()
        gmm = GaussianMixture(3, seed=0).fit(data)
        assert gmm.weights_.sum() == pytest.approx(1.0)


class TestLOF:
    def test_outlier_scores_higher(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, size=(60, 2))
        outlier = np.array([[12.0, 12.0]])
        scores = local_outlier_factor(np.vstack([inliers, outlier]), k=10)
        assert scores[-1] > scores[:-1].max()
        assert scores[-1] > 2.0

    def test_uniform_cluster_scores_near_one(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(size=(100, 2))
        scores = local_outlier_factor(data, k=10)
        assert 0.9 < np.median(scores) < 1.2

    def test_duplicates_handled(self):
        data = np.zeros((20, 2))
        scores = local_outlier_factor(data, k=5)
        np.testing.assert_allclose(scores, 1.0)

    def test_k_clamped(self):
        data = np.random.default_rng(0).normal(size=(5, 2))
        scores = local_outlier_factor(data, k=100)
        assert scores.shape == (5,)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            local_outlier_factor(np.zeros((1, 2)), k=3)
        with pytest.raises(ValueError):
            local_outlier_factor(np.zeros(5), k=3)

    def test_normalized_in_unit_interval(self):
        data = np.random.default_rng(2).normal(size=(50, 3))
        scores = normalized_lof(data, k=8)
        assert scores.min() == pytest.approx(0.0)
        assert scores.max() == pytest.approx(1.0)

    def test_normalized_constant_input(self):
        np.testing.assert_array_equal(normalized_lof(np.zeros((10, 2)), k=3),
                                      np.zeros(10))


class TestTSNE:
    def test_preserves_cluster_structure(self):
        data, labels = blobs(n_per=25, std=0.5)
        embedding = tsne(data, n_iter=250, seed=0)
        assert embedding.shape == (75, 2)
        # within-cluster distances should be smaller than between-cluster
        within = []
        between = []
        for i in range(0, 75, 5):
            for j in range(i + 1, 75, 7):
                d = np.linalg.norm(embedding[i] - embedding[j])
                (within if labels[i] == labels[j] else between).append(d)
        assert np.mean(within) < np.mean(between)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            tsne(np.zeros(5))
        with pytest.raises(ValueError):
            tsne(np.zeros((10, 2)), perplexity=0)

    def test_deterministic(self):
        data, _ = blobs(n_per=10)
        a = tsne(data, n_iter=50, seed=3)
        b = tsne(data, n_iter=50, seed=3)
        np.testing.assert_array_equal(a, b)
