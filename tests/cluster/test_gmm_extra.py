"""Extra GMM/BIC/t-SNE coverage: likelihood monotonicity and robustness."""

import numpy as np
import pytest

from repro.cluster import GaussianMixture, select_components_bic, tsne


class TestEMProperties:
    def test_em_increases_likelihood_with_iterations(self):
        rng = np.random.default_rng(0)
        data = np.vstack([rng.normal(0, 1, (60, 2)), rng.normal(6, 1, (60, 2))])
        short = GaussianMixture(2, max_iter=1, seed=0).fit(data)
        long = GaussianMixture(2, max_iter=50, seed=0).fit(data)
        assert long.score(data) >= short.score(data) - 1e-6

    def test_bic_penalises_complexity_on_noise(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(80, 2))
        bic1 = GaussianMixture(1, seed=0).fit(data).bic(data)
        bic6 = GaussianMixture(6, seed=0).fit(data).bic(data)
        assert bic1 < bic6  # lower = better; 6 comps overfit pure noise

    def test_variance_floor_respected(self):
        data = np.zeros((10, 2))
        data[0] = [1e-12, 0]
        gmm = GaussianMixture(2, reg_covar=1e-6, seed=0).fit(data)
        assert np.all(gmm.variances_ >= 1e-6 - 1e-15)

    def test_select_components_deterministic(self):
        rng = np.random.default_rng(2)
        data = np.vstack([rng.normal(0, 1, (40, 2)), rng.normal(8, 1, (40, 2))])
        a = select_components_bic(data, max_components=4, seed=3)
        b = select_components_bic(data, max_components=4, seed=3)
        assert a.n_components == b.n_components
        np.testing.assert_allclose(a.means_, b.means_)

    def test_single_point_cluster_count_capped(self):
        data = np.random.default_rng(3).normal(size=(3, 2))
        best = select_components_bic(data, max_components=10, seed=0)
        assert best.n_components <= 3


class TestTsneExtra:
    def test_perplexity_clamped_for_tiny_inputs(self):
        data = np.random.default_rng(0).normal(size=(5, 3))
        out = tsne(data, perplexity=50.0, n_iter=30, seed=0)
        assert out.shape == (5, 2)
        assert np.isfinite(out).all()

    def test_output_centred(self):
        data = np.random.default_rng(1).normal(size=(20, 4)) + 10
        out = tsne(data, n_iter=50, seed=0)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_components_parameter(self):
        data = np.random.default_rng(2).normal(size=(12, 4))
        out = tsne(data, n_components=3, n_iter=30, seed=0)
        assert out.shape == (12, 3)
