"""The vectorized LOF ratio step must match the per-row reference loop
exactly (same elementwise operations, same mean) — including the
duplicate-point inf/inf path that defines degenerate ratios as 1.0."""

import numpy as np
import pytest

from repro.cluster.lof import _pairwise_distances, local_outlier_factor


def reference_lof(data, k=10):
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    k = min(k, n - 1)
    distances = _pairwise_distances(data)
    order = np.argsort(distances, axis=1)
    neighbours = order[:, 1:k + 1]
    k_distance = distances[np.arange(n), neighbours[:, -1]]
    reach = np.maximum(k_distance[neighbours],
                       distances[np.arange(n)[:, None], neighbours])
    lrd_denominator = reach.mean(axis=1)
    with np.errstate(divide="ignore"):
        lrd = np.where(lrd_denominator > 0, 1.0 / lrd_denominator, np.inf)
    scores = np.empty(n)
    with np.errstate(invalid="ignore", divide="ignore"):
        for i in range(n):
            ratios = lrd[neighbours[i]] / lrd[i]
            ratios = np.where(np.isfinite(ratios), ratios, 1.0)
            scores[i] = ratios.mean()
    return scores


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [3, 10])
def test_matches_reference_loop_exactly(seed, k):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(80, 6))
    assert np.array_equal(local_outlier_factor(data, k=k),
                          reference_lof(data, k=k))


def test_duplicate_points_match_reference():
    # duplicated rows give zero reach distances -> lrd = inf -> inf/inf
    rng = np.random.default_rng(3)
    base = rng.normal(size=(10, 4))
    data = np.vstack([base, base, base, rng.normal(size=(5, 4))])
    got = local_outlier_factor(data, k=5)
    assert np.array_equal(got, reference_lof(data, k=5))
    assert np.isfinite(got).all()


def test_outlier_still_flagged():
    rng = np.random.default_rng(4)
    data = np.vstack([rng.normal(size=(60, 3)),
                      np.full((1, 3), 25.0)])
    scores = local_outlier_factor(data, k=8)
    assert scores[-1] == scores.max()
    assert scores[-1] > 2.0
