"""Tests for the Corpus container and its integrity checks."""

import pytest

from repro.data import Author, Corpus, Paper, Venue
from repro.errors import DataError


def paper(pid, year=2015, refs=(), authors=(), venue=None):
    return Paper(id=pid, title=pid, abstract="One sentence.", year=year,
                 field="cs", references=tuple(refs), authors=tuple(authors),
                 venue=venue)


class TestCorpusBasics:
    def test_duplicate_paper_rejected(self):
        with pytest.raises(DataError):
            Corpus("c", [paper("p1"), paper("p1")])

    def test_len_iter_contains(self):
        corpus = Corpus("c", [paper("p1"), paper("p2")])
        assert len(corpus) == 2
        assert "p1" in corpus
        assert {p.id for p in corpus} == {"p1", "p2"}

    def test_get_paper_unknown(self):
        corpus = Corpus("c", [paper("p1")])
        with pytest.raises(DataError):
            corpus.get_paper("nope")

    def test_get_author_venue(self):
        corpus = Corpus("c", [paper("p1", authors=("a1",), venue="v1")],
                        authors=[Author("a1", "A")], venues=[Venue("v1", "V")])
        assert corpus.get_author("a1").name == "A"
        assert corpus.get_venue("v1").name == "V"
        with pytest.raises(DataError):
            corpus.get_author("zz")
        with pytest.raises(DataError):
            corpus.get_venue("zz")


class TestIndexes:
    def test_citers_and_in_degree(self):
        corpus = Corpus("c", [paper("p1", 2010), paper("p2", 2012, refs=("p1",)),
                              paper("p3", 2013, refs=("p1",))])
        assert corpus.in_degree("p1") == 2
        assert {p.id for p in corpus.citers_of("p1")} == {"p2", "p3"}
        assert corpus.in_degree("p3") == 0

    def test_papers_of_author(self):
        corpus = Corpus("c", [paper("p1", authors=("a1",)), paper("p2", authors=("a1", "a2"))],
                        authors=[Author("a1", "A"), Author("a2", "B")])
        assert {p.id for p in corpus.papers_of_author("a1")} == {"p1", "p2"}
        assert corpus.papers_of_author("ghost") == []

    def test_split_by_year(self):
        corpus = Corpus("c", [paper("p1", 2010), paper("p2", 2014), paper("p3", 2016)])
        before, after = corpus.split_by_year(2014)
        assert [p.id for p in before] == ["p1"]
        assert {p.id for p in after} == {"p2", "p3"}

    def test_by_year_window(self):
        corpus = Corpus("c", [paper("p1", 2010), paper("p2", 2014)])
        assert [p.id for p in corpus.by_year(2011)] == ["p2"]
        assert [p.id for p in corpus.by_year(None, 2011)] == ["p1"]


class TestValidation:
    def test_dangling_reference(self):
        with pytest.raises(DataError):
            Corpus("c", [paper("p1", refs=("ghost",))])

    def test_future_citation(self):
        with pytest.raises(DataError):
            Corpus("c", [paper("p1", 2020), paper("p2", 2010, refs=("p1",))])

    def test_unknown_author(self):
        with pytest.raises(DataError):
            Corpus("c", [paper("p1", authors=("ghost",))], authors=[Author("a1", "A")])

    def test_unknown_venue(self):
        with pytest.raises(DataError):
            Corpus("c", [paper("p1", venue="ghost")], venues=[Venue("v1", "V")])

    def test_non_strict_allows_dangling(self):
        corpus = Corpus("c", [paper("p1", refs=("ghost",))], strict=False)
        assert len(corpus) == 1
