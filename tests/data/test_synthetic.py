"""Tests for the synthetic corpus generators — the planted-signal contract."""

import numpy as np
import pytest

from repro.analysis import spearman_correlation
from repro.data import (
    DISCIPLINE_PROFILES,
    SyntheticCorpusConfig,
    corpus_statistics,
    generate_corpus,
    load_acm,
    load_patents,
    load_pubmed_rct,
    load_scopus,
)
from repro.text import SUBSPACE_NAMES, split_sentences


@pytest.fixture(scope="module")
def scopus():
    return load_scopus(scale=0.5, seed=1)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(n_papers=0)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(year_min=2020, year_max=2010)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(taxonomy_kind="weird")
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(disciplines=())
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(keywords_min=9, keywords_max=2)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(avg_sentences=1)

    def test_scaled(self):
        config = SyntheticCorpusConfig(n_papers=100, n_authors=50)
        bigger = config.scaled(2.0)
        assert bigger.n_papers == 200
        assert bigger.n_authors == 100
        with pytest.raises(ValueError):
            config.scaled(0)


class TestGeneration:
    def test_determinism(self):
        config = SyntheticCorpusConfig(n_papers=40, n_authors=20, seed=7)
        a = generate_corpus(config)
        b = generate_corpus(config)
        assert [p.id for p in a] == [p.id for p in b]
        assert [p.abstract for p in a] == [p.abstract for p in b]
        assert [p.citation_count for p in a] == [p.citation_count for p in b]

    def test_seed_changes_output(self):
        a = generate_corpus(SyntheticCorpusConfig(n_papers=40, n_authors=20, seed=1))
        b = generate_corpus(SyntheticCorpusConfig(n_papers=40, n_authors=20, seed=2))
        assert [p.abstract for p in a] != [p.abstract for p in b]

    def test_referential_integrity(self, scopus):
        scopus.validate()  # raises on violation

    def test_sentence_labels_align(self, scopus):
        for paper in scopus.papers[:50]:
            assert len(split_sentences(paper.abstract)) == len(paper.sentence_labels)
            assert set(paper.sentence_labels) <= {0, 1, 2}

    def test_labels_cover_all_roles(self, scopus):
        for paper in scopus.papers[:50]:
            assert set(paper.sentence_labels) == {0, 1, 2}

    def test_novelty_in_unit_interval(self, scopus):
        for paper in scopus.papers:
            assert set(paper.novelty) == set(SUBSPACE_NAMES)
            for value in paper.novelty.values():
                assert 0.0 <= value <= 1.0

    def test_references_topic_locality(self, scopus):
        # most references should stay within the citing paper's field
        same_field = 0
        total = 0
        for paper in scopus.papers:
            for ref in paper.references:
                total += 1
                same_field += int(scopus.get_paper(ref).field == paper.field)
        assert total > 0
        assert same_field / total > 0.7

    def test_planted_profile_recovered(self, scopus):
        """Citations must correlate most with the discipline's top subspace."""
        for field, profile in DISCIPLINE_PROFILES.items():
            papers = scopus.by_field(field)
            rhos = {
                role: spearman_correlation(
                    [p.novelty[role] for p in papers],
                    [p.citation_count for p in papers],
                )
                for role in SUBSPACE_NAMES
            }
            top_role = max(profile, key=profile.get)
            low_role = min(profile, key=profile.get)
            # The profile's dominant subspace must carry strong signal and
            # clearly dominate the weakest one (exact ordering of close
            # middle weights is sampling noise at test scale).
            assert rhos[top_role] > 0.35, (field, rhos)
            assert rhos[top_role] > rhos[low_role] + 0.15, (field, rhos)
            assert min(rhos, key=rhos.get) == low_role, (field, rhos)

    def test_citation_heavy_tail(self):
        corpus = load_acm(scale=0.5, seed=4)
        cites = np.array([p.citation_count for p in corpus])
        assert cites.max() > 300  # Table II needs a high-cited stratum
        assert (cites < 5).sum() > 10  # and a low-cited stratum


class TestLoaders:
    def test_acm_is_acm_shaped(self):
        corpus = load_acm(scale=0.3, seed=0)
        stats = corpus_statistics(corpus)
        assert stats["corpus"] == "acm"
        assert stats["affiliations"] != "-"
        assert corpus.papers[0].category_path  # ACM CCS path present
        assert len(corpus.papers[0].category_path) == 3

    def test_scopus_lacks_affiliations(self):
        stats = corpus_statistics(load_scopus(scale=0.2, seed=0))
        assert stats["affiliations"] == "-"
        assert stats["classes"] == 3

    def test_pubmed_long_abstracts(self):
        corpus = load_pubmed_rct(scale=0.2, seed=0)
        lengths = [len(split_sentences(p.abstract)) for p in corpus]
        assert np.mean(lengths) > 8

    def test_patents_low_resource(self):
        corpus = load_patents(scale=0.3, seed=0)
        for paper in corpus.papers[:20]:
            assert paper.is_low_resource
            assert paper.month is not None
            assert paper.year == 2017

    def test_statistics_table_fields(self):
        stats = corpus_statistics(load_patents(scale=0.2, seed=0))
        assert stats["keywords"] == "-"
        assert stats["venues"] == "-"
