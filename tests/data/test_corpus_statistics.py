"""Statistical sanity checks on generated corpora (scholarly realism)."""

import numpy as np
import pytest

from repro.data import load_acm, load_scopus


@pytest.fixture(scope="module")
def acm():
    return load_acm(seed=15)


class TestCitationGraphShape:
    def test_in_degree_heavy_tailed(self, acm):
        degrees = sorted((acm.in_degree(p.id) for p in acm), reverse=True)
        degrees = np.array(degrees, dtype=float)
        top_share = degrees[: len(degrees) // 10].sum() / max(degrees.sum(), 1)
        # top 10% of papers should hold a disproportionate share of
        # in-corpus citations (preferential attachment)
        assert top_share > 0.25

    def test_references_point_backwards(self, acm):
        for paper in acm.papers[:100]:
            for ref in paper.references:
                assert acm.get_paper(ref).year <= paper.year

    def test_citation_counts_exceed_in_degree(self, acm):
        # total citations include external ones, so they dominate in-degree
        total = sum(p.citation_count for p in acm)
        internal = sum(acm.in_degree(p.id) for p in acm)
        assert total >= internal


class TestAuthorship:
    def test_productivity_power_law(self, acm):
        counts = sorted((len(acm.papers_of_author(a.id)) for a in acm.authors),
                        reverse=True)
        counts = np.array(counts, dtype=float)
        assert counts[0] >= 4 * max(1.0, np.median(counts))

    def test_coauthor_groups_recurrent(self, acm):
        """Sticky collaboration: some author pair co-publishes repeatedly."""
        pair_counts: dict[tuple[str, str], int] = {}
        for paper in acm:
            team = sorted(paper.authors)
            for i, a in enumerate(team):
                for b in team[i + 1:]:
                    pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
        assert pair_counts
        assert max(pair_counts.values()) >= 3

    def test_author_topics_focused(self, acm):
        """Prolific authors publish mostly in one leaf topic."""
        focused = 0
        prolific = 0
        for author in acm.authors:
            papers = acm.papers_of_author(author.id)
            if len(papers) < 5:
                continue
            prolific += 1
            topics = [p.category_path[-1] for p in papers]
            modal_share = max(topics.count(t) for t in set(topics)) / len(topics)
            focused += int(modal_share >= 0.5)
        assert prolific > 0
        assert focused / prolific > 0.7


class TestTextShape:
    def test_abstract_lengths_match_config(self):
        scopus = load_scopus(seed=16)
        from repro.text import split_sentences
        lengths = [len(split_sentences(p.abstract)) for p in scopus]
        assert 4.0 < np.mean(lengths) < 8.5  # config avg 5.92

    def test_keyword_vocab_shared_within_topics(self, acm):
        by_topic: dict[str, set] = {}
        for paper in acm:
            by_topic.setdefault(paper.category_path[-1], set()).update(paper.keywords)
        # keyword pools are topic-scoped: global vocabulary is much larger
        # than any per-topic vocabulary
        sizes = [len(v) for v in by_topic.values()]
        total = len({kw for v in by_topic.values() for kw in v})
        assert total > 2 * max(sizes)
