"""Tests for corpus JSON persistence."""

import os

import pytest

import repro.data.io as io_mod
from repro.data import (
    corpus_from_dict,
    corpus_to_dict,
    load_corpus,
    load_scopus,
    save_corpus,
)
from repro.errors import DataError, InjectedFault
from repro.resilience import faults


@pytest.fixture(scope="module")
def corpus():
    return load_scopus(scale=0.15, seed=33)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_papers(self, corpus):
        restored = corpus_from_dict(corpus_to_dict(corpus))
        assert len(restored) == len(corpus)
        original = corpus.papers[0]
        copy = restored.get_paper(original.id)
        assert copy.abstract == original.abstract
        assert copy.references == original.references
        assert copy.sentence_labels == original.sentence_labels
        assert copy.citation_count == original.citation_count

    def test_file_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        restored = load_corpus(path)
        assert restored.name == corpus.name
        assert len(restored.authors) == len(corpus.authors)
        assert len(restored.venues) == len(corpus.venues)

    def test_novelty_not_serialised(self, corpus):
        """Planted ground truth stays out of the on-disk schema: real data
        loaded through this path must not be expected to carry it."""
        restored = corpus_from_dict(corpus_to_dict(corpus))
        assert restored.papers[0].novelty == {}

    def test_strict_validation_applies(self, corpus):
        payload = corpus_to_dict(corpus)
        payload["papers"][0]["references"] = ["ghost-id"]
        with pytest.raises(DataError):
            corpus_from_dict(payload, strict=True)
        relaxed = corpus_from_dict(payload, strict=False)
        assert len(relaxed) == len(corpus)

    def test_split_still_works_after_reload(self, corpus, tmp_path):
        path = tmp_path / "c.json"
        save_corpus(corpus, path)
        restored = load_corpus(path)
        before, after = restored.split_by_year(2014)
        assert len(before) + len(after) == len(restored)


class TestAtomicSave:
    def test_crash_during_rename_preserves_existing_file(self, corpus,
                                                         tmp_path,
                                                         monkeypatch):
        """A kill mid-save leaves the previous corpus intact on disk."""
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        original_bytes = path.read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(io_mod.os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            save_corpus(corpus, path)
        monkeypatch.undo()

        assert path.read_bytes() == original_bytes
        assert load_corpus(path).name == corpus.name

    def test_no_temp_file_left_behind(self, corpus, tmp_path, monkeypatch):
        path = tmp_path / "corpus.json"
        monkeypatch.setattr(io_mod.os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(
                                OSError("boom")))
        with pytest.raises(OSError):
            save_corpus(corpus, path)
        monkeypatch.undo()
        assert os.listdir(tmp_path) == []


class TestErrorWrapping:
    def test_corrupt_json_named_in_dataerror(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"papers": [tru', encoding="utf-8")
        with pytest.raises(DataError, match=str(path)):
            load_corpus(path)

    def test_missing_file_raises_filenotfound(self, tmp_path):
        # A missing path is an environment problem, not a schema one —
        # the exception type must stay distinguishable (and unretried).
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path / "absent.json")

    def test_missing_payload_key_named(self, corpus):
        payload = corpus_to_dict(corpus)
        del payload["papers"]
        with pytest.raises(DataError, match="'papers'"):
            corpus_from_dict(payload)

    def test_missing_paper_key_names_entry_and_key(self, corpus):
        payload = corpus_to_dict(corpus)
        paper = payload["papers"][2]
        del paper["abstract"]
        with pytest.raises(DataError) as err:
            corpus_from_dict(payload)
        assert "'abstract'" in str(err.value)
        assert "entry #2" in str(err.value)

    def test_file_load_error_names_path_and_key(self, corpus, tmp_path):
        path = tmp_path / "schema.json"
        save_corpus(corpus, path)
        import json
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["papers"][0]["title"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(DataError) as err:
            load_corpus(path)
        assert str(path) in str(err.value)
        assert "'title'" in str(err.value)


class TestLoadRetry:
    def test_transient_injected_fault_is_retried(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        # Seed 1's first uniform draw fires at p=0.5; its second doesn't,
        # so the internal 3-attempt retry recovers the read.
        import numpy as np
        seed = next(s for s in range(100)
                    if (lambda r: r.random() < 0.5 <= r.random())
                    (np.random.default_rng(s)))
        with faults.inject(f"data.load_corpus:0.5:{seed}"):
            restored = load_corpus(path)
        assert restored.name == corpus.name

    def test_persistent_injected_fault_exhausts(self, corpus, tmp_path):
        from repro.errors import RetryExhaustedError
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        with faults.inject("data.load_corpus:1.0"):
            with pytest.raises(RetryExhaustedError) as err:
                load_corpus(path)
        assert all(isinstance(a.error, InjectedFault)
                   for a in err.value.attempt_log)
