"""Tests for corpus JSON persistence."""

import pytest

from repro.data import (
    corpus_from_dict,
    corpus_to_dict,
    load_corpus,
    load_scopus,
    save_corpus,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def corpus():
    return load_scopus(scale=0.15, seed=33)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_papers(self, corpus):
        restored = corpus_from_dict(corpus_to_dict(corpus))
        assert len(restored) == len(corpus)
        original = corpus.papers[0]
        copy = restored.get_paper(original.id)
        assert copy.abstract == original.abstract
        assert copy.references == original.references
        assert copy.sentence_labels == original.sentence_labels
        assert copy.citation_count == original.citation_count

    def test_file_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        restored = load_corpus(path)
        assert restored.name == corpus.name
        assert len(restored.authors) == len(corpus.authors)
        assert len(restored.venues) == len(corpus.venues)

    def test_novelty_not_serialised(self, corpus):
        """Planted ground truth stays out of the on-disk schema: real data
        loaded through this path must not be expected to carry it."""
        restored = corpus_from_dict(corpus_to_dict(corpus))
        assert restored.papers[0].novelty == {}

    def test_strict_validation_applies(self, corpus):
        payload = corpus_to_dict(corpus)
        payload["papers"][0]["references"] = ["ghost-id"]
        with pytest.raises(DataError):
            corpus_from_dict(payload, strict=True)
        relaxed = corpus_from_dict(payload, strict=False)
        assert len(relaxed) == len(corpus)

    def test_split_still_works_after_reload(self, corpus, tmp_path):
        path = tmp_path / "c.json"
        save_corpus(corpus, path)
        restored = load_corpus(path)
        before, after = restored.split_by_year(2014)
        assert len(before) + len(after) == len(restored)
