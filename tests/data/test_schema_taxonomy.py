"""Tests for record schema and the classification tree."""

import pytest

from repro.data import (
    ACM_CCS_TOP_LEVEL,
    Author,
    ClassificationTree,
    Paper,
    Venue,
    acm_ccs_like,
    discipline_tree,
)
from repro.errors import DataError


def make_paper(**overrides):
    base = dict(id="p1", title="T", abstract="A sentence.", year=2015,
                field="computer_science")
    base.update(overrides)
    return Paper(**base)


class TestSchema:
    def test_paper_defaults(self):
        paper = make_paper()
        assert paper.citation_count == 0
        assert paper.references == ()
        assert paper.is_low_resource  # no venue and no keywords

    def test_low_resource_detection(self):
        patent = make_paper(venue=None, keywords=())
        assert patent.is_low_resource
        normal = make_paper(venue="v1", keywords=("k",))
        assert not normal.is_low_resource

    def test_rejects_self_citation(self):
        with pytest.raises(ValueError):
            make_paper(references=("p1",))

    def test_rejects_negative_citations(self):
        with pytest.raises(ValueError):
            make_paper(citation_count=-1)

    def test_rejects_bad_month(self):
        with pytest.raises(ValueError):
            make_paper(month=13)
        assert make_paper(month=12).month == 12

    def test_rejects_empty_ids(self):
        with pytest.raises(ValueError):
            Author(id="", name="X")
        with pytest.raises(ValueError):
            Venue(id="", name="X")
        with pytest.raises(ValueError):
            make_paper(id="")


class TestClassificationTree:
    def test_add_and_path(self):
        tree = ClassificationTree()
        tree.add("cs")
        tree.add("ml", parent="cs")
        tree.add("gnn", parent="ml")
        assert tree.path_to_root("gnn") == ("cs", "ml", "gnn")
        assert tree.level("gnn") == 3
        assert tree.depth() == 3

    def test_duplicate_rejected(self):
        tree = ClassificationTree()
        tree.add("cs")
        with pytest.raises(DataError):
            tree.add("cs")

    def test_unknown_parent_rejected(self):
        tree = ClassificationTree()
        with pytest.raises(DataError):
            tree.add("x", parent="nope")

    def test_unknown_query_rejected(self):
        tree = ClassificationTree()
        with pytest.raises(DataError):
            tree.path_to_root("ghost")

    def test_leaves(self):
        tree = ClassificationTree()
        tree.add("a")
        tree.add("b", parent="a")
        assert tree.leaves() == ("b",)

    def test_invalid_names(self):
        tree = ClassificationTree()
        with pytest.raises(ValueError):
            tree.add("")
        with pytest.raises(ValueError):
            tree.add("root")


class TestFactories:
    def test_acm_ccs_like_structure(self):
        tree = acm_ccs_like(areas_per_top=2, topics_per_area=3, seed=0)
        for top in ACM_CCS_TOP_LEVEL:
            assert top in tree
            assert len(tree.children(top)) == 2
        assert tree.depth() == 3
        assert len(tree.leaves()) == len(ACM_CCS_TOP_LEVEL) * 2 * 3

    def test_acm_ccs_deterministic(self):
        a = acm_ccs_like(seed=5)
        b = acm_ccs_like(seed=5)
        assert a.leaves() == b.leaves()

    def test_discipline_tree(self):
        tree = discipline_tree(("cs", "med"), topics_per_discipline=3)
        assert len(tree.leaves()) == 6
        assert tree.path_to_root(tree.leaves()[0])[0] == "cs"

    def test_invalid_factory_args(self):
        with pytest.raises(ValueError):
            acm_ccs_like(areas_per_top=0)
        with pytest.raises(ValueError):
            discipline_tree(("cs",), topics_per_discipline=0)
