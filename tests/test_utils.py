"""Tests for the shared utility helpers (RNG management, validation)."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.utils import (
    RngMixin,
    as_generator,
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
    spawn_generators,
)


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawned_streams_differ(self):
        children = spawn_generators(0, 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
        assert spawn_generators(0, 0) == []


class TestRngMixin:
    class Component(RngMixin):
        def __init__(self, seed):
            self._seed = seed

    def test_lazy_and_stable(self):
        comp = self.Component(7)
        rng = comp.rng
        assert comp.rng is rng

    def test_reseed(self):
        comp = self.Component(7)
        first = comp.rng.random()
        comp.reseed(7)
        assert comp.rng.random() == first


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        check_positive("x", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.5)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                check_probability("p", bad)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_fitted(self):
        class Model:
            weights_ = None

        with pytest.raises(NotFittedError):
            check_fitted(Model(), "weights_")
        model = Model()
        model.weights_ = [1]
        check_fitted(model, "weights_")
