"""Tests for the SVG chart writer and the figure renderers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz import grouped_bars_svg, save_svg, scatter_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestScatter:
    def test_well_formed_xml(self):
        svg = scatter_svg([1, 2, 3], [4, 5, 6], title="t", x_label="x",
                          y_label="y")
        root = parse(svg)
        assert root.tag.endswith("svg")

    def test_point_count(self):
        svg = scatter_svg(np.arange(10), np.arange(10) ** 2)
        root = parse(svg)
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == 10

    def test_trend_line_rendered(self):
        base = scatter_svg([0, 1, 2], [0, 1, 2])
        with_trend = scatter_svg([0, 1, 2], [0, 1, 2], trend=(1.0, 0.0))
        lines_base = parse(base).findall(".//{http://www.w3.org/2000/svg}line")
        lines_trend = parse(with_trend).findall(
            ".//{http://www.w3.org/2000/svg}line")
        assert len(lines_trend) == len(lines_base) + 1

    def test_group_colours(self):
        svg = scatter_svg([1, 2, 3, 4], [1, 2, 3, 4], labels=[0, 0, 1, 1])
        fills = {e.get("fill") for e in parse(svg).iter()
                 if e.tag.endswith("circle")}
        assert len(fills) == 2

    def test_constant_values_safe(self):
        svg = scatter_svg([1, 1, 1], [2, 2, 2])
        assert "NaN" not in svg and "nan" not in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_svg([], [])
        with pytest.raises(ValueError):
            scatter_svg([1, 2], [1])

    def test_title_escaped(self):
        svg = scatter_svg([1, 2], [1, 2], title="a < b & c")
        assert "a &lt; b &amp; c" in svg
        parse(svg)  # still well-formed


class TestBars:
    def test_bar_count(self):
        svg = grouped_bars_svg(["g1", "g2", "g3"],
                               {"s1": [1, 2, 3], "s2": [3, 2, 1]})
        rects = [e for e in parse(svg).iter() if e.tag.endswith("rect")]
        # background + 6 bars + 2 legend swatches
        assert len(rects) == 1 + 6 + 2

    def test_heights_proportional(self):
        svg = grouped_bars_svg(["a", "b"], {"s": [1.0, 2.0]})
        rects = [e for e in parse(svg).iter() if e.tag.endswith("rect")]
        bars = rects[1:3]
        h1, h2 = float(bars[0].get("height")), float(bars[1].get("height"))
        assert h2 == pytest.approx(2 * h1, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bars_svg(["a"], {})
        with pytest.raises(ValueError):
            grouped_bars_svg(["a", "b"], {"s": [1.0]})


class TestSaveAndRenderers:
    def test_save_svg(self, tmp_path):
        path = tmp_path / "chart.svg"
        save_svg(scatter_svg([1, 2], [3, 4]), path)
        assert path.read_text().startswith("<svg")

    def test_fig2_renderer_end_to_end(self, tmp_path):
        from repro.experiments.figures import render_fig2
        paths = render_fig2(tmp_path, scale=0.25, seed=0)
        assert len(paths) == 1
        parse((tmp_path / "fig2.svg").read_text())

    def test_figures_cli_single(self, tmp_path, capsys):
        from repro.experiments.figures import main
        assert main(["fig2", "--out", str(tmp_path), "--scale", "0.25"]) == 0
        assert "fig2.svg" in capsys.readouterr().out
