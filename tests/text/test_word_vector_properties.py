"""Additional coverage: SVD word vectors and encoder interaction details."""

import numpy as np
import pytest

from repro.text import SentenceEncoder, SvdWordVectors


class TestSvdTraining:
    DOCS = [
        "alpha beta gamma delta".split(),
        "alpha beta gamma epsilon".split(),
        "alpha beta zeta eta".split(),
        "omega psi chi phi".split(),
        "omega psi chi upsilon".split(),
        "omega psi tau sigma".split(),
    ] * 4

    def test_vectors_normalised(self):
        wv = SvdWordVectors(dim=6, min_count=2).fit(self.DOCS)
        for word in ("alpha", "omega", "beta"):
            assert np.linalg.norm(wv.vector(word)) == pytest.approx(1.0, abs=1e-6)

    def test_cluster_structure(self):
        wv = SvdWordVectors(dim=6, min_count=2).fit(self.DOCS)
        within = float(wv.vector("alpha") @ wv.vector("beta"))
        across = float(wv.vector("alpha") @ wv.vector("omega"))
        assert within > across

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SvdWordVectors(window=0)

    def test_vectors_matrix_shape(self):
        wv = SvdWordVectors(dim=6, min_count=2).fit(self.DOCS)
        assert wv.vectors(["alpha", "zzz"]).shape == (2, 6)


class TestEncoderDetails:
    def test_max_words_truncation_changes_vector(self):
        short = SentenceEncoder(dim=16, max_words=3)
        full = SentenceEncoder(dim=16, max_words=30)
        sentence = "one two three four five six seven eight"
        a = short.encode_sentence(sentence)
        b = full.encode_sentence(sentence)
        assert not np.allclose(a, b)

    def test_seed_changes_rotation(self):
        a = SentenceEncoder(dim=16, seed=1).encode_sentence("graph networks")
        b = SentenceEncoder(dim=16, seed=2).encode_sentence("graph networks")
        assert not np.allclose(a, b)

    def test_output_bounded_by_tanh(self):
        enc = SentenceEncoder(dim=16)
        vec = enc.encode_sentence("some words in a sentence here")
        assert np.all(np.abs(vec) <= 1.0)

    def test_fit_frequencies_returns_self(self):
        enc = SentenceEncoder(dim=8)
        assert enc.fit_frequencies(["a b c"]) is enc
