"""Tests for tokenisation, sentence splitting, and the vocabulary."""

import pytest

from repro.text import (
    UNK_TOKEN,
    Vocabulary,
    ngrams,
    sentence_tokens,
    split_sentences,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_strips_punctuation(self):
        assert tokenize("Hello, World! 42") == ["hello", "world"]

    def test_keeps_hyphens_and_apostrophes(self):
        assert tokenize("state-of-the-art doesn't") == ["state-of-the-art", "doesn't"]

    def test_drop_stopwords(self):
        assert tokenize("the model of choice", drop_stopwords=True) == ["model", "choice"]

    def test_empty(self):
        assert tokenize("") == []


class TestSentences:
    def test_split_on_terminal_punctuation(self):
        text = "First here. Second there! Third one?"
        assert split_sentences(text) == ["First here.", "Second there!", "Third one?"]

    def test_no_trailing_blank(self):
        assert split_sentences("One sentence.") == ["One sentence."]

    def test_empty_text(self):
        assert split_sentences("   ") == []

    def test_sentence_tokens_truncates(self):
        text = " ".join(["word"] * 50) + "."
        tokens = sentence_tokens(text, max_words=30)
        assert len(tokens) == 1
        assert len(tokens[0]) == 30

    def test_sentence_tokens_bad_max(self):
        with pytest.raises(ValueError):
            sentence_tokens("a b.", max_words=0)


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_larger_than_sequence(self):
        assert ngrams(["a"], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestVocabulary:
    def test_build_orders_by_frequency(self):
        vocab = Vocabulary.from_documents([["b", "a", "a"], ["a", "c", "b"]])
        assert vocab["a"] == 1  # most frequent after <unk>
        assert vocab.decode([0]) == [UNK_TOKEN]

    def test_min_count_filters(self):
        vocab = Vocabulary.from_documents([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab
        assert vocab.encode(["b"]) == [0]

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary.from_documents([["x", "y", "z"]])
        ids = vocab.encode(["x", "z"])
        assert vocab.decode(ids) == ["x", "z"]

    def test_len_and_iter(self):
        vocab = Vocabulary.from_documents([["a", "b"]])
        assert len(vocab) == 3  # unk + 2
        assert list(vocab)[0] == UNK_TOKEN

    def test_bad_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_deterministic_tie_break(self):
        v1 = Vocabulary.from_documents([["b", "a"]])
        v2 = Vocabulary.from_documents([["a", "b"]])
        assert list(v1) == list(v2)
