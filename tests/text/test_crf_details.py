"""CRF internals: Viterbi correctness on hand-constructed potentials."""

import numpy as np
import pytest

from repro.text.sequence_labeler import SequenceLabeler


class TestViterbi:
    def test_emission_only_argmax(self):
        """With zero transitions Viterbi is per-position argmax."""
        features = np.eye(3)
        emission = np.array([[2.0, 0.0, 0.0],
                             [0.0, 1.0, 0.0],
                             [0.0, 0.0, 3.0]])
        transition = np.zeros((3, 3))
        path = SequenceLabeler._viterbi(features, emission, transition)
        np.testing.assert_array_equal(path, [0, 1, 2])

    def test_transition_overrides_weak_emission(self):
        """A strong transition bonus flips a weakly preferred label."""
        features = np.ones((2, 1))
        # label 0 slightly preferred everywhere by emission
        emission = np.array([[0.1], [0.0]])
        # but staying in label 1 after label 1 is hugely rewarded, and
        # moving 0->0 hugely penalised
        transition = np.array([[-5.0, 0.0],
                               [0.0, 5.0]])
        path = SequenceLabeler._viterbi(features, emission, transition)
        np.testing.assert_array_equal(path, [1, 1])

    def test_single_sentence(self):
        features = np.array([[1.0, 0.0]])
        emission = np.array([[0.0, 1.0], [1.0, 0.0]])
        transition = np.zeros((2, 2))
        path = SequenceLabeler._viterbi(features, emission, transition)
        assert path.shape == (1,)
        assert path[0] == 1

    def test_exhaustive_agreement_small_case(self):
        """Viterbi equals brute-force argmax over all label sequences."""
        rng = np.random.default_rng(0)
        features = rng.normal(size=(4, 3))
        emission = rng.normal(size=(2, 3))
        transition = rng.normal(size=(2, 2))
        scores = features @ emission.T

        def total(path):
            value = scores[0, path[0]]
            for i in range(1, len(path)):
                value += transition[path[i - 1], path[i]] + scores[i, path[i]]
            return value

        import itertools
        best = max(itertools.product(range(2), repeat=4), key=total)
        viterbi = SequenceLabeler._viterbi(features, emission, transition)
        assert total(tuple(viterbi)) == pytest.approx(total(best))
