"""Tests for the CRF sentence-function labeler and text features."""

import numpy as np
import pytest

from repro.data import load_pubmed_rct, load_scopus
from repro.errors import NotFittedError
from repro.text import (
    SequenceLabeler,
    TextFeatures,
    estimate_syllables,
    extract_features,
    sentence_features,
    split_sentences,
)


@pytest.fixture(scope="module")
def labelled_corpus():
    corpus = load_scopus(scale=0.2, seed=9)
    texts = [p.abstract for p in corpus.papers]
    labels = [list(p.sentence_labels) for p in corpus.papers]
    return texts, labels


class TestSequenceLabeler:
    def test_learns_above_chance(self, labelled_corpus):
        texts, labels = labelled_corpus
        split = int(len(texts) * 0.8)
        labeler = SequenceLabeler(epochs=8, seed=0)
        labeler.fit(texts[:split], labels[:split])
        acc = labeler.accuracy(texts[split:], labels[split:])
        assert acc > 0.75  # cue+position features make this separable

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SequenceLabeler().predict("Some sentence.")

    def test_label_length_matches_sentences(self, labelled_corpus):
        texts, labels = labelled_corpus
        labeler = SequenceLabeler(epochs=3, seed=0).fit(texts[:50], labels[:50])
        predicted = labeler.predict(texts[60])
        assert len(predicted) == len(split_sentences(texts[60]))

    def test_empty_abstract_predicts_empty(self, labelled_corpus):
        texts, labels = labelled_corpus
        labeler = SequenceLabeler(epochs=2, seed=0).fit(texts[:30], labels[:30])
        assert labeler.predict("") == []

    def test_mismatched_training_data(self):
        with pytest.raises(ValueError):
            SequenceLabeler().fit(["One sentence."], [[0, 1]])
        with pytest.raises(ValueError):
            SequenceLabeler().fit(["a."], [])

    def test_out_of_range_labels(self):
        with pytest.raises(ValueError):
            SequenceLabeler(num_labels=3).fit(["One sentence here."], [[5]])

    def test_pubmed_long_abstracts(self):
        corpus = load_pubmed_rct(scale=0.1, seed=3)
        texts = [p.abstract for p in corpus.papers]
        labels = [list(p.sentence_labels) for p in corpus.papers]
        labeler = SequenceLabeler(epochs=5, seed=1).fit(texts[:40], labels[:40])
        assert labeler.accuracy(texts[40:], labels[40:]) > 0.7


class TestSentenceFeatures:
    def test_shape(self):
        m = sentence_features(["We propose a method.", "Results show gains."])
        assert m.shape[0] == 2
        assert m[-1, 4] == 1.0  # last-sentence indicator

    def test_cue_features_fire(self):
        m = sentence_features(["We propose a novel method and algorithm."])
        method_col = 5 + 1  # background, method, result order
        assert m[0, method_col] > 0


class TestTextFeatures:
    def test_syllables(self):
        assert estimate_syllables("cat") == 1
        assert estimate_syllables("information") >= 3
        assert estimate_syllables("xyz") == 1  # minimum one

    def test_extract_counts(self):
        feats = extract_features("The quick fox jumps. It runs fast.")
        assert feats.sentence_count == 2
        assert feats.word_count == 7
        assert 0 < feats.type_token_ratio <= 1

    def test_empty_text_zero_features(self):
        feats = extract_features("")
        assert feats == TextFeatures(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_vector_order_stable(self):
        feats = extract_features("Alpha beta gamma delta. Epsilon zeta.")
        vec = feats.as_vector()
        assert vec.shape == (9,)
        assert vec[0] == feats.sentence_count

    def test_flesch_reasonable_range(self):
        feats = extract_features("The cat sat on the mat. The dog ran fast.")
        assert 50 < feats.flesch_reading_ease <= 206.835
