"""Tests for word vectors and the sentence encoder."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.text import HashWordVectors, SentenceEncoder, SvdWordVectors


class TestHashWordVectors:
    def test_deterministic(self):
        a = HashWordVectors(dim=16).vector("transformer")
        b = HashWordVectors(dim=16).vector("transformer")
        np.testing.assert_array_equal(a, b)

    def test_unit_norm(self):
        vec = HashWordVectors(dim=32).vector("graph")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_distinct_words_nearly_orthogonal(self):
        wv = HashWordVectors(dim=256)
        sims = [
            abs(float(wv.vector(f"word{i}") @ wv.vector(f"word{i + 1}")))
            for i in range(20)
        ]
        assert max(sims) < 0.35

    def test_salt_changes_family(self):
        a = HashWordVectors(dim=16, salt="x").vector("cat")
        b = HashWordVectors(dim=16, salt="y").vector("cat")
        assert not np.allclose(a, b)

    def test_vectors_shape_and_empty(self):
        wv = HashWordVectors(dim=8)
        assert wv.vectors(["a", "b"]).shape == (2, 8)
        assert wv.vectors([]).shape == (0, 8)

    def test_contains_everything(self):
        assert "anything" in HashWordVectors()


class TestSvdWordVectors:
    DOCS = [
        "deep neural networks learn representations".split(),
        "deep neural models learn features".split(),
        "graph neural networks learn structure".split(),
        "stock market prices fall quickly".split(),
        "stock market prices rise quickly".split(),
    ] * 3

    def test_cooccurring_words_similar(self):
        wv = SvdWordVectors(dim=8, min_count=2).fit(self.DOCS)
        sim_related = float(wv.vector("deep") @ wv.vector("neural"))
        sim_unrelated = float(wv.vector("deep") @ wv.vector("market"))
        assert sim_related > sim_unrelated

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            SvdWordVectors().vector("deep")

    def test_oov_fallback_is_deterministic(self):
        wv = SvdWordVectors(dim=8, min_count=2).fit(self.DOCS)
        np.testing.assert_array_equal(wv.vector("zzz"), wv.vector("zzz"))
        assert "zzz" not in wv

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            SvdWordVectors(min_count=2).fit([["once"]])

    def test_pads_when_rank_below_dim(self):
        wv = SvdWordVectors(dim=32, min_count=1).fit(self.DOCS[:2])
        assert wv.vector("deep").shape == (32,)


class TestSentenceEncoder:
    def test_shape_and_determinism(self):
        enc = SentenceEncoder(dim=32)
        a = enc.encode_sentence("We propose a novel method for ranking.")
        b = SentenceEncoder(dim=32).encode_sentence("We propose a novel method for ranking.")
        assert a.shape == (32,)
        np.testing.assert_array_equal(a, b)

    def test_encode_matrix_per_sentence(self):
        enc = SentenceEncoder(dim=16)
        out = enc.encode("First sentence here. Second sentence there.")
        assert out.shape == (2, 16)

    def test_empty_text(self):
        enc = SentenceEncoder(dim=16)
        assert enc.encode("").shape == (0, 16)
        np.testing.assert_array_equal(enc.encode_document(""), np.zeros(16))

    def test_similar_sentences_closer_than_different(self):
        enc = SentenceEncoder(dim=64)
        a = enc.encode_sentence("graph neural networks for recommendation")
        b = enc.encode_sentence("graph neural models for recommendation")
        c = enc.encode_sentence("protein folding in mitochondrial cells")
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)

    def test_fit_frequencies_downweights_common_words(self):
        texts = ["the cat sat"] * 50 + ["quantum entanglement observed"]
        enc = SentenceEncoder(dim=64).fit_frequencies(texts)
        with_rare = enc.encode_sentence("the quantum result")
        base = SentenceEncoder(dim=64)
        # after frequency fitting, "the" contributes less; vectors differ
        assert not np.allclose(with_rare, base.encode_sentence("the quantum result"))

    def test_document_pooling(self):
        enc = SentenceEncoder(dim=16)
        doc = enc.encode_document("One two three. Four five six.")
        sentences = enc.encode("One two three. Four five six.")
        np.testing.assert_allclose(doc, sentences.mean(axis=0))

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            SentenceEncoder(dim=0)
