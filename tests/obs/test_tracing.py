"""Tests for span tracing and the disabled-mode no-op fast path."""

import threading
import time

import pytest

from repro import obs
from repro.obs.tracing import Tracer


class TestDisabledFastPath:
    def test_trace_returns_shared_noop_singleton(self, obs_disabled):
        # The disabled path must not allocate: every call hands back the
        # same inert context manager object.
        assert obs.trace("a") is obs.trace("b") is obs.NOOP_CONTEXT

    def test_disabled_records_nothing(self, obs_disabled):
        with obs.trace("invisible") as span:
            span.set("key", "value")  # must be a harmless no-op
            obs.count("invisible.counter")
            obs.gauge("invisible.gauge", 1.0)
            obs.observe("invisible.hist", 0.5)
        assert obs.get_tracer().spans == []
        assert len(obs.get_registry()) == 0

    def test_disabled_overhead_is_tiny(self, obs_disabled):
        # Generous bound (20us/call) — the point is that the no-op path
        # cannot regress into doing real work or allocating span records.
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with obs.trace("hot"):
                pass
            obs.count("hot.counter")
        elapsed = time.perf_counter() - start
        assert elapsed < n * 20e-6, f"no-op path too slow: {elapsed:.3f}s for {n} calls"
        assert obs.get_tracer().spans == []

    def test_traced_decorator_passthrough_when_disabled(self, obs_disabled):
        @obs.traced()
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert obs.get_tracer().spans == []


class TestEnabledTracing:
    def test_nested_spans_record_hierarchy(self, obs_enabled):
        with obs.trace("outer", run=1) as outer:
            time.sleep(0.002)
            with obs.trace("inner") as inner:
                inner.set("k", "v")
                time.sleep(0.001)
        spans = obs.get_tracer().ordered()
        assert [s.name for s in spans] == ["outer", "inner"]
        out, inn = spans
        assert out.depth == 0 and out.parent is None
        assert inn.depth == 1 and inn.parent == out.index
        assert inn.duration > 0
        assert out.duration >= inn.duration
        assert out.attrs == {"run": 1}
        assert inn.attrs == {"k": "v"}

    def test_exception_closes_span_and_marks_error(self, obs_enabled):
        with pytest.raises(RuntimeError):
            with obs.trace("failing"):
                raise RuntimeError("boom")
        tracer = obs.get_tracer()
        assert tracer.open_depth == 0
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError"

    def test_instrumented_function_raising_never_leaks_depth(self, obs_enabled):
        # Regression: an instrumented function that raises from a nested
        # region must leave the tracer balanced so the *next* capture on
        # the same process starts clean.
        def instrumented():
            with obs.trace("fn.outer"):
                with obs.trace("fn.inner"):
                    raise ValueError("deep failure")

        for _ in range(2):  # twice: a leak would trip the second pass
            with pytest.raises(ValueError, match="deep failure"):
                instrumented()
            assert obs.get_tracer().open_depth == 0
        by_name = {s.name: s for s in obs.get_tracer().spans}
        assert by_name["fn.inner"].attrs["error"] == "ValueError"
        assert by_name["fn.outer"].attrs["error"] == "ValueError"
        obs.configure(reset=True)  # balanced tracer: reset must succeed

    def test_exception_unwinds_leaked_raw_children(self, obs_enabled):
        # A raw tracer.start() child left open by the raising region used
        # to make __exit__'s finish() raise (masking the real error) and
        # leak open_depth. unwind_to closes it, tagged as leaked.
        tracer = obs.get_tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with obs.trace("outer"):
                tracer.start("leaked.child")
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["leaked.child"].attrs["leaked"] is True
        assert by_name["outer"].attrs["error"] == "RuntimeError"

    def test_traced_decorator_records_qualname_span(self, obs_enabled):
        @obs.traced()
        def my_function():
            return 42

        assert my_function() == 42
        (span,) = obs.get_tracer().spans
        assert span.name.endswith("my_function")

    def test_aggregate_statistics(self, obs_enabled):
        for _ in range(3):
            with obs.trace("repeated"):
                pass
        stats = obs.get_tracer().aggregate()["repeated"]
        assert stats.calls == 3
        assert stats.total >= stats.max >= stats.min >= 0
        assert stats.mean == pytest.approx(stats.total / 3)


class TestTracerInvariants:
    def test_out_of_order_finish_rejected(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError, match="nesting violated"):
            tracer.finish(outer)

    def test_reset_with_open_span_rejected(self):
        tracer = Tracer()
        tracer.start("open")
        with pytest.raises(RuntimeError, match="open span"):
            tracer.reset()

    def test_reset_with_open_span_on_another_thread_rejected(self):
        # The span stacks are thread-local; reset must still see spans
        # held open by *other* threads, or they would later finish into
        # the cleared list with stale parent indexes and a new epoch.
        tracer = Tracer()
        opened = threading.Event()
        release = threading.Event()

        def worker():
            record = tracer.start("other-thread")
            opened.set()
            release.wait(timeout=5)
            tracer.finish(record)

        thread = threading.Thread(target=worker)
        thread.start()
        assert opened.wait(timeout=5)
        with pytest.raises(RuntimeError, match="open span"):
            tracer.reset()
        release.set()
        thread.join(timeout=5)
        tracer.reset()  # balanced again once the worker finished
        assert tracer.spans == []

    def test_reset_clears_and_restarts_indices(self):
        tracer = Tracer()
        tracer.finish(tracer.start("a"))
        tracer.reset()
        assert tracer.spans == []
        record = tracer.start("b")
        assert record.index == 0

    def test_unwind_to_closes_children_innermost_first(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("mid")
        tracer.start("deep")
        tracer.unwind_to(outer)
        assert tracer.open_depth == 0
        names = [s.name for s in tracer.spans]
        assert names == ["deep", "mid", "outer"]  # innermost finished first
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["deep"].attrs["leaked"] is True
        assert by_name["mid"].attrs["leaked"] is True
        assert "leaked" not in by_name["outer"].attrs

    def test_unwind_to_unopened_span_rejected(self):
        tracer = Tracer()
        closed = tracer.start("closed")
        tracer.finish(closed)
        with pytest.raises(RuntimeError, match="not open"):
            tracer.unwind_to(closed)
