"""P² streaming quantile sketch and the Quantile metric family."""

import math
import zlib

import numpy as np
import pytest

from repro import obs
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, Quantile, exact_quantile


def p2_estimate(values, q):
    sketch = P2Quantile(q)
    for v in values:
        sketch.observe(v)
    return sketch.estimate


class TestExactQuantile:
    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(0)
        values = sorted(rng.normal(size=37).tolist())
        for q in (0.1, 0.5, 0.9, 0.99):
            assert exact_quantile(values, q) == pytest.approx(
                float(np.quantile(values, q)))

    def test_single_value_and_empty(self):
        assert exact_quantile([3.5], 0.99) == 3.5
        with pytest.raises(ValueError, match="empty"):
            exact_quantile([], 0.5)


class TestP2Quantile:
    def test_first_five_observations_are_exact(self):
        sketch = P2Quantile(0.5)
        seen = []
        for v in (4.0, 1.0, 5.0, 2.0, 3.0):
            sketch.observe(v)
            seen.append(v)
            assert sketch.estimate == pytest.approx(
                exact_quantile(sorted(seen), 0.5))

    def test_empty_estimate_is_none(self):
        assert P2Quantile(0.9).estimate is None

    def test_invalid_quantile_rejected(self):
        for q in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError, match="quantile"):
                P2Quantile(q)

    def test_deterministic_in_input_order(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(size=500).tolist()
        assert p2_estimate(values, 0.9) == p2_estimate(values, 0.9)

    def test_estimate_stays_within_observed_range(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=400).tolist()
        for q in DEFAULT_QUANTILES:
            est = p2_estimate(values, q)
            assert min(values) <= est <= max(values)

    # Property-style bound: the sketch must track the exact quantile to
    # within a fraction of the stream's value *range* even on streams
    # chosen to stress the marker updates. P² is an approximation — on
    # sorted/reversed inputs the interior markers lag — so the bound is
    # generous, but it catches any gross marker-update bug.
    @pytest.mark.parametrize("stream", [
        "sorted", "reversed", "constant", "heavy_tailed", "uniform",
        "bimodal",
    ])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_error_bounded_on_adversarial_streams(self, stream, q):
        # hash() of a str is salted per-process (PYTHONHASHSEED), which
        # made this test flaky: some salts produce a stream that busts
        # the bound (e.g. reversed/q=0.99 under PYTHONHASHSEED=15).
        # zlib.crc32 is stable across runs, so each param combination
        # always exercises the same stream.
        seed = zlib.crc32(f"{stream}:{q}".encode())
        rng = np.random.default_rng(seed)
        n = 2000
        if stream == "sorted":
            values = sorted(rng.normal(size=n).tolist())
        elif stream == "reversed":
            values = sorted(rng.normal(size=n).tolist(), reverse=True)
        elif stream == "constant":
            values = [7.25] * n
        elif stream == "heavy_tailed":
            values = rng.pareto(1.5, size=n).tolist()
        elif stream == "uniform":
            values = rng.uniform(0, 1, size=n).tolist()
        else:  # bimodal
            values = np.concatenate([rng.normal(-5, 0.5, n // 2),
                                     rng.normal(5, 0.5, n // 2)]).tolist()
            rng.shuffle(values)
        estimate = p2_estimate(values, q)
        exact = exact_quantile(sorted(values), q)
        spread = max(values) - min(values)
        if spread == 0:
            assert estimate == exact
        else:
            # Heavy tails dominate the range; judge those on the bulk of
            # the distribution instead of the extreme max.
            if stream == "heavy_tailed":
                spread = exact_quantile(sorted(values), 0.995) - min(values)
            assert abs(estimate - exact) <= 0.35 * spread, (
                f"{stream} q={q}: estimate {estimate} vs exact {exact}")

    def test_shuffled_stream_is_accurate(self):
        # On well-mixed input P² should be tight, not just bounded.
        rng = np.random.default_rng(3)
        values = rng.normal(size=5000).tolist()
        for q in DEFAULT_QUANTILES:
            estimate = p2_estimate(values, q)
            exact = exact_quantile(sorted(values), q)
            assert abs(estimate - exact) < 0.15


class TestQuantileMetric:
    def test_tracks_count_sum_min_max_mean(self):
        metric = Quantile("m")
        for v in (1.0, 3.0, 2.0):
            metric.observe(v)
        assert metric.count == 3
        assert metric.sum == pytest.approx(6.0)
        assert metric.min == 1.0 and metric.max == 3.0
        assert metric.mean == pytest.approx(2.0)

    def test_estimates_and_untracked_quantile(self):
        metric = Quantile("m", quantiles=(0.5, 0.9))
        for v in range(20):
            metric.observe(float(v))
        estimates = metric.estimates()
        assert set(estimates) == {0.5, 0.9}
        assert estimates[0.5] < estimates[0.9]
        with pytest.raises(KeyError, match="not tracked"):
            metric.estimate(0.99)

    def test_snapshot_shape(self):
        metric = Quantile("m")
        metric.observe(1.5)
        snap = metric.snapshot()
        assert snap["count"] == 1
        assert snap["quantiles"] == {"0.5": 1.5, "0.9": 1.5, "0.99": 1.5}
        empty = Quantile("e").snapshot()
        assert empty["min"] is None and empty["max"] is None
        assert all(est is None for est in empty["quantiles"].values())

    def test_invalid_quantile_sets_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Quantile("m", quantiles=())
        with pytest.raises(ValueError, match="ascending"):
            Quantile("m", quantiles=(0.9, 0.5))
        with pytest.raises(ValueError, match="ascending"):
            Quantile("m", quantiles=(0.5, 0.5))


class TestRegistryIntegration:
    def test_quantile_family_get_or_create(self, obs_enabled):
        registry = obs.get_registry()
        a = registry.quantile("lat", route="query")
        b = registry.quantile("lat", route="query")
        assert a is b
        registry.quantile("lat", route="ingest")
        assert len(registry.family("lat")) == 2

    def test_kind_conflict_rejected(self, obs_enabled):
        registry = obs.get_registry()
        registry.histogram("dur").observe(1.0)
        with pytest.raises(ValueError, match="already registered"):
            registry.quantile("dur")

    def test_observe_quantile_helper(self, obs_enabled):
        obs.observe_quantile("x.latency", 0.1)
        obs.observe_quantile("x.latency", 0.3)
        child = obs.get_registry().quantile("x.latency")
        assert child.count == 2
        assert math.isclose(child.sum, 0.4)

    def test_observe_quantile_noop_when_disabled(self, obs_disabled):
        obs.observe_quantile("x.latency", 0.1)
        assert len(obs.get_registry()) == 0
