"""Run snapshots, flattening, diffing, and the regression gate."""

import copy
import json

import pytest

from repro import obs
from repro.obs import runs
from repro.obs.__main__ import main as obs_main


def record_sample_run():
    obs.count("nprec.train.grad_steps", 40)
    obs.gauge("graph.nodes", 120)
    obs.observe("nprec.train.epoch_duration_seconds", 0.5)
    obs.observe("nprec.train.epoch_accuracy", 0.8)
    for value in (0.01, 0.02, 0.04):
        obs.observe_quantile("serve.query.latency", value)
    with obs.trace("nprec.fit"):
        pass


class TestCaptureAndPersist:
    def test_snapshot_shape(self, obs_enabled):
        record_sample_run()
        snapshot = runs.capture_run(run_id="r1", meta={"seed": 7})
        assert snapshot["schema_version"] == runs.SCHEMA_VERSION
        assert snapshot["run_id"] == "r1"
        assert snapshot["meta"] == {"seed": 7}
        assert snapshot["git_sha"]  # repo is a git checkout
        assert snapshot["spans"]["nprec.fit"]["calls"] == 1
        kinds = {e["kind"] for e in snapshot["metrics"]}
        assert kinds == {"counter", "gauge", "histogram", "quantile"}

    def test_default_run_id_is_unique(self, obs_enabled):
        a = runs.capture_run()
        b = runs.capture_run()
        assert a["run_id"] != b["run_id"]

    def test_write_and_load_round_trip(self, obs_enabled, tmp_path):
        record_sample_run()
        path = runs.write_run(tmp_path / "runs", run_id="r1")
        assert path == tmp_path / "runs" / "r1.json"
        assert runs.load_run(path)["run_id"] == "r1"

    def test_load_rejects_garbage_and_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not a valid run snapshot"):
            runs.load_run(bad)
        no_schema = tmp_path / "no_schema.json"
        no_schema.write_text("{}")
        with pytest.raises(ValueError, match="schema_version"):
            runs.load_run(no_schema)
        future = tmp_path / "future.json"
        future.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="v99"):
            runs.load_run(future)


class TestFlattenAndClassify:
    def test_flatten_keys(self, obs_enabled):
        record_sample_run()
        flat = runs.flatten(runs.capture_run(run_id="r"))
        assert flat["nprec.train.grad_steps:value"] == 40.0
        assert flat["nprec.train.epoch_duration_seconds:mean"] == 0.5
        assert flat["serve.query.latency:count"] == 3.0
        assert "serve.query.latency:p99" in flat
        assert flat["span.nprec.fit:calls"] == 1.0

    def test_labels_embed_in_the_key(self, obs_enabled):
        obs.count("serve.degraded", 2, reason="corrupt")
        flat = runs.flatten(runs.capture_run(run_id="r"))
        assert flat["serve.degraded{reason=corrupt}:value"] == 2.0

    def test_classification(self):
        assert runs.classify("serve.query.latency:p99") == "lower"
        assert runs.classify("nprec.train.epoch_duration_seconds:mean") == "lower"
        assert runs.classify("profile.net_alloc_kb{stage=x}:mean") == "lower"
        assert runs.classify("serve.degraded{reason=x}:value") == "lower"
        assert runs.classify("nprec.train.epoch_accuracy:mean") == "higher"
        assert runs.classify("sem.twin.epoch_rule_agreement:mean") == "higher"
        # The ANN gate: losing recall or scanning more rows regresses.
        assert runs.classify("ann.recall_at_10{nprobe=8,pool=50000}:value") \
            == "higher"
        assert runs.classify("ann.scan_fraction{nprobe=8,pool=50000}:value") \
            == "lower"
        assert not runs.is_timing("ann.scan_fraction{pool=50000}:value")
        # Volume keys never gate: more traffic is not a regression.
        assert runs.classify("serve.query.latency:count") is None
        assert runs.classify("span.nprec.fit:calls") is None
        # Structural gauges are informational.
        assert runs.classify("graph.nodes:value") is None

    def test_timing_keys(self):
        assert runs.is_timing("serve.query.latency:p99")
        assert runs.is_timing("profile.peak_alloc_kb{stage=x}:mean")
        assert not runs.is_timing("serve.degraded:value")


class TestDiffAndCheck:
    def _snapshots(self, obs_enabled):
        record_sample_run()
        baseline = runs.capture_run(run_id="base")
        current = copy.deepcopy(baseline)
        current["run_id"] = "cur"
        return baseline, current

    def test_identical_runs_have_no_regressions(self, obs_enabled):
        baseline, current = self._snapshots(obs_enabled)
        assert runs.check_runs(baseline, current) == []

    def test_timing_uses_the_loose_budget(self, obs_enabled):
        baseline, current = self._snapshots(obs_enabled)
        for event in current["metrics"]:
            if event["name"] == "nprec.train.epoch_duration_seconds":
                event["sum"] = event["sum"] * 3  # 3x slower: inside 5x budget
        assert runs.check_runs(baseline, current) == []
        for event in current["metrics"]:
            if event["name"] == "nprec.train.epoch_duration_seconds":
                event["sum"] = event["sum"] * 10  # now far beyond it
        bad = runs.check_runs(baseline, current)
        assert [d.key for d in bad] == ["nprec.train.epoch_duration_seconds:mean"]

    def test_accuracy_drop_regresses_tightly(self, obs_enabled):
        baseline, current = self._snapshots(obs_enabled)
        for event in current["metrics"]:
            if event["name"] == "nprec.train.epoch_accuracy":
                event["sum"] = event["sum"] * 0.5
        bad = runs.check_runs(baseline, current)
        assert [d.key for d in bad] == ["nprec.train.epoch_accuracy:mean"]
        # Accuracy *gains* never fail the gate.
        for event in current["metrics"]:
            if event["name"] == "nprec.train.epoch_accuracy":
                event["sum"] = event["sum"] * 4
        assert runs.check_runs(baseline, current) == []

    def test_new_failure_counter_from_zero_regresses(self, obs_enabled):
        record_sample_run()
        obs.count("serve.degraded", 0)  # family exists, clean run
        baseline = runs.capture_run(run_id="base")
        obs.count("serve.degraded", 1)
        current = runs.capture_run(run_id="cur")
        bad = runs.check_runs(baseline, current)
        assert any(d.key == "serve.degraded:value" for d in bad)

    def test_metric_new_in_current_is_informational(self, obs_enabled):
        baseline, _ = self._snapshots(obs_enabled)
        obs.count("serve.degraded", 5)
        current = runs.capture_run(run_id="cur")
        # Keys absent from the baseline cannot gate — refresh the
        # baseline to start gating newly added instrumentation.
        assert runs.check_runs(baseline, current) == []
        (delta,) = [d for d in runs.diff_runs(baseline, current)
                    if d.key == "serve.degraded:value"]
        assert delta.baseline is None and delta.current == 5.0

    def test_render_diff_mentions_direction(self, obs_enabled):
        baseline, current = self._snapshots(obs_enabled)
        text = runs.render_diff(runs.diff_runs(baseline, current))
        assert "nprec.train.epoch_accuracy:mean" in text
        assert "lower is better" in text


class TestCheckCLI:
    """Acceptance criterion: exit 0 on the committed baseline, nonzero
    on a perturbed run."""

    def _write(self, obs_enabled, tmp_path):
        record_sample_run()
        return runs.write_run(tmp_path, run_id="base")

    def test_exit_zero_on_identical_run(self, obs_enabled, tmp_path, capsys):
        base = self._write(obs_enabled, tmp_path)
        cur = runs.write_run(tmp_path, run_id="cur")
        assert obs_main(["check", str(cur), "--baseline", str(base)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_exit_nonzero_on_perturbation(self, obs_enabled, tmp_path, capsys):
        base = self._write(obs_enabled, tmp_path)
        snapshot = json.loads(base.read_text())
        for event in snapshot["metrics"]:
            if event["name"] == "nprec.train.epoch_accuracy":
                event["sum"] *= 0.5
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(snapshot))
        assert obs_main(["check", str(cur), "--baseline", str(base)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "epoch_accuracy" in out

    def test_exit_two_on_unreadable_snapshot(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        present = tmp_path / "present.json"
        present.write_text(json.dumps({"schema_version": 1, "run_id": "x",
                                       "metrics": [], "spans": {}}))
        assert obs_main(["check", str(present),
                         "--baseline", str(missing)]) == 2

    def test_committed_ci_baseline_gates_itself(self, capsys):
        # The in-repo baseline seeded from the table3 bench must pass its
        # own gate with the exact flags the CI workflow uses.
        baseline = "results/obs/baselines/test_table3.json"
        assert obs_main(["check", baseline, "--baseline", baseline,
                         "--tolerance", "0.1",
                         "--timing-tolerance", "5.0"]) == 0

    def test_diff_cli(self, obs_enabled, tmp_path, capsys):
        base = self._write(obs_enabled, tmp_path)
        cur = runs.write_run(tmp_path, run_id="cur")
        assert obs_main(["diff", str(base), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "baseline: base" in out and "current:  cur" in out
        assert obs_main(["diff", str(base), str(tmp_path / "nope.json")]) == 2
