"""Allocation-profiling spans: capture, double gate, error unwinding."""

import pytest

from repro import obs
from repro.obs import NOOP_CONTEXT


class TestProfileCapture:
    def test_span_carries_allocation_attrs(self, obs_profiling):
        with obs.profile("stage_a", hint="x"):
            payload = [bytearray(64 * 1024) for _ in range(8)]
        del payload
        (record,) = obs.get_tracer().spans
        assert record.name == "profile.stage_a"
        assert record.attrs["hint"] == "x"
        assert record.attrs["alloc_peak_kb"] >= 512  # the 8x64kB payload
        assert "alloc_net_kb" in record.attrs
        assert isinstance(record.attrs["top_allocations"], list)

    def test_top_allocations_name_this_file(self, obs_profiling):
        with obs.profile("stage_b", top_n=3):
            keep = [bytearray(256 * 1024)]
        (record,) = obs.get_tracer().spans
        sites = record.attrs["top_allocations"]
        assert sites and len(sites) <= 3
        assert any("test_profiling.py" in site for site in sites)
        del keep

    def test_histograms_record_per_stage(self, obs_profiling):
        with obs.profile("stage_c"):
            pass
        registry = obs.get_registry()
        net = registry.get("profile.net_alloc_kb", stage="stage_c")
        peak = registry.get("profile.peak_alloc_kb", stage="stage_c")
        assert net is not None and net.count == 1
        assert peak is not None and peak.count == 1

    def test_nested_inside_trace(self, obs_profiling):
        with obs.trace("outer"):
            with obs.profile("inner"):
                pass
        tracer = obs.get_tracer()
        assert tracer.open_depth == 0
        names = [s.name for s in tracer.spans]
        assert names == ["profile.inner", "outer"]

    def test_exception_finishes_and_tags_span(self, obs_profiling):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.profile("stage_d"):
                raise RuntimeError("boom")
        tracer = obs.get_tracer()
        assert tracer.open_depth == 0
        (record,) = tracer.spans
        assert record.attrs["error"] == "RuntimeError"
        assert "alloc_net_kb" in record.attrs  # measured despite the raise

    def test_top_n_validation(self, obs_profiling):
        with pytest.raises(ValueError, match="top_n"):
            with obs.profile("stage_e", top_n=0):
                pass


class TestDoubleGate:
    def test_disabled_entirely(self, obs_disabled):
        assert obs.profile("x") is NOOP_CONTEXT

    def test_enabled_without_profiling(self, obs_enabled):
        # The second gate: ordinary captures must not pay for tracemalloc.
        assert obs.profile("x") is NOOP_CONTEXT
        with obs.profile("x"):
            pass
        assert len(obs.get_tracer().spans) == 0
        assert len(obs.get_registry()) == 0

    def test_profiling_without_enabled(self, obs_disabled):
        obs.configure(profiling=True)
        try:
            assert obs.profile("x") is NOOP_CONTEXT
        finally:
            obs.configure(profiling=False)

    def test_is_profiling_reflects_both_flags(self, obs_enabled):
        assert not obs.is_profiling()
        obs.configure(profiling=True)
        assert obs.is_profiling()
        obs.configure(enabled=False)
        assert not obs.is_profiling()
