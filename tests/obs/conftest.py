"""Fixtures for the observability tests: isolate the global obs state."""

import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Enable observability for one test, restoring the default after."""
    state = obs.configure(enabled=True, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, reset=True)


@pytest.fixture
def obs_disabled():
    """Guarantee the default (disabled, empty) state around a test."""
    state = obs.configure(enabled=False, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, reset=True)
