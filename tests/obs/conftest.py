"""Fixtures for the observability tests: isolate the global obs state."""

import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Enable observability for one test, restoring the default after."""
    state = obs.configure(enabled=True, profiling=False, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, profiling=False, reset=True)


@pytest.fixture
def obs_disabled():
    """Guarantee the default (disabled, empty) state around a test."""
    state = obs.configure(enabled=False, profiling=False, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, profiling=False, reset=True)


@pytest.fixture
def obs_profiling():
    """Enable observability *and* allocation profiling for one test."""
    state = obs.configure(enabled=True, profiling=True, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, profiling=False, reset=True)


@pytest.fixture
def clean_slos():
    """Run a test against an empty global SLO registry, restoring after."""
    previous = obs.slo.registered_slos()
    obs.slo.clear_slos()
    try:
        yield
    finally:
        obs.slo.clear_slos()
        for item in previous:
            obs.slo.register_slo(item)
