"""The shared FakeClock test double itself."""

import pytest

from repro.obs.testing import FakeClock


def test_manual_clock_is_frozen():
    clock = FakeClock(start=5.0)
    assert clock() == 5.0
    assert clock() == 5.0
    clock.advance(2.5)
    assert clock() == 7.5
    assert clock.calls == 3


def test_tick_auto_advances_after_each_call():
    clock = FakeClock(tick=0.5)
    assert [clock() for _ in range(3)] == [0.0, 0.5, 1.0]


def test_negative_values_rejected():
    with pytest.raises(ValueError):
        FakeClock(tick=-1.0)
    with pytest.raises(ValueError):
        FakeClock().advance(-0.1)
