"""Tests for the JSONL / Prometheus / console emitters and the report CLI."""

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.emitters import (
    console_summary,
    prometheus_text,
    read_jsonl,
    render_report,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("nprec.train.grad_steps", strategy="defuzz").inc(42)
    reg.gauge("graph.nodes", type="paper").set(120)
    h = reg.histogram("nprec.train.epoch_loss", buckets=(0.5, 1.0))
    h.observe(0.25)
    h.observe(0.75)
    h.observe(2.0)
    return reg


class TestPrometheusText:
    def test_golden_format(self):
        # Golden test: the full exposition output for a fixed registry.
        assert prometheus_text(small_registry()) == (
            "# TYPE repro_graph_nodes gauge\n"
            'repro_graph_nodes{type="paper"} 120\n'
            "# TYPE repro_nprec_train_epoch_loss histogram\n"
            'repro_nprec_train_epoch_loss_bucket{le="0.5"} 1\n'
            'repro_nprec_train_epoch_loss_bucket{le="1"} 2\n'
            'repro_nprec_train_epoch_loss_bucket{le="+Inf"} 3\n'
            "repro_nprec_train_epoch_loss_sum 3\n"
            "repro_nprec_train_epoch_loss_count 3\n"
            "# TYPE repro_nprec_train_grad_steps counter\n"
            'repro_nprec_train_grad_steps{strategy="defuzz"} 42\n'
        )

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird", path='a"b\\c').inc()
        assert '{path="a\\"b\\\\c"}' in prometheus_text(reg)


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        tracer = Tracer()
        outer = tracer.start("outer", {"run": 1})
        tracer.finish(tracer.start("inner"))
        tracer.finish(outer)
        path = write_jsonl(tmp_path / "sub" / "cap.jsonl",
                           registry=small_registry(), tracer=tracer,
                           meta={"benchmark": "demo"})
        events = read_jsonl(path)
        meta, *rest = events
        assert meta["type"] == "meta"
        assert meta["benchmark"] == "demo"
        assert meta["spans"] == 2 and meta["metrics"] == 3
        spans = [e for e in rest if e["type"] == "span"]
        metrics = [e for e in rest if e["type"] == "metric"]
        # Spans serialise in start order, not finish order.
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert spans[1]["parent"] == spans[0]["index"]
        assert {m["kind"] for m in metrics} == {"counter", "gauge", "histogram"}

    def test_read_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(bad)


class TestReportRendering:
    def test_report_contains_tree_totals_and_metrics(self, tmp_path):
        tracer = Tracer()
        outer = tracer.start("fit")
        tracer.finish(tracer.start("fit.sem"))
        tracer.finish(outer)
        path = write_jsonl(tmp_path / "cap.jsonl", registry=small_registry(),
                           tracer=tracer)
        report = render_report(read_jsonl(path))
        assert "Trace" in report
        assert "\n  fit.sem" in report  # indented child
        assert "Span totals" in report
        assert "calls=1" in report
        assert "Metrics" in report
        assert "graph.nodes{type=paper}  120" in report

    def test_empty_capture_message(self):
        assert "empty capture" in render_report([{"type": "meta"}])

    def test_console_summary_uses_global_state(self, obs_enabled):
        with obs.trace("live.span"):
            obs.count("live.counter", 2)
        summary = console_summary()
        assert "live.span" in summary
        assert "live.counter  2" in summary


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        tracer = Tracer()
        tracer.finish(tracer.start("stage"))
        path = write_jsonl(tmp_path / "cap.jsonl",
                           registry=MetricsRegistry(), tracer=tracer)
        assert obs_main(["report", str(path)]) == 0
        assert "stage" in capsys.readouterr().out

    def test_report_missing_file_fails(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err
