"""Tests for the JSONL / Prometheus / console emitters and the report CLI."""

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.emitters import (
    console_summary,
    prometheus_text,
    read_jsonl,
    render_multi_report,
    render_report,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("nprec.train.grad_steps", strategy="defuzz").inc(42)
    reg.gauge("graph.nodes", type="paper").set(120)
    h = reg.histogram("nprec.train.epoch_loss", buckets=(0.5, 1.0))
    h.observe(0.25)
    h.observe(0.75)
    h.observe(2.0)
    return reg


class TestPrometheusText:
    def test_golden_format(self):
        # Golden test: the full exposition output for a fixed registry.
        assert prometheus_text(small_registry()) == (
            "# HELP repro_graph_nodes repro metric graph.nodes (gauge)\n"
            "# TYPE repro_graph_nodes gauge\n"
            'repro_graph_nodes{type="paper"} 120\n'
            "# HELP repro_nprec_train_epoch_loss repro metric "
            "nprec.train.epoch_loss (histogram)\n"
            "# TYPE repro_nprec_train_epoch_loss histogram\n"
            'repro_nprec_train_epoch_loss_bucket{le="0.5"} 1\n'
            'repro_nprec_train_epoch_loss_bucket{le="1"} 2\n'
            'repro_nprec_train_epoch_loss_bucket{le="+Inf"} 3\n'
            "repro_nprec_train_epoch_loss_sum 3\n"
            "repro_nprec_train_epoch_loss_count 3\n"
            "# HELP repro_nprec_train_grad_steps repro metric "
            "nprec.train.grad_steps (counter)\n"
            "# TYPE repro_nprec_train_grad_steps counter\n"
            'repro_nprec_train_grad_steps{strategy="defuzz"} 42\n'
        )

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird", path='a"b\\c').inc()
        assert '{path="a\\"b\\\\c"}' in prometheus_text(reg)

    def test_newlines_in_label_values_escaped(self):
        # A raw newline would split the sample line in two and corrupt
        # the whole exposition; the spec says escape it as \n.
        reg = MetricsRegistry()
        reg.counter("weird", msg="line1\nline2").inc()
        text = prometheus_text(reg)
        assert '{msg="line1\\nline2"}' in text
        assert all(line.startswith(("#", "repro_"))
                   for line in text.strip().splitlines())

    def test_histogram_conventions(self):
        # _count == +Inf bucket, buckets cumulative in le order, _sum
        # equals the total of the observations.
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        lines = prometheus_text(reg).strip().splitlines()
        assert lines == [
            "# HELP repro_lat repro metric lat (histogram)",
            "# TYPE repro_lat histogram",
            'repro_lat_bucket{le="0.1"} 1',
            'repro_lat_bucket{le="1"} 3',
            'repro_lat_bucket{le="+Inf"} 4',
            "repro_lat_sum 6.05",
            "repro_lat_count 4",
        ]

    def test_quantile_renders_as_summary(self):
        reg = MetricsRegistry()
        q = reg.quantile("serve.query.latency", route="top_k")
        for v in (0.1, 0.2, 0.3):
            q.observe(v)
        lines = prometheus_text(reg).strip().splitlines()
        assert lines[0].startswith("# HELP repro_serve_query_latency ")
        assert lines[1] == "# TYPE repro_serve_query_latency summary"
        assert 'repro_serve_query_latency{quantile="0.5",route="top_k"} 0.2' \
            in lines
        assert any(l.startswith(
            'repro_serve_query_latency{quantile="0.99"') for l in lines)
        assert 'repro_serve_query_latency_sum{route="top_k"} 0.6000000000000001' \
            in lines
        assert 'repro_serve_query_latency_count{route="top_k"} 3' in lines

    def test_empty_quantile_renders_nan(self):
        reg = MetricsRegistry()
        reg.quantile("idle.latency")
        text = prometheus_text(reg)
        assert 'repro_idle_latency{quantile="0.5"} NaN' in text
        assert "repro_idle_latency_count 0" in text


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        tracer = Tracer()
        outer = tracer.start("outer", {"run": 1})
        tracer.finish(tracer.start("inner"))
        tracer.finish(outer)
        path = write_jsonl(tmp_path / "sub" / "cap.jsonl",
                           registry=small_registry(), tracer=tracer,
                           meta={"benchmark": "demo"})
        events = read_jsonl(path)
        meta, *rest = events
        assert meta["type"] == "meta"
        assert meta["benchmark"] == "demo"
        assert meta["spans"] == 2 and meta["metrics"] == 3
        spans = [e for e in rest if e["type"] == "span"]
        metrics = [e for e in rest if e["type"] == "metric"]
        # Spans serialise in start order, not finish order.
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert spans[1]["parent"] == spans[0]["index"]
        assert {m["kind"] for m in metrics} == {"counter", "gauge", "histogram"}

    def test_read_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(bad)


class TestReportRendering:
    def test_report_contains_tree_totals_and_metrics(self, tmp_path):
        tracer = Tracer()
        outer = tracer.start("fit")
        tracer.finish(tracer.start("fit.sem"))
        tracer.finish(outer)
        path = write_jsonl(tmp_path / "cap.jsonl", registry=small_registry(),
                           tracer=tracer)
        report = render_report(read_jsonl(path))
        assert "Trace" in report
        assert "\n  fit.sem" in report  # indented child
        assert "Span totals" in report
        assert "calls=1" in report
        assert "Metrics" in report
        assert "graph.nodes{type=paper}  120" in report

    def test_empty_capture_message(self):
        assert "empty capture" in render_report([{"type": "meta"}])

    def test_console_summary_uses_global_state(self, obs_enabled):
        with obs.trace("live.span"):
            obs.count("live.counter", 2)
        summary = console_summary()
        assert "live.span" in summary
        assert "live.counter  2" in summary


class TestMultiReport:
    def _capture(self, tmp_path, name, span, counter_value):
        tracer = Tracer()
        tracer.finish(tracer.start(span))
        reg = MetricsRegistry()
        reg.counter("c").inc(counter_value)
        return write_jsonl(tmp_path / name, registry=reg, tracer=tracer)

    def test_single_capture_matches_render_report(self, tmp_path):
        path = self._capture(tmp_path, "a.jsonl", "fit", 1)
        captured = read_jsonl(path)
        assert render_multi_report([("a", captured)]) == render_report(captured)

    def test_sections_labelled_and_totals_merged(self, tmp_path):
        a = read_jsonl(self._capture(tmp_path, "a.jsonl", "fit", 1))
        b = read_jsonl(self._capture(tmp_path, "b.jsonl", "fit", 2))
        report = render_multi_report([("a.jsonl", a), ("b.jsonl", b)])
        assert "Trace — a.jsonl" in report
        assert "Trace — b.jsonl" in report
        assert "Span totals (2 captures)" in report
        assert "calls=2" in report  # fit aggregated across both captures
        # Metric sections stay per source: counters are NOT summed.
        assert "Metrics — a.jsonl" in report
        assert "Metrics — b.jsonl" in report
        assert "c  1" in report and "c  2" in report
        assert "c  3" not in report

    def test_quantile_line_in_console_report(self, obs_enabled):
        obs.observe_quantile("q.latency", 0.5)
        summary = console_summary()
        assert "q.latency" in summary
        assert "count=1" in summary and "p99=0.5" in summary


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        tracer = Tracer()
        tracer.finish(tracer.start("stage"))
        path = write_jsonl(tmp_path / "cap.jsonl",
                           registry=MetricsRegistry(), tracer=tracer)
        assert obs_main(["report", str(path)]) == 0
        assert "stage" in capsys.readouterr().out

    def test_report_merges_multiple_files(self, tmp_path, capsys):
        paths = []
        for name in ("one", "two"):
            tracer = Tracer()
            tracer.finish(tracer.start(f"stage.{name}"))
            paths.append(str(write_jsonl(tmp_path / f"{name}.jsonl",
                                         registry=MetricsRegistry(),
                                         tracer=tracer)))
        assert obs_main(["report", *paths]) == 0
        out = capsys.readouterr().out
        assert "stage.one" in out and "stage.two" in out
        assert "Span totals (2 captures)" in out

    def test_report_missing_file_fails(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_renders_readable_files_despite_failures(self, tmp_path,
                                                            capsys):
        tracer = Tracer()
        tracer.finish(tracer.start("good.stage"))
        good = write_jsonl(tmp_path / "good.jsonl",
                           registry=MetricsRegistry(), tracer=tracer)
        assert obs_main(["report", str(tmp_path / "nope.jsonl"),
                         str(good)]) == 1
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert "good.stage" in captured.out
