"""Golden-file lint coverage for the full Prometheus exposition format.

``lint_exposition`` is the structural contract behind the ops plane's
``/metrics`` endpoint: the concurrent-scrape tests use it to detect torn
output, so this file proves (a) a registry exercising every metric kind,
label escaping, and histogram conventions lints clean, and (b) the
linter actually rejects each class of violation it claims to catch.
"""

import pytest

from repro.obs.emitters import lint_exposition, prometheus_text, set_metric_help
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def populated():
    """A registry exercising all four kinds, labels, and escaping."""
    registry = MetricsRegistry()
    registry.counter("lint.requests", route="/metrics", outcome="ok").inc(3)
    registry.counter("lint.requests", route="/healthz", outcome="ok").inc()
    registry.gauge("lint.queue_depth").set(7)
    registry.gauge("lint.temperature").set(-3.5)
    hist = registry.histogram("lint.latency",
                              buckets=(0.005, 0.05, 0.5, 5.0))
    for value in (0.001, 0.02, 0.3, 9.0):
        hist.observe(value)
    registry.quantile("lint.duration").observe(0.125)
    # Label values whose escaping the linter must accept back.
    registry.counter("lint.weird_labels",
                     path='C:\\temp\\"x"', note="line\nbreak").inc()
    return registry


class TestCleanExposition:
    def test_populated_registry_lints_clean(self, populated):
        text = prometheus_text(populated)
        assert lint_exposition(text) == []

    def test_empty_exposition_lints_clean(self):
        assert lint_exposition(prometheus_text(MetricsRegistry())) == []

    def test_one_help_and_type_per_family(self, populated):
        lines = prometheus_text(populated).splitlines()
        helps = [l.split()[2] for l in lines if l.startswith("# HELP")]
        types = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert len(helps) == len(set(helps))
        assert helps == types  # pairwise: HELP immediately announces TYPE

    def test_custom_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("lint.helped").inc()
        set_metric_help("lint.helped", "first\nsecond \\ third")
        try:
            text = prometheus_text(registry)
        finally:
            set_metric_help("lint.helped", "")
        assert "# HELP repro_lint_helped first\\nsecond \\\\ third" in text
        assert lint_exposition(text) == []

    def test_histogram_conventions_survive_lint(self, populated):
        text = prometheus_text(populated)
        assert 'repro_lint_latency_bucket{le="+Inf"} 4' in text
        assert "repro_lint_latency_count 4" in text
        assert lint_exposition(text) == []


class TestLintCatchesViolations:
    def test_sample_without_type(self):
        errors = lint_exposition("repro_orphan_total 1\n")
        assert any("without TYPE" in e for e in errors)

    def test_type_without_help(self):
        errors = lint_exposition(
            "# TYPE repro_x counter\nrepro_x 1\n")
        assert any("HELP" in e for e in errors)

    def test_duplicate_type_line(self):
        text = ("# HELP repro_x h\n# TYPE repro_x counter\nrepro_x 1\n"
                "# HELP repro_x h\n# TYPE repro_x counter\nrepro_x 2\n")
        assert lint_exposition(text) != []

    def test_torn_tail_rejected(self, populated):
        text = prometheus_text(populated)
        torn = text[:len(text) // 2].rsplit("\n", 1)[0] + "\nrepro_lint_late"
        assert lint_exposition(torn) != []

    def test_interleaved_families_rejected(self):
        text = ("# HELP repro_a h\n# TYPE repro_a counter\nrepro_a 1\n"
                "# HELP repro_b h\n# TYPE repro_b counter\nrepro_b 1\n"
                "repro_a 2\n")
        errors = lint_exposition(text)
        assert any("repro_a" in e for e in errors)

    def test_bucket_order_violation(self):
        text = ("# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.5"} 3\n'
                'repro_h_bucket{le="0.1"} 1\n'
                'repro_h_bucket{le="+Inf"} 3\n'
                "repro_h_sum 0.9\nrepro_h_count 3\n")
        errors = lint_exposition(text)
        assert any("le" in e or "order" in e for e in errors)

    def test_non_cumulative_buckets(self):
        text = ("# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.1"} 5\n'
                'repro_h_bucket{le="0.5"} 3\n'
                'repro_h_bucket{le="+Inf"} 5\n'
                "repro_h_sum 0.9\nrepro_h_count 5\n")
        assert lint_exposition(text) != []

    def test_missing_inf_bucket(self):
        text = ("# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.1"} 1\n'
                "repro_h_sum 0.1\nrepro_h_count 1\n")
        errors = lint_exposition(text)
        assert any("+Inf" in e for e in errors)

    def test_count_must_match_inf_bucket(self):
        text = ("# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="+Inf"} 4\n'
                "repro_h_sum 0.1\nrepro_h_count 9\n")
        errors = lint_exposition(text)
        assert any("_count" in e for e in errors)

    def test_malformed_sample_line(self):
        text = ("# HELP repro_x h\n# TYPE repro_x counter\n"
                "repro_x{broken= 1\n")
        errors = lint_exposition(text)
        assert any("malformed" in e.lower() for e in errors)

    def test_bad_value_rejected(self):
        text = ("# HELP repro_x h\n# TYPE repro_x counter\n"
                "repro_x one\n")
        assert lint_exposition(text) != []
