"""Tests for the flight recorder: ring taps, crash hooks, postmortems."""

import json
import sys
import threading

import pytest

from repro import obs
from repro.errors import InjectedFault
from repro.obs.flightrec import FlightRecorder, process_snapshot
from repro.resilience import faults


@pytest.fixture
def recorder():
    """The process-wide recorder, cleared around the test."""
    rec = obs.get_flight_recorder()
    rec.clear()
    try:
        yield rec
    finally:
        rec.disarm()
        rec.clear()


class TestRing:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("event", f"e{i}")
        entries = rec.entries()
        assert len(entries) == 4
        assert [e["name"] for e in entries] == ["e6", "e7", "e8", "e9"]
        assert rec.recorded == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_event_tap(self, recorder, obs_enabled):
        obs.event("my.event", reason="testing")
        kinds = [(e["kind"], e["name"]) for e in recorder.entries()]
        assert ("event", "my.event") in kinds

    def test_request_tap_outermost_only(self, recorder, obs_enabled):
        with obs.request("outer.request"):
            with obs.request("inner.request"):
                pass
        requests = [e for e in recorder.entries() if e["kind"] == "request"]
        assert [e["name"] for e in requests] == ["outer.request"]

    def test_fault_tap_captures_open_spans(self, recorder, obs_enabled):
        with faults.inject("rec.site:1.0"):
            with pytest.raises(InjectedFault):
                with obs.trace("stage.one"):
                    with obs.trace("stage.two"):
                        faults.maybe_fail("rec.site")
        fault = [e for e in recorder.entries() if e["kind"] == "fault"][0]
        assert fault["name"] == "rec.site"
        assert fault["open_spans"] == ["stage.one", "stage.two"]

    def test_slo_transitions_deduplicated(self):
        rec = FlightRecorder()
        from repro.obs.slo import SLOStatus

        breached = SLOStatus("demo.slo", "latency", ok=False, observed=1.0,
                             target=0.5)
        healthy = SLOStatus("demo.slo", "latency", ok=True, observed=0.1,
                            target=0.5)
        rec.note_slo([healthy])      # healthy-from-birth: not a transition
        rec.note_slo([breached])     # ok -> breached: recorded
        rec.note_slo([breached])     # steady breached: deduplicated
        rec.note_slo([healthy])      # breached -> ok: recorded
        slo_entries = [e for e in rec.entries() if e["kind"] == "slo"]
        assert [e["ok"] for e in slo_entries] == [False, True]

    def test_counter_delta_sampling(self, obs_enabled):
        rec = FlightRecorder()
        obs.count("delta.counter", 3)
        first = rec.sample_metrics()
        assert first == {"delta.counter": 3.0}
        assert rec.sample_metrics() == {}  # unchanged: nothing recorded
        obs.count("delta.counter", 2)
        assert rec.sample_metrics() == {"delta.counter": 2.0}
        metric_entries = [e for e in rec.entries() if e["kind"] == "metrics"]
        assert len(metric_entries) == 2


class TestArming:
    def test_arm_installs_and_disarm_restores_hooks(self, tmp_path):
        rec = FlightRecorder()
        prev_sys, prev_thread = sys.excepthook, threading.excepthook
        rec.arm(tmp_path)
        assert rec.armed and sys.excepthook is not prev_sys
        rec.disarm()
        assert not rec.armed
        assert sys.excepthook is prev_sys
        assert threading.excepthook is prev_thread

    def test_sys_hook_dumps_and_chains(self, tmp_path):
        rec = FlightRecorder()
        chained = []
        previous = sys.excepthook
        sys.excepthook = lambda *a: chained.append(a)
        try:
            rec.arm(tmp_path)
            try:
                raise RuntimeError("boom")
            except RuntimeError as exc:
                sys.excepthook(RuntimeError, exc, exc.__traceback__)
        finally:
            rec.disarm()
            sys.excepthook = previous
        assert len(chained) == 1  # the pre-existing hook still ran
        assert len(rec.dumps) == 1
        bundle = json.loads(rec.dumps[0].read_text())
        assert bundle["reason"] == "unhandled_exception"
        assert bundle["exception"]["type"] == "RuntimeError"
        assert "boom" in bundle["exception"]["traceback"]

    def test_threading_hook_dumps(self, tmp_path):
        rec = FlightRecorder()
        quiet = lambda args: None  # silence the default stderr print
        previous = threading.excepthook
        threading.excepthook = quiet
        try:
            rec.arm(tmp_path)
            worker = threading.Thread(target=lambda: 1 / 0,
                                      name="crashy", daemon=True)
            worker.start()
            worker.join(timeout=5.0)
        finally:
            rec.disarm()
            threading.excepthook = previous
        assert len(rec.dumps) == 1
        bundle = json.loads(rec.dumps[0].read_text())
        assert "crashy" in bundle["reason"]
        assert bundle["exception"]["type"] == "ZeroDivisionError"


class TestTrip:
    def test_trip_without_dir_records_only(self):
        rec = FlightRecorder()
        assert rec.trip("no_dir_trip") is None
        assert [e["name"] for e in rec.entries()
                if e["kind"] == "trip"] == ["no_dir_trip"]
        assert rec.dumps == []

    def test_trip_rate_limited_while_armed(self, tmp_path):
        rec = FlightRecorder(min_dump_interval=3600.0)
        rec.arm(tmp_path)
        try:
            first = rec.trip("flap")
            second = rec.trip("flap")
        finally:
            rec.disarm()
        assert first is not None and first.exists()
        assert second is None  # rate-limited, but still recorded
        trips = [e for e in rec.entries() if e["kind"] == "trip"]
        assert len(trips) == 2

    def test_explicit_dump_never_rate_limited(self, tmp_path):
        rec = FlightRecorder(min_dump_interval=3600.0)
        paths = {rec.dump_postmortem(tmp_path, "one"),
                 rec.dump_postmortem(tmp_path, "two")}
        assert len(paths) == 2 and all(p.exists() for p in paths)


class TestBundle:
    def test_bundle_schema(self, recorder, obs_enabled, tmp_path):
        obs.count("bundle.counter")
        obs.event("bundle.event", detail=1)
        with obs.trace("bundle.open"):
            path = recorder.dump_postmortem(tmp_path, "schema",
                                            exc=ValueError("context"))
        bundle = json.loads(path.read_text())
        assert bundle["type"] == "postmortem"
        assert bundle["reason"] == "schema"
        assert bundle["uptime_seconds"] > 0
        assert bundle["exception"]["type"] == "ValueError"
        assert any(e["name"] == "bundle.event" for e in bundle["entries"])
        assert any(m["name"] == "bundle.counter" for m in bundle["metrics"])
        # The span open at dump time shows up in some thread's stack.
        open_names = [s["name"] for stack in bundle["open_spans"].values()
                      for s in stack]
        assert "bundle.open" in open_names
        assert bundle["process"]["pid"] > 0
        assert any(t["name"] == "MainThread" for t in bundle["threads"])

    def test_process_snapshot_fields(self, tmp_path):
        wal = tmp_path / "x.wal"
        wal.write_bytes(b"0123456789")
        snap = process_snapshot(wal_path=wal)
        assert snap["rss_kb"] > 0
        assert snap["peak_rss_kb"] > 0
        assert snap["threads"] >= 1
        assert snap["uptime_seconds"] > 0
        assert snap["wal_position_bytes"] == 10
        assert process_snapshot()["wal_position_bytes"] is None
