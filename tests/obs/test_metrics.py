"""Unit tests for the metric primitives and the registry."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("steps")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("steps").inc(-1)

    def test_snapshot(self):
        c = Counter("steps", {"phase": "train"})
        c.inc(4)
        assert c.snapshot() == {"value": 4.0}
        assert c.labels == {"phase": "train"}


class TestGauge:
    def test_set_and_shift(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_statistics(self):
        h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        assert h.min == 0.05
        assert h.max == 5.0
        assert h.mean == pytest.approx(5.55 / 3)

    def test_buckets_are_cumulative(self):
        h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 3]  # 50.0 only lands in +Inf

    def test_empty_mean_is_zero(self):
        assert Histogram("latency").mean == 0.0
        assert Histogram("latency").snapshot()["min"] is None

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=())
        with pytest.raises(ValueError):
            Histogram("latency", buckets=(1.0, 0.5))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_child(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", phase="x") is reg.counter("a", phase="x")

    def test_label_sets_are_distinct_children(self):
        reg = MetricsRegistry()
        reg.counter("a", phase="x").inc()
        reg.counter("a", phase="y").inc(2)
        assert reg.counter("a", phase="x").value == 1
        assert reg.counter("a", phase="y").value == 2
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        reg.gauge("present", kind="g").set(1)
        assert reg.get("present", kind="g").value == 1
        assert reg.get("present") is None  # different (empty) label set
        assert len(reg) == 1

    def test_snapshot_shape_and_order(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(2)
        reg.counter("a", phase="x").inc()
        snap = reg.snapshot()
        assert [e["name"] for e in snap] == ["a", "b"]  # name-sorted
        assert snap[0] == {"type": "metric", "kind": "counter", "name": "a",
                           "labels": {"phase": "x"}, "value": 1.0}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.get("a") is None


class TestThreadSafety:
    def test_concurrent_updates_lose_nothing(self):
        # Loadgen worker threads hammer the same children: the
        # get-or-create race must hand every thread the same child, and
        # no counter increment / histogram bucket / P² marker update may
        # be lost to an unsynchronised read-modify-write.
        reg = MetricsRegistry()
        n_threads, n_iter = 8, 400
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_iter):
                reg.counter("ts.count").inc()
                reg.histogram("ts.hist").observe(0.01)
                reg.quantile("ts.lat").observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = n_threads * n_iter
        assert len(reg) == 3  # one child per (name, labels), not two
        assert reg.counter("ts.count").value == total
        assert reg.histogram("ts.hist").count == total
        assert reg.histogram("ts.hist").bucket_counts[-1] == total
        quantile = reg.quantile("ts.lat")
        assert quantile.count == total
        assert quantile.estimate(0.5) == pytest.approx(0.01)
