"""Tests for the embedded HTTP ops plane (:class:`repro.obs.server.ObsServer`)."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.emitters import lint_exposition
from repro.obs.flightrec import FlightRecorder
from repro.obs.server import ObsServer
from repro.obs.slo import GaugeBoundSLO, register_slo


class StubWal:
    path = "/tmp/stub.wal"
    lag = 3
    torn_records = 1


class StubScheduler:
    def stats(self):
        return {"queued": 2, "in_flight": 1, "shed": 0}


class StubIndex:
    """Duck-typed stand-in for ServingIndex: just what the server reads."""

    degraded = False
    num_papers = 42
    pool_version = 7
    index_kind = "exact"
    nprobe = 8

    def __init__(self, healthy=True, wal=None, scheduler=None):
        self._healthy = healthy
        self.wal = wal
        self.scheduler = scheduler
        self.probes = []

    def health(self, probe=True):
        self.probes.append(probe)
        return {"healthy": self._healthy, "degraded": self.degraded,
                "probed": probe}


def _get(url):
    """GET *url*; returns (status, headers, body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


@pytest.fixture
def server():
    srv = ObsServer(recorder=FlightRecorder())
    with srv:
        yield srv


class TestLifecycle:
    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_unknown_route_is_404(self, server):
        status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert b"no such endpoint" in body

    def test_trailing_slash_routes(self, server):
        status, _, _ = _get(server.url + "/healthz/")
        assert status == 200


class TestMetrics:
    def test_scrape_is_lint_clean_with_process_gauges(self, server,
                                                      obs_enabled):
        obs.count("server.test.counter", 3, outcome="ok")
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert lint_exposition(text) == []
        assert "repro_process_rss_kb" in text
        assert "repro_process_uptime_seconds" in text
        assert 'repro_server_test_counter{outcome="ok"} 3' in text

    def test_scrape_feeds_recorder_counter_deltas(self, server, obs_enabled):
        obs.count("server.delta.counter")
        _get(server.url + "/metrics")
        kinds = [e["kind"] for e in server.recorder.entries()]
        assert "metrics" in kinds


class TestProbes:
    def test_healthz_without_index(self, server):
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "alive"
        assert payload["index"] is False

    def test_healthz_stays_200_when_degraded(self):
        index = StubIndex(healthy=False)
        index.degraded = True
        with ObsServer(index, recorder=FlightRecorder()) as srv:
            status, _, body = _get(srv.url + "/healthz")
        assert status == 200
        assert json.loads(body)["degraded"] is True

    def test_readyz_503_without_index(self, server):
        status, _, body = _get(server.url + "/readyz")
        assert status == 503
        assert json.loads(body)["healthy"] is False

    def test_readyz_reflects_health_report(self):
        healthy = StubIndex(healthy=True)
        with ObsServer(healthy, recorder=FlightRecorder()) as srv:
            assert _get(srv.url + "/readyz")[0] == 200
        assert healthy.probes == [False]  # no self-test unless asked
        unhealthy = StubIndex(healthy=False)
        with ObsServer(unhealthy, recorder=FlightRecorder()) as srv:
            status, _, body = _get(srv.url + "/readyz")
        assert status == 503
        assert json.loads(body)["healthy"] is False

    def test_readyz_probe_query_forces_self_test(self):
        index = StubIndex(healthy=True)
        with ObsServer(index, recorder=FlightRecorder()) as srv:
            _get(srv.url + "/readyz?probe=1")
        assert index.probes == [True]


class TestSLOEndpoint:
    def test_slo_report_and_page_burn_trip(self, server, obs_enabled,
                                           clean_slos):
        register_slo(GaugeBoundSLO("test.bound", "test.gauge", bound=10.0))
        obs.gauge("test.gauge", 5.0)
        status, _, body = _get(server.url + "/slo")
        assert status == 200
        payload = json.loads(body)
        assert payload["breaches"] == []
        assert [s["slo"] for s in payload["slos"]] == ["test.bound"]

        # Burn rate 50x >= the 10x page threshold: the recorder trips.
        obs.gauge("test.gauge", 500.0)
        _, _, body = _get(server.url + "/slo")
        payload = json.loads(body)
        assert payload["breaches"] == ["test.bound"]
        trips = [e for e in server.recorder.entries() if e["kind"] == "trip"]
        assert any(e["name"] == "slo_page_burn[test.bound]" for e in trips)
        # The ok -> breached transition made it into the ring too.
        transitions = [e for e in server.recorder.entries()
                       if e["kind"] == "slo"]
        assert [e["ok"] for e in transitions] == [False]


class TestDebugVars:
    def test_full_wiring(self, obs_enabled):
        index = StubIndex(wal=StubWal(), scheduler=StubScheduler())
        with ObsServer(index, recorder=FlightRecorder()) as srv:
            status, _, body = _get(srv.url + "/debug/vars")
        assert status == 200
        payload = json.loads(body)
        assert payload["scheduler"] == {"queued": 2, "in_flight": 1, "shed": 0}
        assert payload["wal"] == {"path": "/tmp/stub.wal", "lag": 3,
                                  "torn_records": 1}
        assert payload["index"]["pool_size"] == 42
        assert payload["index"]["index_kind"] == "exact"
        assert payload["process"]["rss_kb"] > 0
        assert payload["flightrec"]["armed"] is False
        assert payload["obs_enabled"] is True

    def test_without_index(self, server):
        _, _, body = _get(server.url + "/debug/vars")
        payload = json.loads(body)
        assert payload["scheduler"] is None
        assert payload["wal"] is None
        assert payload["index"] is None

    def test_explicit_scheduler_override(self):
        srv = ObsServer(scheduler=StubScheduler(), recorder=FlightRecorder())
        assert srv.scheduler.stats()["queued"] == 2


class TestExemplars:
    def test_exemplars_endpoint(self, server, obs_enabled):
        with obs.request("exemplar.request"):
            pass
        status, _, body = _get(server.url + "/exemplars")
        assert status == 200
        payload = json.loads(body)
        assert "exemplars" in payload
