"""Exemplar reservoir bounds, request contexts, and trace-ID joins."""

import json

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.exemplars import Exemplar, ExemplarReservoir


def make(trace_id, duration, error=None):
    return Exemplar(trace_id=trace_id, name="req", duration=duration,
                    error=error)


class TestReservoirBounds:
    def test_keeps_slowest_n(self):
        reservoir = ExemplarReservoir(slow_capacity=3, error_capacity=4)
        for i, duration in enumerate([0.1, 0.5, 0.2, 0.9, 0.05, 0.7]):
            reservoir.offer(make(f"t{i}", duration))
        slowest = reservoir.slowest()
        assert [e.duration for e in slowest] == [0.9, 0.7, 0.5]
        assert reservoir.offered == 6
        assert len(reservoir) == 3

    def test_fast_request_rejected_when_full(self):
        reservoir = ExemplarReservoir(slow_capacity=2, error_capacity=2)
        assert reservoir.offer(make("a", 0.5))
        assert reservoir.offer(make("b", 0.6))
        assert not reservoir.offer(make("c", 0.1))  # faster than both
        assert {e.trace_id for e in reservoir.slowest()} == {"a", "b"}

    def test_errors_keep_most_recent(self):
        reservoir = ExemplarReservoir(slow_capacity=2, error_capacity=2)
        for i in range(4):
            # Duration 0: would never survive on slowness, always
            # survives on error.
            assert reservoir.offer(make(f"e{i}", 0.0, error="boom"))
        errored = reservoir.errored()
        assert [e.trace_id for e in errored] == ["e3", "e2"]

    def test_errors_do_not_consume_slow_slots(self):
        reservoir = ExemplarReservoir(slow_capacity=1, error_capacity=1)
        reservoir.offer(make("slow", 1.0))
        reservoir.offer(make("err", 2.0, error="boom"))
        assert [e.trace_id for e in reservoir.slowest()] == ["slow"]
        assert [e.trace_id for e in reservoir.errored()] == ["err"]

    def test_reset(self):
        reservoir = ExemplarReservoir()
        reservoir.offer(make("a", 1.0))
        reservoir.offer(make("b", 0.0, error="x"))
        reservoir.reset()
        assert len(reservoir) == 0 and reservoir.offered == 0

    def test_snapshot_shape(self):
        exemplar = Exemplar(trace_id="t", name="req", duration=0.25,
                            error=None, spans=({"name": "child"},),
                            attrs={"k": 10})
        snap = exemplar.snapshot()
        assert snap["type"] == "exemplar"
        assert snap["reason"] == "slow"
        assert snap["trace_id"] == "t"
        assert snap["spans"] == [{"name": "child"}]
        assert make("t", 0.0, error="boom").reason == "error"

    def test_invalid_capacities(self):
        with pytest.raises(ValueError):
            ExemplarReservoir(slow_capacity=0)
        with pytest.raises(ValueError):
            ExemplarReservoir(error_capacity=0)


class TestRequestContext:
    def test_request_allocates_and_propagates_trace_id(self, obs_enabled):
        with obs.request("serve.query", k=5) as span:
            assert span.trace_id is not None
            assert obs.current_trace_id() == span.trace_id
            with obs.trace("rank") as child:
                assert child.trace_id == span.trace_id
        assert obs.current_trace_id() is None
        [exemplar] = obs.get_exemplars().slowest()
        assert exemplar.trace_id == span.trace_id
        assert {s["name"] for s in exemplar.spans} == {"serve.query", "rank"}
        assert all(s["trace_id"] == span.trace_id for s in exemplar.spans)

    def test_distinct_requests_get_distinct_ids(self, obs_enabled):
        ids = set()
        for _ in range(3):
            with obs.request("r") as span:
                ids.add(span.trace_id)
        assert len(ids) == 3

    def test_errored_request_is_retained(self, obs_enabled):
        with pytest.raises(RuntimeError):
            with obs.request("r"):
                raise RuntimeError("boom")
        [exemplar] = obs.get_exemplars().errored()
        assert exemplar.error == "RuntimeError"
        assert exemplar.reason == "error"

    def test_nested_request_joins_enclosing_trace(self, obs_enabled):
        # A serve.query request opened under a loadgen.request must not
        # allocate a second trace: one ID, one reservoir offer (by the
        # outermost context), one coherent span tree.
        with obs.request("loadgen.request") as outer:
            with obs.request("serve.query") as inner:
                assert obs.current_trace_id() == outer.trace_id
        assert inner.trace_id == outer.trace_id
        assert obs.current_trace_id() is None
        [exemplar] = obs.get_exemplars().slowest()
        assert exemplar.name == "loadgen.request"
        assert {s["name"] for s in exemplar.spans} == {"loadgen.request",
                                                       "serve.query"}
        assert all(s["trace_id"] == outer.trace_id for s in exemplar.spans)

    def test_metric_exemplar_attaches_after_request_exit(self, obs_enabled):
        # Latency call sites record span.duration only after the request
        # context exits (which unbinds the ambient ID) — the explicit
        # trace_id keeps the p99-tail-to-span-tree join alive.
        with obs.request("r") as span:
            pass
        assert obs.current_trace_id() is None
        obs.observe("late.duration_seconds", 0.5, trace_id=span.trace_id)
        obs.observe_quantile("late.latency", 0.5, trace_id=span.trace_id)
        registry = obs.get_registry()
        for name in ("late.duration_seconds", "late.latency"):
            child = registry.get(name)
            assert child.exemplar == {"trace_id": span.trace_id,
                                      "value": 0.5}

    def test_metric_exemplar_carries_trace_id(self, obs_enabled):
        with obs.request("r") as span:
            obs.observe("lat.duration_seconds", 0.5)
            obs.observe_quantile("lat.latency", 0.5)
        registry = obs.get_registry()
        for name in ("lat.duration_seconds", "lat.latency"):
            child = registry.get(name)
            assert child.exemplar == {"trace_id": span.trace_id, "value": 0.5}
            assert child.snapshot()["exemplar"]["trace_id"] == span.trace_id

    def test_event_carries_trace_id(self, obs_enabled):
        with obs.request("r") as span:
            obs.event("serve.degraded", reason="no_model")
        [event] = list(obs_enabled.events)
        assert event["trace_id"] == span.trace_id
        assert event["reason"] == "no_model"

    def test_disabled_is_noop(self, obs_disabled):
        with obs.request("r") as span:
            assert span.trace_id is None
        obs.event("e")
        assert len(obs.get_exemplars()) == 0

    def test_exemplar_trace_ids_join_to_capture(self, obs_enabled, tmp_path):
        with obs.request("serve.query"):
            with obs.trace("rank"):
                pass
        path = tmp_path / "cap.jsonl"
        obs.write_jsonl(path)
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        span_ids = {l["trace_id"] for l in lines if l.get("type") == "span"}
        exemplar_ids = {l["trace_id"] for l in lines
                        if l.get("type") == "exemplar"}
        assert exemplar_ids and exemplar_ids <= span_ids

    def test_report_exemplars_cli(self, obs_enabled, tmp_path, capsys):
        with obs.request("serve.query", k=3):
            with obs.trace("rank"):
                pass
        path = tmp_path / "cap.jsonl"
        obs.write_jsonl(path)
        trace_id = obs.get_exemplars().slowest()[0].trace_id
        obs.configure(enabled=False)  # CLI must read the file, not state
        assert obs_main(["report", str(path), "--exemplars"]) == 0
        out = capsys.readouterr().out
        assert trace_id in out
        assert "rank" in out  # full span tree, not just the root
