"""End-to-end telemetry: trainers, sampler, graph builder, experiments.

These tests assert the acceptance criteria of the observability layer:
with obs enabled, a real ``NPRecTrainer.train`` call and an experiment
run each produce a JSON-lines trace containing named spans with
durations and the de-fuzzing drop counter; with obs disabled the same
code paths record nothing.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.nprec import NPRecModel, NPRecTrainer, build_training_pairs
from repro.core.nprec.sampling import defuzzed_negatives
from repro.core.rules import ExpertRuleSet
from repro.core.subspace_model import SubspaceEmbeddingNetwork
from repro.core.twin import TwinNetworkTrainer
from repro.core.annotation import annotate_triplets
from repro.data import load_acm
from repro.experiments.common import ResultTable, register, run_experiment
from repro.graph import build_academic_network
from repro.text import SentenceEncoder


@pytest.fixture(scope="module")
def acm_small():
    return load_acm(scale=0.25, seed=11)


@pytest.fixture(scope="module")
def train_papers(acm_small):
    train, _ = acm_small.split_by_year(2014)
    return train


@pytest.fixture(scope="module")
def fitted_rules(train_papers):
    return ExpertRuleSet(SentenceEncoder(dim=16)).fit(train_papers, n_pairs=40,
                                                      seed=0)


def make_model(corpus, train_papers, seed=0):
    graph = build_academic_network(corpus, papers=train_papers)
    rng = np.random.default_rng(seed)
    text = {p.id: rng.normal(size=12) for p in train_papers}
    return NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=seed)


class TestTrainerTelemetry:
    def test_per_epoch_metrics_recorded(self, obs_enabled, acm_small,
                                        train_papers, fitted_rules):
        pairs = build_training_pairs(train_papers, rules=fitted_rules,
                                     negative_ratio=2, max_positives=20, seed=0)
        model = make_model(acm_small, train_papers)
        epochs = 2
        history = NPRecTrainer(model, lr=1e-2, epochs=epochs, seed=0).train(pairs)

        tracer = obs.get_tracer()
        names = [s.name for s in tracer.spans]
        assert names.count("nprec.train.epoch") == epochs
        assert "nprec.train" in names
        assert all(s.duration > 0 for s in tracer.spans)
        # Epoch spans carry the loss/accuracy the history reports.
        epoch_spans = sorted((s for s in tracer.spans
                              if s.name == "nprec.train.epoch"),
                             key=lambda s: s.index)
        assert [s.attrs["loss"] for s in epoch_spans] == history.losses
        assert [s.attrs["accuracy"] for s in epoch_spans] == history.accuracies

        reg = obs.get_registry()
        assert reg.get("nprec.train.epoch_loss").count == epochs
        assert reg.get("nprec.train.epoch_accuracy").count == epochs
        assert reg.get("nprec.train.epoch_duration_seconds").count == epochs
        assert reg.get("nprec.train.grad_steps").value >= epochs
        # The streaming-quantile twin of the epoch-duration histogram.
        latency = reg.get("nprec.train.epoch.latency")
        assert latency.count == epochs
        assert latency.estimate(0.99) > 0

    def test_profiling_captures_training_allocations(self, obs_profiling,
                                                     acm_small, train_papers,
                                                     fitted_rules):
        pairs = build_training_pairs(train_papers, rules=fitted_rules,
                                     negative_ratio=1, max_positives=10, seed=0)
        model = make_model(acm_small, train_papers)
        NPRecTrainer(model, lr=1e-2, epochs=1, seed=0).train(pairs)
        (span,) = [s for s in obs.get_tracer().spans
                   if s.name == "profile.nprec.train"]
        assert span.attrs["alloc_peak_kb"] > 0
        assert span.attrs["top_allocations"]
        net = obs.get_registry().get("profile.net_alloc_kb",
                                     stage="nprec.train")
        assert net is not None and net.count == 1

    def test_full_capture_has_spans_and_drop_counter(self, obs_enabled, tmp_path,
                                                     acm_small, train_papers,
                                                     fitted_rules):
        # The acceptance-criteria capture: sample (de-fuzzed) + train, then
        # export JSONL and check spans + the de-fuzzing drop counter.
        pairs = build_training_pairs(train_papers, rules=fitted_rules,
                                     negative_ratio=2, max_positives=10, seed=0)
        model = make_model(acm_small, train_papers)
        NPRecTrainer(model, lr=1e-2, epochs=1, seed=0).train(pairs)
        events = obs.read_jsonl(obs.write_jsonl(tmp_path / "train.jsonl"))
        spans = [e for e in events if e.get("type") == "span"]
        metrics = [e for e in events if e.get("type") == "metric"]
        assert any(s["name"] == "nprec.train.epoch" and s["duration"] > 0
                   for s in spans)
        assert any(s["name"] == "nprec.sampling.build" for s in spans)
        drop = [m for m in metrics
                if m["name"] == "nprec.sampling.dropped_ambiguous"]
        assert drop and drop[0]["labels"] == {"strategy": "defuzz"}

    def test_disabled_records_nothing(self, obs_disabled, acm_small,
                                      train_papers, fitted_rules):
        pairs = build_training_pairs(train_papers, rules=fitted_rules,
                                     negative_ratio=1, max_positives=10, seed=0)
        model = make_model(acm_small, train_papers)
        NPRecTrainer(model, lr=1e-2, epochs=1, seed=0).train(pairs)
        assert obs.get_tracer().spans == []
        assert len(obs.get_registry()) == 0


class TestTwinTelemetry:
    def test_hinge_loss_and_rule_agreement_curves(self, obs_enabled,
                                                  train_papers, fitted_rules):
        encoder = SentenceEncoder(dim=16)
        papers = train_papers[:30]
        triplets = annotate_triplets(papers, fitted_rules, n_triplets=12, seed=0)
        encoded = {}
        for p in papers:
            H = encoder.encode(p.abstract)
            labels = list(p.sentence_labels)[:H.shape[0]]
            encoded[p.id] = (H[:len(labels)], labels)
        network = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        epochs = 2
        trainer = TwinNetworkTrainer(network, epochs=epochs, batch_size=8, seed=0)
        history = trainer.train(triplets, encoded)

        reg = obs.get_registry()
        assert reg.get("sem.twin.epoch_hinge_loss").count == epochs
        agreement = reg.get("sem.twin.epoch_rule_agreement")
        assert agreement.count == epochs
        assert 0.0 <= agreement.min and agreement.max <= 1.0
        # Agreement is the complement of the reported violation rate.
        assert agreement.sum == pytest.approx(
            sum(1.0 - v for v in history.violation_rates))
        assert reg.get("sem.twin.epoch.latency").count == epochs
        names = [s.name for s in obs.get_tracer().spans]
        assert names.count("sem.twin.train.epoch") == epochs


class TestRankTelemetry:
    def _recommender(self, acm_small, train_papers):
        from repro.core.nprec.recommend import NPRecRecommender

        rec = NPRecRecommender()
        rec.model = make_model(acm_small, train_papers)
        rec._train_by_id = {p.id: p for p in train_papers}
        return rec

    def test_rank_records_span_histogram_and_quantile(self, obs_enabled,
                                                      acm_small, train_papers):
        rec = self._recommender(acm_small, train_papers)
        ranked = rec.rank(train_papers[:2], train_papers[2:8])
        assert len(ranked) == 6
        (span,) = [s for s in obs.get_tracer().spans
                   if s.name == "nprec.recommend.rank"]
        reg = obs.get_registry()
        duration = reg.get("nprec.recommend.rank.duration_seconds")
        assert duration.count == 1
        assert duration.sum == pytest.approx(span.duration)
        latency = reg.get("nprec.recommend.rank.latency")
        assert latency.count == 1
        assert latency.estimate(0.5) == pytest.approx(span.duration)
        assert reg.get("nprec.recommend.queries").value == 1

    def test_disabled_rank_records_nothing(self, obs_disabled, acm_small,
                                           train_papers):
        # Acceptance criterion: the instrumented rank() path must be a
        # pure no-op when observability is off.
        rec = self._recommender(acm_small, train_papers)
        ranked = rec.rank(train_papers[:2], train_papers[2:8])
        assert len(ranked) == 6
        assert obs.get_tracer().spans == []
        assert len(obs.get_registry()) == 0


class TestSamplerTelemetry:
    def test_defuzz_funnel_adds_up(self, obs_enabled, train_papers, fitted_rules):
        negatives = defuzzed_negatives(train_papers, fitted_rules, 15,
                                       threshold_quantile=0.5, seed=0)
        reg = obs.get_registry()
        attempts = reg.get("nprec.sampling.candidates", strategy="defuzz").value
        accepted = reg.get("nprec.sampling.negatives", strategy="defuzz").value
        dropped = reg.get("nprec.sampling.dropped_ambiguous",
                          strategy="defuzz").value
        skipped = reg.get("nprec.sampling.skipped_cited", strategy="defuzz").value
        assert accepted == len(negatives)
        assert attempts == accepted + dropped + skipped
        assert dropped > 0  # a 0.5 quantile threshold must reject something


class TestGraphTelemetry:
    def test_node_and_edge_gauges(self, obs_enabled, acm_small, train_papers):
        build_academic_network(acm_small, papers=train_papers)
        reg = obs.get_registry()
        assert reg.get("graph.nodes", type="paper").value == len(train_papers)
        assert reg.get("graph.edges", relation="written_by").value > 0
        assert reg.get("graph.edges", relation="cites").value > 0
        (span,) = [s for s in obs.get_tracer().spans if s.name == "graph.build"]
        assert span.attrs["entities"] > len(train_papers)


class TestExperimentTelemetry:
    def test_run_experiment_records_timed_trace(self, obs_enabled):
        @register("_obs_dummy")
        def _dummy(scale=1.0, seed=0):
            table = ResultTable(title="dummy", columns=["Model", "Metric"])
            table.add_row("m", 1.0)
            return table

        try:
            result = run_experiment("_obs_dummy", scale=0.5, seed=3)
        finally:
            from repro.experiments.common import EXPERIMENTS
            EXPERIMENTS.pop("_obs_dummy", None)
        assert result.cell("m", "Metric") == 1.0
        (span,) = [s for s in obs.get_tracer().spans
                   if s.name == "experiment._obs_dummy"]
        assert span.attrs == {"scale": 0.5, "seed": 3}
        duration = obs.get_registry().get("experiment.duration_seconds",
                                          experiment="_obs_dummy")
        assert duration.count == 1
        assert duration.sum == pytest.approx(span.duration, rel=0.5, abs=0.05)
