"""SLO evaluation, rolling-window burn rates, alert sinks, registry."""

import json

import pytest

from repro import obs
from repro.obs.slo import (
    CallbackAlertSink,
    ConsoleAlertSink,
    ErrorRateSLO,
    JsonlAlertSink,
    LatencySLO,
    SLOMonitor,
    SLOStatus,
    default_serving_slos,
    evaluate_registered,
    register_slo,
    registered_slos,
    unregister_slo,
)
from repro.obs.testing import FakeClock


class TestLatencySLO:
    def test_no_data_is_ok(self, obs_enabled):
        status = LatencySLO("s", metric="absent.latency").evaluate()
        assert status.ok and status.no_data
        assert status.observed is None

    def test_breach_and_pass(self, obs_enabled):
        slo = LatencySLO("s", metric="m.latency", quantile=0.99,
                         threshold=0.1)
        for _ in range(20):
            obs.observe_quantile("m.latency", 0.01)
        assert slo.evaluate().ok
        for _ in range(20):
            obs.observe_quantile("m.latency", 0.5)
        status = slo.evaluate()
        assert not status.ok
        assert status.observed > 0.1
        assert "p99" in status.detail

    def test_worst_label_set_is_judged(self, obs_enabled):
        slo = LatencySLO("s", metric="m.latency", threshold=0.1)
        obs.observe_quantile("m.latency", 0.01, route="fast")
        obs.observe_quantile("m.latency", 0.9, route="slow")
        status = slo.evaluate()
        assert not status.ok
        assert status.observed == pytest.approx(0.9)

    def test_untracked_quantile_falls_back_upward(self, obs_enabled):
        # Objective at p95; family only tracks p50/p90/p99 -> judge p99.
        obs.get_registry().quantile("m.latency").observe(0.2)
        status = LatencySLO("s", metric="m.latency", quantile=0.95,
                            threshold=0.1).evaluate()
        assert not status.ok

    def test_validation(self):
        with pytest.raises(ValueError, match="quantile"):
            LatencySLO("s", metric="m", quantile=1.5)
        with pytest.raises(ValueError, match="threshold"):
            LatencySLO("s", metric="m", threshold=0.0)


class TestErrorRateSLO:
    def test_no_traffic_is_ok(self, obs_enabled):
        status = ErrorRateSLO("s", numerator="errs",
                              denominator="reqs").evaluate()
        assert status.ok and status.no_data

    def test_lifetime_budget(self, obs_enabled):
        slo = ErrorRateSLO("s", numerator="errs", denominator="reqs",
                           budget=0.05)
        obs.count("reqs", 100)
        obs.count("errs", 2)
        status = slo.evaluate()
        assert status.ok
        assert status.burn_rate == pytest.approx(0.4)
        obs.count("errs", 8)
        status = slo.evaluate()
        assert not status.ok
        assert status.observed == pytest.approx(0.1)
        assert status.burn_rate == pytest.approx(2.0)

    def test_label_sets_sum_into_the_budget(self, obs_enabled):
        obs.count("reqs", 10)
        obs.count("errs", 1, reason="timeout")
        obs.count("errs", 1, reason="corrupt")
        status = ErrorRateSLO("s", numerator="errs", denominator="reqs",
                              budget=0.1).evaluate()
        assert not status.ok
        assert status.observed == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            ErrorRateSLO("s", numerator="a", denominator="b", budget=1.0)
        with pytest.raises(ValueError, match="window"):
            ErrorRateSLO("s", numerator="a", denominator="b", window=0.0)


class TestSLOMonitor:
    def test_windowed_burn_rate_recovers(self, obs_enabled):
        clock = FakeClock()
        slo = ErrorRateSLO("s", numerator="errs", denominator="reqs",
                           budget=0.05, window=60.0)
        monitor = SLOMonitor([slo], clock=clock)
        obs.count("reqs", 100)
        assert monitor.check()[0].no_data  # first sample: empty window

        obs.count("errs", 50)
        obs.count("reqs", 50)
        clock.advance(10)
        assert not monitor.check()[0].ok  # 50/50 errors inside the window

        # An hour later the bad minute has rolled out of the window;
        # fresh traffic is clean, so the SLO recovers even though the
        # lifetime totals stay bad.
        clock.advance(3600)
        obs.count("reqs", 100)
        status = monitor.check()[0]
        assert status.ok
        assert ErrorRateSLO.evaluate(slo).ok is False  # lifetime view

    def test_alerts_dispatch_only_on_breach(self, obs_enabled):
        clock = FakeClock()
        seen = []
        slo = ErrorRateSLO("s", numerator="errs", denominator="reqs",
                           budget=0.05, window=60.0)
        monitor = SLOMonitor([slo], sinks=[CallbackAlertSink(seen.append)],
                             clock=clock)
        obs.count("reqs", 100)
        monitor.check()
        assert seen == []
        obs.count("errs", 50)
        obs.count("reqs", 50)
        clock.advance(1)
        monitor.check()
        assert len(seen) == 1 and isinstance(seen[0], SLOStatus)

    def test_latency_slos_use_current_sketch(self, obs_enabled):
        monitor = SLOMonitor([LatencySLO("s", metric="m.latency",
                                         threshold=0.1)],
                             clock=FakeClock())
        obs.observe_quantile("m.latency", 5.0)
        assert not monitor.check()[0].ok


class TestAlertSinks:
    def _breach(self):
        return SLOStatus("s", "latency", ok=False, observed=1.0, target=0.1,
                         detail="p99 = 1s vs target 0.1s")

    def test_console_sink(self, capsys):
        import sys
        ConsoleAlertSink(stream=sys.stderr).emit(self._breach())
        assert "SLO BREACH [s]" in capsys.readouterr().err

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "alerts" / "slo.jsonl"
        sink = JsonlAlertSink(path)
        sink.emit(self._breach())
        sink.emit(self._breach())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        event = json.loads(lines[0])
        assert event["type"] == "slo_alert"
        assert event["slo"] == "s" and event["ok"] is False


class TestRegistry:
    def test_register_evaluate_unregister(self, obs_enabled, clean_slos):
        slo = LatencySLO("mine", metric="m.latency", threshold=0.1)
        register_slo(slo)
        assert registered_slos() == [slo]
        obs.observe_quantile("m.latency", 9.0)
        statuses = evaluate_registered()
        assert len(statuses) == 1 and not statuses[0].ok
        unregister_slo("mine")
        assert registered_slos() == []

    def test_replace_false_keeps_existing(self, clean_slos):
        mine = LatencySLO("serve.query.p99", metric="m", threshold=9.0)
        register_slo(mine)
        for default in default_serving_slos():
            register_slo(default, replace=False)
        by_name = {s.name: s for s in registered_slos()}
        assert by_name["serve.query.p99"] is mine  # operator override wins
        assert "serve.error_budget" in by_name

    def test_default_serving_slos_cover_the_issue(self):
        defaults = {s.name: s for s in default_serving_slos()}
        assert defaults["serve.query.p99"].metric == "serve.query.latency"
        assert defaults["serve.error_budget"].numerator == "serve.degraded"
