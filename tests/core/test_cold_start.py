"""Cold-start scenario tests: candidates with maximally unknown metadata.

The whole point of the paper is handling *new* papers. These tests push
the cold start further than the standard protocol: candidates whose
authors, keywords, and venue never occur in training.
"""

import numpy as np
import pytest

from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.core.sem import SEMConfig
from repro.data import Author, Corpus, Paper, Venue, load_acm
from repro.experiments.protocol import split_task_by_year


@pytest.fixture(scope="module")
def base_task():
    corpus = load_acm(scale=0.25, seed=30)
    return split_task_by_year(corpus, 2014, n_users=4, candidate_size=12,
                              min_prefix=6, seed=0)


@pytest.fixture(scope="module")
def fitted(base_task):
    config = NPRecConfig(seed=0, epochs=1, max_positives=40,
                         sem=SEMConfig(n_triplets=15, epochs=1))
    rec = NPRecRecommender(config)
    rec.fit(base_task.corpus, base_task.train_papers, base_task.new_papers)
    return rec


class TestColdCandidates:
    def test_candidates_rank_without_citation_history(self, fitted, base_task):
        """Standard protocol: candidates never appear as cited in training."""
        model = fitted.model
        train_ids = {p.id for p in base_task.train_papers}
        for candidate in base_task.new_papers[:20]:
            index = model.graph.index_of("paper", candidate.id)
            assert model.graph.citing_papers(index) == []
            for cited in model.graph.cited_papers(index):
                assert model.graph.key_of(cited).id in train_ids or True

    def test_influence_vectors_finite_for_all_candidates(self, fitted, base_task):
        vectors = fitted.model.influence_vectors(
            [p.id for p in base_task.new_papers[:20]])
        assert np.isfinite(vectors.data).all()

    def test_scores_vary_across_candidates(self, fitted, base_task):
        user = base_task.users[0]
        ranked_a = fitted.rank(list(user.train_papers), user.candidate_set(10))
        other = base_task.users[1]
        ranked_b = fitted.rank(list(other.train_papers), other.candidate_set(10))
        # personalisation: two users with different histories get different
        # orderings over (generally) different candidate sets
        assert ranked_a != ranked_b


class TestSyntheticExtremeColdStart:
    def test_totally_alien_candidate_still_scoreable(self, base_task):
        """A candidate sharing *no* metadata with training must not crash
        the pipeline and must receive a finite score."""
        corpus = base_task.corpus
        alien_author = Author(id="alien-author", name="Alien")
        alien_venue = Venue(id="alien-venue", name="Alien Venue", field="cs")
        alien = Paper(
            id="alien-paper", title="Totally new directions",
            abstract="Something genuinely unprecedented appears. "
                     "We propose an unheard-of construction. "
                     "Results exceed every expectation.",
            year=2015, field=corpus.papers[0].field,
            category_path=corpus.papers[0].category_path,
            keywords=("unheard", "unprecedented"),
            authors=("alien-author",), venue="alien-venue",
            sentence_labels=(0, 1, 2),
        )
        extended = Corpus(
            "extended", corpus.papers + [alien],
            authors=corpus.authors + [alien_author],
            venues=corpus.venues + [alien_venue],
            taxonomy=corpus.taxonomy, strict=False,
        )
        config = NPRecConfig(seed=0, epochs=1, max_positives=30,
                             sem=SEMConfig(n_triplets=10, epochs=1))
        rec = NPRecRecommender(config)
        train = [p for p in extended.papers if p.year < 2014]
        new = [p for p in extended.papers if p.year >= 2014]
        rec.fit(extended, train, new)
        user_papers = [p for p in train if p.authors][:3]
        ranked = rec.rank(user_papers, [alien] + new[:9])
        assert "alien-paper" in ranked
        assert len(ranked) == 10
