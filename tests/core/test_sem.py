"""Integration tests for the end-to-end SEM pipeline."""

import numpy as np
import pytest

from repro.analysis import spearman_correlation
from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.data import load_scopus
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def corpus_cs():
    corpus = load_scopus(scale=0.4, seed=7)
    return corpus.by_field("computer_science")


@pytest.fixture(scope="module")
def fitted_sem(corpus_cs):
    config = SEMConfig(n_triplets=40, epochs=2, seed=0)
    return SubspaceEmbeddingMethod(config).fit(corpus_cs)


class TestFit:
    def test_embeddings_shape(self, fitted_sem, corpus_cs):
        emb = fitted_sem.embed(corpus_cs[0])
        assert emb.shape == (3, fitted_sem.embedding_dim)
        stacked = fitted_sem.embed_many(corpus_cs[:5])
        assert stacked.shape == (5, 3, fitted_sem.embedding_dim)

    def test_embedding_cached_and_deterministic(self, fitted_sem, corpus_cs):
        a = fitted_sem.embed(corpus_cs[0])
        b = fitted_sem.embed(corpus_cs[0])
        np.testing.assert_array_equal(a, b)

    def test_history_recorded(self, fitted_sem):
        assert fitted_sem.history_ is not None
        assert len(fitted_sem.history_.losses) == 2

    def test_rule_weights_sum_to_one(self, fitted_sem):
        assert fitted_sem.rules.weights.sum() == pytest.approx(1.0)

    def test_not_fitted_raises(self):
        sem = SubspaceEmbeddingMethod()
        with pytest.raises(NotFittedError):
            sem.embed_many([])

    def test_too_few_papers(self, corpus_cs):
        with pytest.raises(ValueError):
            SubspaceEmbeddingMethod().fit(corpus_cs[:2])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SEMConfig(num_subspaces=0)
        with pytest.raises(ValueError):
            SEMConfig(n_triplets=0)


class TestAnalysis:
    def test_outlier_scores_unit_interval(self, fitted_sem, corpus_cs):
        scores = fitted_sem.outlier_scores(corpus_cs, 1)
        assert scores.shape == (len(corpus_cs),)
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0

    def test_method_subspace_correlates_with_citations(self, fitted_sem, corpus_cs):
        """The CS Tab. I diagonal: method difference tracks citations."""
        cites = [p.citation_count for p in corpus_cs]
        rho = spearman_correlation(fitted_sem.outlier_scores(corpus_cs, 1), cites)
        assert rho > 0.1

    def test_difference_ranking_order(self, fitted_sem, corpus_cs):
        papers = corpus_cs[:30]
        ranking = fitted_sem.difference_ranking(papers, 0)
        assert len(ranking) == 30
        scores = fitted_sem.outlier_scores(papers, 0)
        by_id = {p.id: s for p, s in zip(papers, scores)}
        ranked_scores = [by_id[pid] for pid in ranking]
        assert ranked_scores == sorted(ranked_scores, reverse=True)

    def test_invalid_subspace(self, fitted_sem, corpus_cs):
        with pytest.raises(ValueError):
            fitted_sem.subspace_matrix(corpus_cs[:5], 7)

    def test_fused_embeddings(self, fitted_sem, corpus_cs):
        fused = fitted_sem.fused_embeddings(corpus_cs[:4])
        assert fused.shape == (4, fitted_sem.embedding_dim)
        weighted = fitted_sem.fused_embeddings(corpus_cs[:4], weights=[1.0, 0.0, 0.0])
        np.testing.assert_allclose(
            weighted, fitted_sem.embed_many(corpus_cs[:4])[:, 0, :])
        with pytest.raises(ValueError):
            fitted_sem.fused_embeddings(corpus_cs[:4], weights=[1.0])


class TestLabelerPath:
    def test_predicted_labels_mode(self, corpus_cs):
        config = SEMConfig(n_triplets=20, epochs=1, use_gold_labels=False,
                           labeler_train_size=40, labeler_epochs=3, seed=0)
        sem = SubspaceEmbeddingMethod(config).fit(corpus_cs[:80])
        assert sem.labeler is not None
        emb = sem.embed(corpus_cs[0])
        assert np.isfinite(emb).all()
