"""Tests for the expert rules (Eqs. 1-3 + abstract subspace rule)."""

import numpy as np
import pytest

from repro.core.rules import (
    EMPTY_KEYWORD_DISTANCE,
    RULE_NAMES,
    AbstractSubspaceRule,
    ExpertRuleSet,
    classification_difference,
    default_level_weight,
    keyword_difference,
    reference_difference,
    subspace_centroids,
)
from repro.data import Paper, load_scopus
from repro.errors import NotFittedError
from repro.text import HashWordVectors, SentenceEncoder


def make_paper(pid="p", **kw):
    base = dict(id=pid, title="t", abstract="One sentence here. Another one.",
                year=2015, field="cs", sentence_labels=(0, 1))
    base.update(kw)
    return Paper(**base)


class TestClassificationDifference:
    def test_identical_paths_zero(self):
        path = ("cs", "ml", "gnn")
        assert classification_difference(path, path) == 0.0

    def test_disjoint_paths_sum_both(self):
        a = ("cs",)
        b = ("bio",)
        expected = 2 * (default_level_weight(1) / 2.0)
        assert classification_difference(a, b) == pytest.approx(expected)

    def test_shared_prefix_counts_only_divergence(self):
        a = ("cs", "ml")
        b = ("cs", "db")
        expected = 2 * (default_level_weight(2) / 4.0)
        assert classification_difference(a, b) == pytest.approx(expected)

    def test_deeper_divergence_cheaper(self):
        shallow = classification_difference(("a",), ("b",))
        deep = classification_difference(("x", "a"), ("x", "b"))
        assert deep < shallow

    def test_level_weight_validation(self):
        with pytest.raises(ValueError):
            default_level_weight(0)


class TestReferenceDifference:
    def test_identical_sets(self):
        refs = ["r1", "r2"]
        # union=2, inter=2 -> (2+1)/(2+1) = 1
        assert reference_difference(refs, refs) == pytest.approx(1.0)

    def test_disjoint_smoothed(self):
        assert reference_difference(["a"], ["b"]) == pytest.approx(3.0)

    def test_disjoint_unsmoothed_inf(self):
        assert reference_difference(["a"], ["b"], smoothing=0) == float("inf")

    def test_empty_sets(self):
        assert reference_difference([], [], smoothing=0) == 0.0
        assert reference_difference([], [], smoothing=1) == pytest.approx(1.0)

    def test_monotone_in_overlap(self):
        low = reference_difference(["a", "b", "c"], ["a", "b", "c"])
        high = reference_difference(["a", "b", "c"], ["a", "x", "y"])
        assert high > low


class TestKeywordDifference:
    def test_identical_keywords_zero(self):
        wv = HashWordVectors(dim=16)
        assert keyword_difference(["gnn"], ["gnn"], wv) == pytest.approx(0.0)

    def test_empty_keywords_default(self):
        assert keyword_difference([], ["x"]) == EMPTY_KEYWORD_DISTANCE

    def test_overlap_reduces_difference(self):
        wv = HashWordVectors(dim=64)
        close = keyword_difference(["a", "b"], ["a", "c"], wv)
        far = keyword_difference(["a", "b"], ["x", "y"], wv)
        assert close < far


class TestSubspaceCentroids:
    def test_means_per_label(self):
        vecs = np.array([[1.0, 0.0], [3.0, 0.0], [0.0, 2.0]])
        cents = subspace_centroids(vecs, [0, 0, 1], 3)
        np.testing.assert_allclose(cents[0], [2.0, 0.0])
        np.testing.assert_allclose(cents[1], [0.0, 2.0])
        np.testing.assert_allclose(cents[2], [0.0, 0.0])  # empty subspace

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            subspace_centroids(np.ones((2, 3)), [0], 2)


class TestAbstractRule:
    def test_same_paper_zero_difference(self):
        enc = SentenceEncoder(dim=16)
        rule = AbstractSubspaceRule(enc)
        p = make_paper("p1")
        assert rule.difference(p, p, 0) == pytest.approx(0.0)

    def test_subspace_out_of_range(self):
        rule = AbstractSubspaceRule(SentenceEncoder(dim=16))
        p = make_paper("p1")
        with pytest.raises(ValueError):
            rule.difference(p, p, 9)

    def test_caching_consistent(self):
        rule = AbstractSubspaceRule(SentenceEncoder(dim=16))
        p = make_paper("p1")
        np.testing.assert_array_equal(rule.centroids(p), rule.centroids(p))


class TestExpertRuleSet:
    @pytest.fixture(scope="class")
    def fitted(self):
        corpus = load_scopus(scale=0.15, seed=3)
        papers = corpus.papers[:60]
        rules = ExpertRuleSet(SentenceEncoder(dim=16)).fit(papers, n_pairs=40, seed=0)
        return rules, papers

    def test_fused_scores_shape(self, fitted):
        rules, papers = fitted
        scores = rules.fused_scores(papers[0], papers[1])
        assert scores.shape == (3,)

    def test_not_fitted(self):
        rules = ExpertRuleSet(SentenceEncoder(dim=16))
        with pytest.raises(NotFittedError):
            rules.fused_score(make_paper("a"), make_paper("b"), 0)

    def test_same_topic_scores_lower(self, fitted):
        rules, papers = fitted
        # average fused score between same-topic pairs should be below
        # cross-discipline pairs
        same, cross = [], []
        for i in range(0, 30, 3):
            for j in range(1, 30, 3):
                if papers[i].id == papers[j].id:
                    continue
                score = float(np.mean(rules.fused_scores(papers[i], papers[j])))
                if papers[i].category_path[-1] == papers[j].category_path[-1]:
                    same.append(score)
                elif papers[i].field != papers[j].field:
                    cross.append(score)
        assert same and cross
        assert np.mean(same) < np.mean(cross)

    def test_weights_validation(self, fitted):
        rules, _ = fitted
        with pytest.raises(ValueError):
            rules.set_weights(np.ones(2))
        rules.set_weights(np.ones(len(RULE_NAMES)) / len(RULE_NAMES))

    def test_fit_requires_two_papers(self):
        with pytest.raises(ValueError):
            ExpertRuleSet(SentenceEncoder(dim=16)).fit([make_paper("only")])


class TestCentroidCacheBound:
    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            AbstractSubspaceRule(SentenceEncoder(dim=16), cache_size=0)

    def test_lru_eviction_keeps_most_recent(self):
        rule = AbstractSubspaceRule(SentenceEncoder(dim=16), cache_size=3)
        papers = [make_paper(f"p{i}") for i in range(5)]
        for p in papers:
            rule.centroids(p)
        assert len(rule._cache) == 3
        assert set(rule._cache) == {"p2", "p3", "p4"}
        # touching p2 makes p3 the eviction victim for the next insert
        rule.centroids(papers[2])
        rule.centroids(make_paper("p5"))
        assert set(rule._cache) == {"p2", "p4", "p5"}

    def test_evicted_entries_recompute_identically(self):
        rule = AbstractSubspaceRule(SentenceEncoder(dim=16), cache_size=1)
        a, b = make_paper("a"), make_paper("b")
        first = rule.centroids(a).copy()
        rule.centroids(b)  # evicts a
        assert np.array_equal(rule.centroids(a), first)
