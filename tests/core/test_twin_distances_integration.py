"""All three twin-network distance functions train without degenerating."""

import numpy as np
import pytest

from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.core.twin import DISTANCE_FUNCTIONS
from repro.data import load_scopus


@pytest.fixture(scope="module")
def papers():
    return load_scopus(scale=0.15, seed=40).by_field("computer_science")


@pytest.mark.parametrize("distance", DISTANCE_FUNCTIONS)
def test_distance_variant_trains(papers, distance):
    config = SEMConfig(distance=distance, n_triplets=15, epochs=2, seed=0)
    sem = SubspaceEmbeddingMethod(config).fit(papers)
    # training reduced or held the violation rate below coin-flip
    assert sem.history_.violation_rates[-1] < 0.5
    matrix = sem.subspace_matrix(papers, 1)
    assert np.isfinite(matrix).all()
    # embeddings did not collapse to a single point
    assert matrix.std(axis=0).max() > 1e-6
