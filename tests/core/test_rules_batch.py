"""Equivalence tests for the batch pair-scoring engine.

The batch engine (`repro.core.rules_batch.BatchPairScorer`) must agree
with the per-pair reference path in `repro.core.rules` to within 1e-9 at
every stage (raw rules, z-scored vectors, fused scores) — it is a pure
performance rewrite, not a semantic change.
"""

import numpy as np
import pytest

from repro.core.rules import (
    EMPTY_KEYWORD_DISTANCE,
    RULE_NAMES,
    ExpertRuleSet,
    venue_difference,
)
from repro.core.rules_batch import BatchPairScorer
from repro.data import Paper, load_scopus
from repro.text import SentenceEncoder

TOL = 1e-9


def fitted_rules(papers, seed=0, **kwargs):
    return ExpertRuleSet(SentenceEncoder(dim=16), **kwargs).fit(
        papers, n_pairs=30, seed=seed)


def random_pairs(n_papers, m, seed):
    rng = np.random.default_rng(seed)
    left = rng.integers(0, n_papers, size=m)
    right = rng.integers(0, n_papers, size=m)
    return left, right


def reference_raw(rules, papers, left, right):
    out = np.empty((len(left), rules.num_subspaces, rules.rule_count))
    for row, (i, j) in enumerate(zip(left, right)):
        scores = rules.raw_scores(papers[i], papers[j])
        for k in range(rules.num_subspaces):
            out[row, k] = scores.vector(k)
    return out


class TestBatchEquivalence:
    @pytest.fixture(scope="class", params=[(0.12, 3), (0.2, 17)])
    def setting(self, request):
        scale, seed = request.param
        papers = load_scopus(scale=scale, seed=seed).papers[:60]
        rules = fitted_rules(papers, seed=seed)
        return papers, rules, rules.batch_scorer(papers)

    @pytest.mark.parametrize("pair_seed", [1, 2, 3])
    def test_raw_matrix_matches_per_pair(self, setting, pair_seed):
        papers, rules, scorer = setting
        left, right = random_pairs(len(papers), 40, pair_seed)
        batch = scorer.raw_matrix(left, right)
        reference = reference_raw(rules, papers, left, right)
        assert batch.shape == reference.shape
        assert np.abs(batch - reference).max() <= TOL

    @pytest.mark.parametrize("pair_seed", [4, 5])
    def test_normalized_matrix_matches_per_pair(self, setting, pair_seed):
        papers, rules, scorer = setting
        left, right = random_pairs(len(papers), 30, pair_seed)
        batch = scorer.normalized_matrix(left, right)
        for row, (i, j) in enumerate(zip(left, right)):
            for k in range(rules.num_subspaces):
                reference = rules.normalized_vector(papers[i], papers[j], k)
                assert np.abs(batch[row, k] - reference).max() <= TOL

    @pytest.mark.parametrize("pair_seed", [6, 7])
    def test_fused_scores_match_per_pair(self, setting, pair_seed):
        papers, rules, scorer = setting
        left, right = random_pairs(len(papers), 50, pair_seed)
        batch = scorer.fused_scores(left, right)
        assert batch.shape == (50, rules.num_subspaces)
        for row, (i, j) in enumerate(zip(left, right)):
            reference = rules.fused_scores(papers[i], papers[j])
            assert np.abs(batch[row] - reference).max() <= TOL

    def test_self_pairs_match_per_pair(self, setting):
        """(p, p) pairs: the keyword distance must be an exact zero sum —
        the gram-expansion diagonal must not leak sqrt noise."""
        papers, rules, scorer = setting
        idx = np.arange(min(20, len(papers)))
        batch = scorer.raw_matrix(idx, idx)
        reference = reference_raw(rules, papers, idx, idx)
        assert np.abs(batch - reference).max() <= TOL

    def test_fused_by_id_matches_indexed(self, setting):
        papers, rules, scorer = setting
        left, right = random_pairs(len(papers), 10, 11)
        by_id = scorer.fused_scores_by_id(
            [papers[i].id for i in left], [papers[j].id for j in right])
        assert np.array_equal(by_id, scorer.fused_scores(left, right))

    def test_csr_fallback_matches_padded_gather(self, setting):
        """The two keyword formulations (padded gather vs csr matmul)
        agree; corpora with very long keyword lists take the csr path."""
        papers, rules, scorer = setting
        assert scorer._kw_ids is not None  # small lists -> padded path
        left, right = random_pairs(len(papers), 40, 13)
        padded = scorer._keywords(left, right)
        fallback = BatchPairScorer(rules, papers)
        fallback._kw_ids = None
        assert np.abs(padded - fallback._keywords(left, right)).max() <= TOL


class TestEdgeCases:
    def _paper(self, pid, **kw):
        base = dict(id=pid, title="t", abstract="One sentence. Two here.",
                    year=2015, field="cs", sentence_labels=(0, 1),
                    keywords=("graph", "embedding"),
                    category_path=("cs", "ir"), references=("r1",))
        base.update(kw)
        return Paper(**base)

    def test_empty_keywords_fall_back_to_constant(self):
        papers = [self._paper("a", keywords=()),
                  self._paper("b", keywords=("x",)),
                  self._paper("c", keywords=("x", "y"))]
        rules = fitted_rules(papers)
        scorer = rules.batch_scorer(papers)
        raw = scorer.raw_matrix([0, 0, 1], [1, 2, 2])
        kw_col = RULE_NAMES.index("keywords")
        assert np.all(raw[:2, :, kw_col] == EMPTY_KEYWORD_DISTANCE)
        assert np.all(raw[2, :, kw_col] != EMPTY_KEYWORD_DISTANCE)

    def test_no_keywords_anywhere(self):
        papers = [self._paper(f"p{i}", keywords=()) for i in range(4)]
        rules = fitted_rules(papers)
        raw = rules.batch_scorer(papers).raw_matrix([0, 1], [2, 3])
        kw_col = RULE_NAMES.index("keywords")
        assert np.all(raw[:, :, kw_col] == EMPTY_KEYWORD_DISTANCE)

    def test_extra_rules_fill_trailing_columns(self):
        papers = [self._paper("a", venue="v1"), self._paper("b", venue="v1"),
                  self._paper("c", venue="v2")]
        rules = fitted_rules(papers, extra_rules=[("venue", venue_difference)])
        raw = rules.batch_scorer(papers).raw_matrix([0, 0], [1, 2])
        assert raw.shape[2] == len(RULE_NAMES) + 1
        assert np.all(raw[0, :, -1] == 0.0)
        assert np.all(raw[1, :, -1] == 1.0)

    def test_duplicate_paper_ids_rejected(self):
        papers = [self._paper("a"), self._paper("a")]
        rules = fitted_rules([self._paper("a"), self._paper("b")])
        with pytest.raises(ValueError, match="duplicate"):
            BatchPairScorer(rules, papers)

    def test_unknown_id_raises(self):
        papers = [self._paper("a"), self._paper("b")]
        rules = fitted_rules(papers)
        scorer = rules.batch_scorer(papers)
        with pytest.raises(KeyError, match="not in this scorer"):
            scorer.index_of("nope")

    def test_out_of_range_index_raises(self):
        papers = [self._paper("a"), self._paper("b")]
        scorer = fitted_rules(papers).batch_scorer(papers)
        with pytest.raises(IndexError):
            scorer.raw_matrix([0], [5])

    def test_unfitted_rules_cannot_normalize(self):
        papers = [self._paper("a"), self._paper("b")]
        rules = ExpertRuleSet(SentenceEncoder(dim=16))
        scorer = rules.batch_scorer(papers)
        from repro.errors import NotFittedError
        with pytest.raises(NotFittedError):
            scorer.fused_scores([0], [1])


class TestScorerMemo:
    @pytest.fixture(scope="class")
    def papers(self):
        return load_scopus(scale=0.12, seed=5).papers[:30]

    def test_same_corpus_returns_same_scorer(self, papers):
        rules = fitted_rules(papers)
        assert rules.batch_scorer(papers) is rules.batch_scorer(papers)

    def test_different_corpus_rebuilds(self, papers):
        rules = fitted_rules(papers)
        first = rules.batch_scorer(papers)
        second = rules.batch_scorer(papers[:10])
        assert second is not first
        assert second.num_papers == 10

    def test_weight_updates_flow_through_memoized_scorer(self, papers):
        """fused_scores reads weights live — set_weights after the scorer
        is built must change fused output without a rebuild."""
        rules = fitted_rules(papers)
        scorer = rules.batch_scorer(papers)
        before = scorer.fused_scores([0, 1], [2, 3])
        weights = np.zeros(rules.rule_count)
        weights[0] = 1.0
        rules.set_weights(weights)
        after = rules.batch_scorer(papers).fused_scores([0, 1], [2, 3])
        assert not np.allclose(before, after)
        for row, (i, j) in enumerate(((0, 2), (1, 3))):
            reference = rules.fused_scores(papers[i], papers[j])
            assert np.abs(after[row] - reference).max() <= TOL
