"""Tests for the expert-rule extension point (Sec. III-B: the rule set
"supports an increasing number of expert rules")."""

import numpy as np
import pytest

from repro.core.rules import RULE_NAMES, ExpertRuleSet, venue_difference
from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.data import Paper, load_scopus
from repro.text import SentenceEncoder


@pytest.fixture(scope="module")
def papers():
    return load_scopus(scale=0.15, seed=10).papers[:40]


class TestVenueRule:
    def _paper(self, pid, venue):
        return Paper(id=pid, title="t", abstract="A sentence.", year=2015,
                     field="cs", venue=venue)

    def test_same_venue_zero(self):
        a = self._paper("a", "v1")
        b = self._paper("b", "v1")
        assert venue_difference(a, b) == 0.0

    def test_different_venue_one(self):
        assert venue_difference(self._paper("a", "v1"),
                                self._paper("b", "v2")) == 1.0

    def test_unknown_venue_half(self):
        assert venue_difference(self._paper("a", None),
                                self._paper("b", "v2")) == 0.5


class TestExtraRules:
    def test_rule_vector_grows(self, papers):
        rules = ExpertRuleSet(SentenceEncoder(dim=16),
                              extra_rules=[("venue", venue_difference)])
        rules.fit(papers, n_pairs=20, seed=0)
        assert rules.rule_count == len(RULE_NAMES) + 1
        assert rules.rule_names[-1] == "venue"
        vec = rules.normalized_vector(papers[0], papers[1], 0)
        assert vec.shape == (rules.rule_count,)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            ExpertRuleSet(SentenceEncoder(dim=16),
                          extra_rules=[("abstract", venue_difference)])

    def test_weights_shape_follows_rules(self):
        with pytest.raises(ValueError):
            ExpertRuleSet(SentenceEncoder(dim=16),
                          weights=np.ones(4) / 4,
                          extra_rules=[("venue", venue_difference)])

    def test_custom_callable_invoked(self, papers):
        calls = []

        def spy_rule(a, b):
            calls.append((a.id, b.id))
            return 1.0

        rules = ExpertRuleSet(SentenceEncoder(dim=16),
                              extra_rules=[("spy", spy_rule)])
        rules.fit(papers[:5], n_pairs=3, seed=0)
        assert calls

    def test_sem_trains_with_extra_rule(self, papers):
        sem = SubspaceEmbeddingMethod(
            SEMConfig(n_triplets=10, epochs=1, seed=0),
            extra_rules=[("venue", venue_difference)])
        sem.fit(papers)
        assert sem.rules.rule_count == 5
        assert sem.rules.weights.shape == (5,)
        assert sem.rules.weights.sum() == pytest.approx(1.0)
        emb = sem.embed(papers[0])
        assert np.isfinite(emb).all()
