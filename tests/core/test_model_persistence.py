"""Round-trip persistence of trained model weights (nn.serialization)."""

import numpy as np
import pytest

from repro.core.subspace_model import SubspaceEmbeddingNetwork
from repro.nn import load_module, save_module


class TestSubspaceNetworkPersistence:
    def test_weights_roundtrip(self, tmp_path):
        net = SubspaceEmbeddingNetwork(in_dim=16, hidden_dims=(24,), out_dim=8,
                                       rng=0)
        H = np.random.default_rng(0).normal(size=(4, 16))
        labels = [0, 1, 2, 1]
        before = net.embed(H, labels)

        path = tmp_path / "subspace.npz"
        save_module(net, path)

        other = SubspaceEmbeddingNetwork(in_dim=16, hidden_dims=(24,), out_dim=8,
                                         rng=99)
        assert not np.allclose(other.embed(H, labels), before)
        load_module(other, path)
        np.testing.assert_allclose(other.embed(H, labels), before)

    def test_architecture_mismatch_rejected(self, tmp_path):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        path = tmp_path / "model.npz"
        save_module(net, path)
        wrong = SubspaceEmbeddingNetwork(in_dim=16, out_dim=12, rng=0)
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)

    def test_named_parameters_cover_queries(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, num_subspaces=3,
                                       rng=0)
        names = {name for name, _ in net.named_parameters()}
        assert sum(1 for n in names if n.startswith("queries")) == 3
        assert any(n.startswith("mlp") for n in names)
        assert any(n.startswith("skip") for n in names)
