"""Property-based invariants (seeded random loops, no extra dependencies).

Three invariants that must hold for *every* draw, not just a lucky one:

* the de-fuzzing sampler never emits a (citing, cited) pair that is an
  actual citation — negatives contaminated with positives would poison
  the Eq. 23 objective;
* the vectorized :class:`BatchPairScorer` agrees with the per-pair
  :class:`ExpertRuleSet` arithmetic to 1e-9 — the batch engine is an
  optimisation, never a semantic change;
* LOF difference scores are permutation-equivariant — a paper's outlier
  score cannot depend on the order papers arrive in.
"""

import numpy as np
import pytest

from repro.cluster.lof import local_outlier_factor
from repro.core.nprec.sampling import defuzzed_negatives, random_negatives
from repro.core.rules import ExpertRuleSet
from repro.data import load_acm
from repro.text import SentenceEncoder

N_TRIALS = 8


@pytest.fixture(scope="module")
def papers():
    corpus = load_acm(scale=0.25, seed=11)
    train, _ = corpus.split_by_year(2014)
    return train


@pytest.fixture(scope="module")
def rules(papers):
    return ExpertRuleSet(SentenceEncoder(dim=16)).fit(papers, n_pairs=40,
                                                      seed=0)


class TestDefuzzNeverCited:
    def test_defuzzed_negatives_never_cited(self, papers, rules):
        by_id = {p.id: p for p in papers}
        for seed in range(N_TRIALS):
            for quantile in (0.2, 0.5, 0.8):
                negatives = defuzzed_negatives(papers, rules, 25,
                                               threshold_quantile=quantile,
                                               seed=seed)
                for pair in negatives:
                    assert pair.label == 0.0
                    assert pair.cited not in by_id[pair.citing].references, (
                        f"seed={seed} q={quantile}: cited pair "
                        f"({pair.citing}, {pair.cited}) sampled as negative")

    def test_random_negatives_never_cited(self, papers):
        by_id = {p.id: p for p in papers}
        for seed in range(N_TRIALS):
            for pair in random_negatives(papers, 40, seed=seed):
                assert pair.cited not in by_id[pair.citing].references


class TestBatchScorerEquivalence:
    def test_fused_scores_match_per_pair(self, papers, rules):
        scorer = rules.batch_scorer(papers)
        for seed in range(N_TRIALS):
            rng = np.random.default_rng(seed)
            left = rng.integers(len(papers), size=12)
            right = rng.integers(len(papers), size=12)
            batch = scorer.fused_scores(left, right)
            for row, (i, j) in enumerate(zip(left, right)):
                per_pair = rules.fused_scores(papers[i], papers[j])
                np.testing.assert_allclose(
                    batch[row], per_pair, rtol=0, atol=1e-9,
                    err_msg=f"seed={seed} pair=({i},{j})")

    def test_normalized_matrix_matches_per_pair(self, papers, rules):
        scorer = rules.batch_scorer(papers)
        rng = np.random.default_rng(123)
        left = rng.integers(len(papers), size=6)
        right = rng.integers(len(papers), size=6)
        matrix = scorer.normalized_matrix(left, right)
        for row, (i, j) in enumerate(zip(left, right)):
            for k in range(rules.num_subspaces):
                expected = rules.normalized_vector(papers[i], papers[j], k)
                np.testing.assert_allclose(matrix[row, k], expected,
                                           rtol=0, atol=1e-9)


class TestLofPermutationInvariance:
    def test_scores_follow_the_permutation(self):
        for seed in range(N_TRIALS):
            rng = np.random.default_rng(seed)
            data = rng.normal(size=(40, 6))
            base = local_outlier_factor(data, k=5)
            perm = rng.permutation(len(data))
            permuted = local_outlier_factor(data[perm], k=5)
            np.testing.assert_allclose(permuted, base[perm],
                                       rtol=0, atol=1e-9,
                                       err_msg=f"seed={seed}")

    def test_scores_invariant_to_duplicated_run(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(30, 4))
        first = local_outlier_factor(data, k=6)
        second = local_outlier_factor(data.copy(), k=6)
        np.testing.assert_array_equal(first, second)
