"""Additional annotation and twin-network coverage."""

import numpy as np
import pytest

from repro.core.annotation import annotate_triplets
from repro.core.rules import ExpertRuleSet
from repro.core.twin import TwinNetworkTrainer
from repro.core.subspace_model import SubspaceEmbeddingNetwork
from repro.data import load_scopus
from repro.text import SentenceEncoder


@pytest.fixture(scope="module")
def setup():
    corpus = load_scopus(scale=0.15, seed=21)
    papers = corpus.papers[:45]
    rules = ExpertRuleSet(SentenceEncoder(dim=16)).fit(papers, n_pairs=30, seed=0)
    return papers, rules


class TestAnnotationDeterminism:
    def test_same_seed_same_triplets(self, setup):
        papers, rules = setup
        a = annotate_triplets(papers, rules, n_triplets=8, seed=5)
        b = annotate_triplets(papers, rules, n_triplets=8, seed=5)
        assert [(t.anchor, t.positive, t.negative, t.subspace) for t in a] == \
            [(t.anchor, t.positive, t.negative, t.subspace) for t in b]

    def test_different_seed_differs(self, setup):
        papers, rules = setup
        a = annotate_triplets(papers, rules, n_triplets=8, seed=5)
        b = annotate_triplets(papers, rules, n_triplets=8, seed=6)
        assert [(t.anchor, t.positive) for t in a] != \
            [(t.anchor, t.positive) for t in b]

    def test_triplet_members_distinct(self, setup):
        papers, rules = setup
        for t in annotate_triplets(papers, rules, n_triplets=10, seed=0):
            assert len({t.anchor, t.positive, t.negative}) == 3

    def test_huge_min_gap_errors(self, setup):
        papers, rules = setup
        with pytest.raises(ValueError):
            annotate_triplets(papers, rules, n_triplets=5, min_gap=1e9, seed=0)


class TestTwinHistory:
    def test_history_lengths_match_epochs(self, setup):
        papers, rules = setup
        triplets = annotate_triplets(papers, rules, n_triplets=10, seed=0)
        encoder = rules.encoder
        encoded = {}
        for p in papers:
            H = encoder.encode(p.abstract)
            labels = list(p.sentence_labels)[:H.shape[0]]
            encoded[p.id] = (H[:len(labels)], labels)
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        trainer = TwinNetworkTrainer(net, epochs=3, seed=0)
        history = trainer.train(triplets, encoded)
        assert len(history.losses) == 3
        assert len(history.violation_rates) == 3
        assert all(0.0 <= v <= 1.0 for v in history.violation_rates)
        assert all(np.isfinite(l) for l in history.losses)
