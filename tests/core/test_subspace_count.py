"""Tests for adjustable subspace counts (Sec. III-C: "the number of the
subspaces can be adjusted according to the characteristics of the
academic field")."""

import numpy as np
import pytest

from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.data import load_scopus


@pytest.fixture(scope="module")
def papers():
    return load_scopus(scale=0.15, seed=12).papers[:40]


@pytest.mark.parametrize("k", [2, 3, 4])
def test_sem_with_k_subspaces(papers, k):
    config = SEMConfig(num_subspaces=k, n_triplets=10, epochs=1, seed=0)
    sem = SubspaceEmbeddingMethod(config).fit(papers)
    embedding = sem.embed(papers[0])
    assert embedding.shape[0] == k
    assert np.isfinite(embedding).all()
    scores = sem.outlier_scores(papers, k - 1)
    assert scores.shape == (len(papers),)


def test_k2_ignores_extra_gold_labels(papers):
    """With K=2, sentences tagged 'result' (label 2) belong to no
    subspace; the pipeline must still train and embed."""
    config = SEMConfig(num_subspaces=2, n_triplets=10, epochs=1, seed=0)
    sem = SubspaceEmbeddingMethod(config).fit(papers)
    matrix = sem.subspace_matrix(papers[:10], 0)
    assert matrix.shape == (10, sem.embedding_dim)
    with pytest.raises(ValueError):
        sem.subspace_matrix(papers[:10], 2)


def test_k4_has_empty_fourth_subspace(papers):
    """Gold tags only use labels 0-2, so a 4th subspace sees no sentences
    and embeds through the empty-subspace path for every paper."""
    config = SEMConfig(num_subspaces=4, n_triplets=10, epochs=1, seed=0)
    sem = SubspaceEmbeddingMethod(config).fit(papers)
    fourth = sem.subspace_matrix(papers[:8], 3)
    assert np.isfinite(fourth).all()
