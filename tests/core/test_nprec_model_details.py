"""Detailed NPRecModel mechanics: gates, content block, induction."""

import numpy as np
import pytest

from repro.core.nprec import NPRecModel
from repro.data import load_acm
from repro.graph import build_academic_network


@pytest.fixture(scope="module")
def graph_and_text():
    corpus = load_acm(scale=0.2, seed=50)
    train, new = corpus.split_by_year(2014)
    everyone = train + new
    graph = build_academic_network(corpus, papers=everyone,
                                   citation_whitelist={p.id for p in train})
    rng = np.random.default_rng(0)
    text = {p.id: rng.normal(size=10) for p in everyone}
    content = {p.id: np.abs(rng.normal(size=20)) for p in everyone}
    return graph, text, content, train, new


class TestBlocksAndGates:
    def test_vector_width_with_content(self, graph_and_text):
        graph, text, content, train, _ = graph_and_text
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1,
                           content_vectors=content, seed=0)
        vec = model.interest_vectors([train[0].id])
        # shared text + view text + graph + trained-content (4 * dim)
        # plus the raw lexical content block (20)
        assert vec.shape == (1, 4 * 8 + 20)

    def test_gate_scaling_applied(self, graph_and_text):
        graph, text, content, train, _ = graph_and_text
        small = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1,
                           block_gates=(0.1, 0.1, 0.1, 0.0), seed=0)
        large = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1,
                           block_gates=(1.0, 1.0, 1.0, 0.0), seed=0)
        v_small = small.interest_vectors([train[0].id]).data
        v_large = large.interest_vectors([train[0].id]).data
        np.testing.assert_allclose(v_small * 10.0, v_large, rtol=1e-6)

    def test_content_rows_l2_normalised(self, graph_and_text):
        graph, text, content, train, _ = graph_and_text
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1,
                           content_vectors=content,
                           block_gates=(0.0, 0.0, 0.0, 1.0, 0.0), seed=0)
        matrix = model.content_matrix
        idx = graph.index_of("paper", train[0].id)
        assert np.linalg.norm(matrix[idx]) == pytest.approx(1.0)

    def test_influence_citations_flag_changes_views(self, graph_and_text):
        graph, text, content, train, _ = graph_and_text
        cited = max(train, key=lambda p: len(graph.citing_papers(
            graph.index_of("paper", p.id))))
        meta_only = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1,
                               influence_citations=False, seed=0)
        with_cites = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1,
                                influence_citations=True, seed=0)
        a = meta_only.influence_vectors([cited.id]).data
        b = with_cites.influence_vectors([cited.id]).data
        assert not np.allclose(a, b)

    def test_induct_new_papers_counts(self, graph_and_text):
        graph, text, content, train, new = graph_and_text
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=0)
        imputed = model.induct_new_papers([p.id for p in new[:10]])
        assert imputed == sum(
            1 for p in new[:10]
            if graph.two_way_neighbors(graph.index_of("paper", p.id))
        )

    def test_deterministic_given_seed(self, graph_and_text):
        graph, text, content, train, _ = graph_and_text
        ids = [p.id for p in train[:4]]
        a = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=7)
        b = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=7)
        np.testing.assert_allclose(a.interest_vectors(ids).data,
                                   b.interest_vectors(ids).data)


class TestStackedLayerCache:
    def test_repeat_batch_returns_memoized_stack(self, graph_and_text):
        graph, text, _, train, _ = graph_and_text
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=0)
        indices = np.asarray([model.graph.index_of("paper", train[0].id),
                              model.graph.index_of("paper", train[1].id)])
        first = model._stacked_layers(indices, "two_way")
        second = model._stacked_layers(indices, "two_way")
        assert all(a is b for a, b in zip(first, second))
        # a different view is a different cache entry
        other = model._stacked_layers(indices, "influence")
        assert other[0] is not first[0]

    def test_cache_is_bounded(self, graph_and_text):
        graph, text, _, train, _ = graph_and_text
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=0)
        model.LAYER_CACHE_SIZE = 4
        paper_ids = [model.graph.index_of("paper", p.id) for p in train[:10]]
        for i in paper_ids:
            model._stacked_layers(np.asarray([i]), "two_way")
        assert len(model._layer_cache) == 4

    def test_aggregation_unchanged_by_caching(self, graph_and_text):
        graph, text, _, train, _ = graph_and_text
        ids = [p.id for p in train[:3]]
        warm = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=1, seed=0)
        baseline = warm.interest_vectors(ids).data.copy()
        again = warm.interest_vectors(ids).data
        assert np.array_equal(baseline, again)
