"""Tests for the subspace fusion network, annotation, and twin training."""

import numpy as np
import pytest

from repro.core.annotation import Triplet, annotate_triplets
from repro.core.rules import ExpertRuleSet
from repro.core.subspace_model import SubspaceEmbeddingNetwork
from repro.core.twin import (
    DISTANCE_FUNCTIONS,
    TwinNetworkTrainer,
    pair_distance,
)
from repro.data import load_scopus
from repro.nn import Tensor
from repro.text import SentenceEncoder


@pytest.fixture(scope="module")
def small_corpus():
    corpus = load_scopus(scale=0.15, seed=5)
    return corpus.papers[:50]


@pytest.fixture(scope="module")
def fitted_rules(small_corpus):
    encoder = SentenceEncoder(dim=16)
    return ExpertRuleSet(encoder).fit(small_corpus, n_pairs=40, seed=0), encoder


class TestSubspaceNetwork:
    def test_output_shapes(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, hidden_dims=(24,), out_dim=8,
                                       num_subspaces=3, rng=0)
        H = np.random.default_rng(0).normal(size=(5, 16))
        out = net(H, [0, 1, 2, 1, 0])
        assert len(out) == 3
        assert all(t.shape == (16,) for t in out)  # 2 * out_dim
        assert net.embedding_dim == 16

    def test_empty_abstract_zero_embeddings(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        out = net(np.zeros((0, 16)), [])
        assert all(np.allclose(t.data, 0.0) for t in out)

    def test_empty_subspace_does_not_crash(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        H = np.random.default_rng(0).normal(size=(3, 16))
        out = net(H, [0, 0, 0])  # subspaces 1 and 2 empty
        assert len(out) == 3
        assert all(np.isfinite(t.data).all() for t in out)

    def test_shape_validation(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        with pytest.raises(ValueError):
            net(np.zeros((3, 16)), [0, 1])
        with pytest.raises(ValueError):
            net(np.zeros(16), [0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SubspaceEmbeddingNetwork(in_dim=16, num_subspaces=0)
        with pytest.raises(ValueError):
            SubspaceEmbeddingNetwork(in_dim=16, context_weight=-1.0)

    def test_subspace_sensitivity(self):
        """Changing a method sentence changes the method embedding more."""
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        rng = np.random.default_rng(1)
        H = rng.normal(size=(4, 16))
        labels = [0, 1, 1, 2]
        base = net.embed(H, labels)
        H2 = H.copy()
        H2[1] = rng.normal(size=16)  # perturb a method sentence
        changed = net.embed(H2, labels)
        deltas = np.linalg.norm(changed - base, axis=1)
        assert deltas[1] > deltas[0]
        assert deltas[1] > deltas[2]

    def test_embed_matches_forward(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        H = np.random.default_rng(2).normal(size=(3, 16))
        labels = [0, 1, 2]
        stacked = net.embed(H, labels)
        tensors = net(H, labels)
        for k in range(3):
            np.testing.assert_allclose(stacked[k], tensors[k].data)


class TestPairDistance:
    def test_neg_dot(self):
        a, b = Tensor([1.0, 0.0]), Tensor([1.0, 0.0])
        assert pair_distance(a, b, "neg_dot").item() == pytest.approx(-1.0)

    def test_euclidean(self):
        a, b = Tensor([0.0, 0.0]), Tensor([3.0, 4.0])
        assert pair_distance(a, b, "euclidean").item() == pytest.approx(5.0)

    def test_cosine(self):
        a, b = Tensor([1.0, 0.0]), Tensor([0.0, 1.0])
        assert pair_distance(a, b, "cosine").item() == pytest.approx(1.0)

    def test_unknown(self):
        with pytest.raises(ValueError):
            pair_distance(Tensor([1.0]), Tensor([1.0]), "manhattan")

    def test_all_registered(self):
        assert set(DISTANCE_FUNCTIONS) == {"neg_dot", "euclidean", "cosine"}


class TestAnnotation:
    def test_triplets_cover_subspaces(self, small_corpus, fitted_rules):
        rules, _ = fitted_rules
        triplets = annotate_triplets(small_corpus, rules, n_triplets=20, seed=0)
        assert {t.subspace for t in triplets} == {0, 1, 2}

    def test_positive_has_larger_score(self, small_corpus, fitted_rules):
        rules, _ = fitted_rules
        by_id = {p.id: p for p in small_corpus}
        triplets = annotate_triplets(small_corpus, rules, n_triplets=10, seed=1)
        for t in triplets[:20]:
            anchor, pos, neg = by_id[t.anchor], by_id[t.positive], by_id[t.negative]
            score_pos = rules.fused_scores(anchor, pos)[t.subspace]
            score_neg = rules.fused_scores(anchor, neg)[t.subspace]
            assert score_pos > score_neg

    def test_min_gap_respected(self, small_corpus, fitted_rules):
        rules, _ = fitted_rules
        triplets = annotate_triplets(small_corpus, rules, n_triplets=10,
                                     min_gap=0.2, seed=0)
        assert all(t.score_gap >= 0.2 for t in triplets)

    def test_probabilistic_mode(self, small_corpus, fitted_rules):
        rules, _ = fitted_rules
        triplets = annotate_triplets(small_corpus, rules, n_triplets=10,
                                     probabilistic=True, seed=0)
        assert triplets

    def test_validation(self, small_corpus, fitted_rules):
        rules, _ = fitted_rules
        with pytest.raises(ValueError):
            annotate_triplets(small_corpus[:2], rules)
        with pytest.raises(ValueError):
            annotate_triplets(small_corpus, rules, n_triplets=0)


class TestTwinTrainer:
    def _encoded(self, papers, encoder):
        out = {}
        for p in papers:
            H = encoder.encode(p.abstract)
            labels = list(p.sentence_labels)[:H.shape[0]]
            out[p.id] = (H[:len(labels)], labels)
        return out

    def test_training_reduces_violations(self, small_corpus, fitted_rules):
        rules, encoder = fitted_rules
        triplets = annotate_triplets(small_corpus, rules, n_triplets=25,
                                     min_gap=0.2, seed=0)
        encoded = self._encoded(small_corpus, encoder)
        net = SubspaceEmbeddingNetwork(in_dim=16, hidden_dims=(24,), out_dim=8, rng=0)
        trainer = TwinNetworkTrainer(net, distance="euclidean", epochs=4,
                                     lr=2e-3, seed=0)
        before = trainer.violation_rate(triplets, encoded)
        history = trainer.train(triplets, encoded)
        after = trainer.violation_rate(triplets, encoded)
        assert after < before
        assert len(history.losses) == 4

    def test_missing_encoded_raises(self, small_corpus, fitted_rules):
        rules, encoder = fitted_rules
        triplets = annotate_triplets(small_corpus, rules, n_triplets=5, seed=0)
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        trainer = TwinNetworkTrainer(net, seed=0)
        with pytest.raises(KeyError):
            trainer.train(triplets, {})

    def test_empty_triplets(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        trainer = TwinNetworkTrainer(net, seed=0)
        with pytest.raises(ValueError):
            trainer.train([], {})
        with pytest.raises(ValueError):
            trainer.violation_rate([], {})

    def test_config_validation(self):
        net = SubspaceEmbeddingNetwork(in_dim=16, out_dim=8, rng=0)
        with pytest.raises(ValueError):
            TwinNetworkTrainer(net, distance="weird")
        with pytest.raises(ValueError):
            TwinNetworkTrainer(net, margin=-0.5)
        with pytest.raises(ValueError):
            TwinNetworkTrainer(net, epochs=0)
