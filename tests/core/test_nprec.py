"""Tests for NPRec: sampling strategy, model mechanics, recommender."""

import numpy as np
import pytest

from repro.core.nprec import (
    NPRecConfig,
    NPRecModel,
    NPRecRecommender,
    NPRecTrainer,
    build_training_pairs,
    citation_positives,
)
from repro.core.nprec.sampling import defuzzed_negatives, random_negatives
from repro.core.rules import ExpertRuleSet
from repro.core.sem import SEMConfig
from repro.data import load_acm
from repro.errors import NotFittedError
from repro.experiments.protocol import split_task_by_year
from repro.graph import build_academic_network
from repro.text import SentenceEncoder


@pytest.fixture(scope="module")
def acm_small():
    return load_acm(scale=0.25, seed=11)


@pytest.fixture(scope="module")
def train_papers(acm_small):
    train, _ = acm_small.split_by_year(2014)
    return train


@pytest.fixture(scope="module")
def fitted_rules(train_papers):
    return ExpertRuleSet(SentenceEncoder(dim=16)).fit(train_papers, n_pairs=40, seed=0)


class TestSampling:
    def test_positives_are_citations(self, train_papers):
        by_id = {p.id: p for p in train_papers}
        positives = citation_positives(train_papers)
        assert positives
        for pair in positives[:50]:
            assert pair.label == 1.0
            assert pair.cited in by_id[pair.citing].references

    def test_random_negatives_not_cited(self, train_papers):
        by_id = {p.id: p for p in train_papers}
        negatives = random_negatives(train_papers, 40, seed=0)
        assert len(negatives) == 40
        for pair in negatives:
            assert pair.label == 0.0
            assert pair.cited not in by_id[pair.citing].references

    def test_defuzzed_negatives_exceed_threshold(self, train_papers, fitted_rules):
        negatives = defuzzed_negatives(train_papers, fitted_rules, 20,
                                       threshold_quantile=0.5, seed=0)
        assert negatives
        by_id = {p.id: p for p in train_papers}
        # re-derive the thresholds the function used is not possible, but
        # defuzzed pairs must at least be clearly-different pairs: their
        # mean fused score must exceed the random-pair median
        sample_scores = []
        rng = np.random.default_rng(1)
        for _ in range(60):
            i, j = rng.choice(len(train_papers), 2, replace=False)
            sample_scores.append(
                float(np.mean(fitted_rules.fused_scores(train_papers[i],
                                                        train_papers[j]))))
        median = np.median(sample_scores)
        neg_scores = [
            float(np.mean(fitted_rules.fused_scores(by_id[p.citing], by_id[p.cited])))
            for p in negatives[:20]
        ]
        assert np.mean(neg_scores) > median

    def test_build_training_pairs_ratio(self, train_papers, fitted_rules):
        pairs = build_training_pairs(train_papers, rules=fitted_rules,
                                     negative_ratio=3, max_positives=20, seed=0)
        n_pos = sum(1 for p in pairs if p.label == 1.0)
        n_neg = sum(1 for p in pairs if p.label == 0.0)
        assert n_pos == 20
        assert n_neg == 60

    def test_build_training_pairs_validation(self, train_papers, fitted_rules):
        with pytest.raises(ValueError):
            build_training_pairs(train_papers, strategy="weird")
        with pytest.raises(ValueError):
            build_training_pairs(train_papers, strategy="defuzz", rules=None)
        with pytest.raises(ValueError):
            build_training_pairs(train_papers, rules=fitted_rules, negative_ratio=-1)

    def test_citation_strategy_no_rules_needed(self, train_papers):
        pairs = build_training_pairs(train_papers, strategy="citation",
                                     negative_ratio=2, max_positives=10, seed=0)
        assert sum(1 for p in pairs if p.label == 0.0) == 20

    def test_defuzz_quantile_validation(self, train_papers, fitted_rules):
        with pytest.raises(ValueError):
            defuzzed_negatives(train_papers, fitted_rules, 5, threshold_quantile=1.5)


class TestNPRecModel:
    @pytest.fixture(scope="class")
    def model_setup(self, acm_small, train_papers):
        _, new = acm_small.split_by_year(2014)
        everyone = list(train_papers) + list(new)
        graph = build_academic_network(acm_small, papers=everyone,
                                       citation_whitelist={p.id for p in train_papers})
        rng = np.random.default_rng(0)
        text = {p.id: rng.normal(size=12) for p in everyone}
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=2, seed=0)
        return model, train_papers, list(new)

    def test_vector_shapes(self, model_setup):
        model, train, new = model_setup
        ids = [p.id for p in train[:5]]
        interest = model.interest_vectors(ids)
        influence = model.influence_vectors(ids)
        assert interest.shape == influence.shape
        assert interest.shape[0] == 5

    def test_asymmetry(self, model_setup):
        model, train, _ = model_setup
        ids = [p.id for p in train[:5]]
        interest = model.interest_vectors(ids).data
        influence = model.influence_vectors(ids).data
        assert not np.allclose(interest, influence)

    def test_score_pairs_alignment(self, model_setup):
        model, train, _ = model_setup
        a = [p.id for p in train[:3]]
        b = [p.id for p in train[3:6]]
        logits = model.score_pairs(a, b)
        assert logits.shape == (3,)
        with pytest.raises(ValueError):
            model.score_pairs(a, b[:2])

    def test_new_papers_scoreable(self, model_setup):
        model, train, new = model_setup
        logits = model.score_pairs([train[0].id] * 3, [p.id for p in new[:3]])
        assert np.isfinite(logits.data).all()

    def test_training_reduces_loss(self, model_setup, train_papers):
        model, train, _ = model_setup
        pairs = build_training_pairs(train, strategy="citation",
                                     negative_ratio=2, max_positives=30, seed=0)
        trainer = NPRecTrainer(model, lr=1e-2, epochs=3, seed=0)
        history = trainer.train(pairs)
        assert history.losses[-1] < history.losses[0]

    def test_config_validation(self, model_setup):
        model, _, _ = model_setup
        with pytest.raises(ValueError):
            NPRecModel(model.graph, None, use_text=False, use_network=False)
        with pytest.raises(ValueError):
            NPRecModel(model.graph, None, use_text=True)
        with pytest.raises(ValueError):
            NPRecModel(model.graph, {}, neighbor_k=0)

    def test_trainer_validation(self, model_setup):
        model, _, _ = model_setup
        trainer = NPRecTrainer(model, seed=0)
        with pytest.raises(ValueError):
            trainer.train([])
        with pytest.raises(ValueError):
            NPRecTrainer(model, epochs=0)


class TestNPRecRecommender:
    @pytest.fixture(scope="class")
    def task(self, acm_small):
        return split_task_by_year(acm_small, 2014, n_users=8, candidate_size=20,
                                  min_prefix=10, seed=0)

    @pytest.fixture(scope="class")
    def fitted(self, task):
        config = NPRecConfig(seed=0, epochs=2, max_positives=60,
                             sem=SEMConfig(n_triplets=30, epochs=1))
        rec = NPRecRecommender(config)
        rec.fit(task.corpus, task.train_papers, task.new_papers)
        return rec

    def test_rank_returns_permutation(self, fitted, task):
        user = task.users[0]
        ranked = fitted.rank(list(user.train_papers), list(user.candidates))
        assert sorted(ranked) == sorted(p.id for p in user.candidates)

    def test_rank_beats_random(self, fitted, task):
        from repro.analysis.metrics import ndcg_at_k
        rng = np.random.default_rng(0)
        model_scores, random_scores = [], []
        for user in task.users:
            cands = user.candidate_set(10)
            ranked = fitted.rank(list(user.train_papers), cands)
            model_scores.append(ndcg_at_k(ranked, set(user.relevant_ids), 10))
            shuffled = [c.id for c in cands]
            rng.shuffle(shuffled)
            random_scores.append(ndcg_at_k(shuffled, set(user.relevant_ids), 10))
        assert np.mean(model_scores) > np.mean(random_scores)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            NPRecRecommender().rank([], [])

    def test_empty_candidates(self, fitted, task):
        assert fitted.rank(list(task.users[0].train_papers), []) == []

    def test_empty_user(self, fitted, task):
        with pytest.raises(ValueError):
            fitted.rank([], list(task.users[0].candidates))

    def test_ablation_variants_fit(self, task):
        sem_cfg = SEMConfig(n_triplets=20, epochs=1)
        for kw in (dict(use_network=False), dict(use_text=False),
                   dict(strategy="citation")):
            config = NPRecConfig(seed=0, epochs=1, max_positives=30,
                                 sem=sem_cfg, **kw)
            rec = NPRecRecommender(config)
            rec.fit(task.corpus, task.train_papers, task.new_papers)
            user = task.users[0]
            ranked = rec.rank(list(user.train_papers), user.candidate_set(10))
            assert len(ranked) == 10
