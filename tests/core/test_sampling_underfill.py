"""De-fuzzed sampling must *report* an unmet quota, not silently return a
smaller training set: a RuntimeWarning naming the shortfall plus the
``nprec.sampling.underfilled`` counter."""

import warnings

import numpy as np
import pytest

from repro import obs
from repro.core.nprec.sampling import defuzzed_negatives
from repro.core.rules import ExpertRuleSet
from repro.data import Paper, load_scopus
from repro.text import SentenceEncoder


@pytest.fixture
def obs_enabled():
    state = obs.configure(enabled=True, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, reset=True)


def mutually_citing_papers(n=3):
    """Every ordered pair is a citation pair -> no negative can exist."""
    ids = [f"p{i}" for i in range(n)]
    return [
        Paper(id=pid, title="t", abstract="One sentence. Another sentence.",
              year=2015, field="cs", sentence_labels=(0, 1),
              keywords=("graph", f"topic{i}"), category_path=("cs", "ir"),
              references=tuple(other for other in ids if other != pid))
        for i, pid in enumerate(ids)
    ]


def test_underfill_warns_and_counts(obs_enabled):
    papers = mutually_citing_papers()
    rules = ExpertRuleSet(SentenceEncoder(dim=16)).fit(papers, n_pairs=10,
                                                       seed=0)
    with pytest.warns(RuntimeWarning, match=r"only 0 of 5 .*5 short"):
        negatives = defuzzed_negatives(papers, rules, 5, seed=0)
    assert negatives == []
    shortfall = obs.get_registry().get("nprec.sampling.underfilled",
                                       strategy="defuzz")
    assert shortfall.value == 5


def test_no_warning_when_quota_met():
    papers = load_scopus(scale=0.12, seed=2).papers[:40]
    rules = ExpertRuleSet(SentenceEncoder(dim=16)).fit(papers, n_pairs=20,
                                                       seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        negatives = defuzzed_negatives(papers, rules, 10, seed=0)
    assert len(negatives) == 10


def test_partial_fill_names_the_numbers(obs_enabled):
    # two honest papers + a mutually-citing clique: some negatives exist
    # but far fewer than requested
    papers = mutually_citing_papers(4)
    rng = np.random.default_rng(0)
    with pytest.warns(RuntimeWarning, match=r"defuzzed_negatives found only"):
        rules = ExpertRuleSet(SentenceEncoder(dim=16)).fit(papers, n_pairs=10,
                                                           seed=1)
        defuzzed_negatives(papers, rules, 50, seed=int(rng.integers(100)))
    assert obs.get_registry().get("nprec.sampling.underfilled",
                                  strategy="defuzz").value > 0
