"""Tests for the heterogeneous academic network and sampling."""

import numpy as np
import pytest

from repro.data import load_acm, load_patents
from repro.errors import GraphError
from repro.graph import (
    ENTITY_TYPES,
    RELATION_TYPES,
    EntityKey,
    HeterogeneousGraph,
    build_academic_network,
    sample_multi_hop,
    sample_neighbors,
)


def small_graph():
    g = HeterogeneousGraph()
    for pid in ("p1", "p2", "p3"):
        g.add_entity("paper", pid)
    g.add_entity("author", "a1")
    g.add_entity("venue", "v1")
    g.add_edge("cites", EntityKey("paper", "p1"), EntityKey("paper", "p2"))
    g.add_edge("cites", EntityKey("paper", "p3"), EntityKey("paper", "p1"))
    g.add_edge("written_by", EntityKey("paper", "p1"), EntityKey("author", "a1"))
    g.add_edge("published_in", EntityKey("paper", "p1"), EntityKey("venue", "v1"))
    return g


class TestHeterogeneousGraph:
    def test_type_universe(self):
        assert len(ENTITY_TYPES) == 7
        assert len(RELATION_TYPES) == 7

    def test_entity_registration_idempotent(self):
        g = HeterogeneousGraph()
        first = g.add_entity("paper", "p1")
        second = g.add_entity("paper", "p1")
        assert first == second
        assert g.num_entities == 1

    def test_unknown_entity_type(self):
        with pytest.raises(GraphError):
            HeterogeneousGraph().add_entity("galaxy", "x")

    def test_unknown_relation(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_edge("likes", EntityKey("paper", "p1"), EntityKey("paper", "p2"))

    def test_unregistered_endpoint(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_edge("cites", EntityKey("paper", "p1"), EntityKey("paper", "ghost"))

    def test_cites_requires_papers(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_edge("cites", EntityKey("paper", "p1"), EntityKey("author", "a1"))

    def test_asymmetric_citation_views(self):
        g = small_graph()
        p1 = g.index_of("paper", "p1")
        p2 = g.index_of("paper", "p2")
        p3 = g.index_of("paper", "p3")
        assert g.cited_papers(p1) == [p2]
        assert g.citing_papers(p1) == [p3]
        # interest view of p1: author, venue, and the paper it cites
        interest = set(g.interest_neighbors(p1))
        assert p2 in interest and p3 not in interest
        influence = set(g.influence_neighbors(p1))
        assert p3 in influence and p2 not in influence

    def test_two_way_edges_visible_from_both_sides(self):
        g = small_graph()
        a1 = g.index_of("author", "a1")
        p1 = g.index_of("paper", "p1")
        assert p1 in g.two_way_neighbors(a1)
        assert a1 in g.two_way_neighbors(p1)

    def test_key_roundtrip(self):
        g = small_graph()
        idx = g.index_of("venue", "v1")
        assert g.key_of(idx) == EntityKey("venue", "v1")
        assert ("venue", "v1") in g
        assert ("venue", "zz") not in g

    def test_entities_of_type(self):
        g = small_graph()
        assert len(g.entities_of_type("paper")) == 3
        with pytest.raises(GraphError):
            g.entities_of_type("galaxy")


class TestBuilder:
    def test_build_from_acm(self):
        corpus = load_acm(scale=0.2, seed=0)
        graph = build_academic_network(corpus)
        assert len(graph.entities_of_type("paper")) == len(corpus)
        assert len(graph.entities_of_type("author")) > 0
        assert len(graph.entities_of_type("affiliation")) > 0
        assert len(graph.entities_of_type("keyword")) > 0
        assert graph.num_edges > len(corpus)

    def test_patent_graph_has_only_papers_authors_years(self):
        corpus = load_patents(scale=0.3, seed=0)
        graph = build_academic_network(corpus)
        assert len(graph.entities_of_type("venue")) == 0
        assert len(graph.entities_of_type("keyword")) == 0
        assert len(graph.entities_of_type("affiliation")) == 0
        assert len(graph.entities_of_type("author")) > 0

    def test_subset_drops_external_citations(self):
        corpus = load_acm(scale=0.2, seed=0)
        subset = corpus.papers[:30]
        graph = build_academic_network(corpus, papers=subset)
        included = {p.id for p in subset}
        for paper in subset:
            idx = graph.index_of("paper", paper.id)
            for cited_idx in graph.cited_papers(idx):
                assert graph.key_of(cited_idx).id in included

    def test_exclude_citations_flag(self):
        corpus = load_acm(scale=0.2, seed=0)
        graph = build_academic_network(corpus, include_citations=False)
        for paper in corpus.papers[:20]:
            idx = graph.index_of("paper", paper.id)
            assert graph.cited_papers(idx) == []
            assert graph.citing_papers(idx) == []


class TestSampling:
    def test_fixed_size_with_replacement(self):
        g = small_graph()
        p1 = g.index_of("paper", "p1")
        sampled = sample_neighbors(g, p1, k=8, view="all", rng=0)
        assert sampled.shape == (8,)  # only 4 distinct neighbours -> replacement

    def test_isolated_node_empty(self):
        g = HeterogeneousGraph()
        g.add_entity("paper", "alone")
        assert sample_neighbors(g, 0, k=4, rng=0).size == 0

    def test_views_differ(self):
        g = small_graph()
        p1 = g.index_of("paper", "p1")
        p2 = g.index_of("paper", "p2")
        p3 = g.index_of("paper", "p3")
        interest = set(sample_neighbors(g, p1, k=20, view="interest", rng=0).tolist())
        influence = set(sample_neighbors(g, p1, k=20, view="influence", rng=0).tolist())
        assert p2 in interest and p2 not in influence
        assert p3 in influence and p3 not in interest

    def test_invalid_view(self):
        g = small_graph()
        with pytest.raises(ValueError):
            sample_neighbors(g, 0, k=2, view="sideways")

    def test_multi_hop_shapes(self):
        g = small_graph()
        p1 = g.index_of("paper", "p1")
        layers = sample_multi_hop(g, p1, k=3, hops=2, rng=0)
        assert len(layers) == 3
        assert layers[0].shape == (1,)
        assert layers[1].shape == (3,)
        assert layers[2].shape == (9,)

    def test_multi_hop_isolated_self_fills(self):
        g = HeterogeneousGraph()
        g.add_entity("paper", "alone")
        layers = sample_multi_hop(g, 0, k=2, hops=2, rng=0)
        assert np.all(layers[1] == 0)

    def test_deterministic_with_seed(self):
        g = small_graph()
        a = sample_neighbors(g, 0, k=5, rng=42)
        b = sample_neighbors(g, 0, k=5, rng=42)
        np.testing.assert_array_equal(a, b)
