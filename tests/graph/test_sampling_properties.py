"""Property-based tests for neighbourhood sampling invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EntityKey, HeterogeneousGraph, sample_multi_hop, sample_neighbors


def build_random_graph(n_papers: int, n_authors: int, edges: list[tuple[int, int]],
                       authorship: list[tuple[int, int]]) -> HeterogeneousGraph:
    graph = HeterogeneousGraph()
    for i in range(n_papers):
        graph.add_entity("paper", f"p{i}")
    for j in range(n_authors):
        graph.add_entity("author", f"a{j}")
    for src, dst in edges:
        if src != dst:
            graph.add_edge("cites", EntityKey("paper", f"p{src}"),
                           EntityKey("paper", f"p{dst}"))
    for paper, author in authorship:
        graph.add_edge("written_by", EntityKey("paper", f"p{paper}"),
                       EntityKey("author", f"a{author}"))
    return graph


graph_strategy = st.builds(
    build_random_graph,
    n_papers=st.integers(2, 6),
    n_authors=st.integers(1, 3),
    edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10),
    authorship=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 2)), max_size=8),
)


def valid_graph(builder):
    """Clamp random indices into range before building."""
    return builder


@given(
    n_papers=st.integers(2, 6),
    n_authors=st.integers(1, 3),
    raw_edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10),
    raw_authorship=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 2)), max_size=8),
    k=st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_sampled_neighbors_are_real_neighbors(n_papers, n_authors, raw_edges,
                                              raw_authorship, k):
    edges = [(a % n_papers, b % n_papers) for a, b in raw_edges]
    authorship = [(p % n_papers, a % n_authors) for p, a in raw_authorship]
    graph = build_random_graph(n_papers, n_authors, edges, authorship)
    for index in range(graph.num_entities):
        for view in ("interest", "influence", "two_way", "all"):
            sampled = sample_neighbors(graph, index, k, view=view, rng=0)
            if view == "interest":
                allowed = set(graph.interest_neighbors(index))
            elif view == "influence":
                allowed = set(graph.influence_neighbors(index))
            elif view == "two_way":
                allowed = set(graph.two_way_neighbors(index))
            else:
                allowed = set(graph.all_neighbors(index))
            assert set(sampled.tolist()) <= allowed
            if allowed:
                assert sampled.shape == (k,)
            else:
                assert sampled.size == 0


@given(
    n_papers=st.integers(2, 5),
    raw_edges=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8),
    k=st.integers(1, 3),
    hops=st.integers(1, 3),
)
@settings(max_examples=30, deadline=None)
def test_multi_hop_layer_sizes(n_papers, raw_edges, k, hops):
    edges = [(a % n_papers, b % n_papers) for a, b in raw_edges]
    graph = build_random_graph(n_papers, 1, edges, [(0, 0)])
    layers = sample_multi_hop(graph, 0, k, hops, rng=0)
    assert len(layers) == hops + 1
    for h, layer in enumerate(layers):
        assert layer.shape == (k**h,)
        assert np.all(layer >= 0)
        assert np.all(layer < graph.num_entities)
