"""Integration tests: the autograd stack trains real models end to end."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Embedding,
    GlobalAttentionPooling,
    Linear,
    StepLR,
    Tensor,
    clip_grad_norm,
    concat,
    cross_entropy,
    mse_loss,
)


class TestRegression:
    def test_mlp_fits_nonlinear_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(128, 2))
        y = np.sin(2 * x[:, 0]) * x[:, 1]
        net = MLP([2, 24, 1], activation="tanh", final_activation=False, rng=0)
        opt = Adam(net.parameters(), lr=1e-2)
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = mse_loss(net(Tensor(x)).reshape(-1), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        final = mse_loss(net(Tensor(x)).reshape(-1), y).item()
        assert final < first * 0.2

    def test_classifier_with_scheduler_and_clipping(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(120, 4))
        labels = (x[:, 0] + x[:, 1] - x[:, 2] > 0).astype(int)
        net = MLP([4, 12, 2], activation="relu", final_activation=False, rng=0)
        opt = SGD(net.parameters(), lr=0.5, momentum=0.9)
        sched = StepLR(opt, step_size=40, gamma=0.5)
        for _ in range(120):
            opt.zero_grad()
            loss = cross_entropy(net(Tensor(x)), labels)
            loss.backward()
            clip_grad_norm(net.parameters(), 5.0)
            opt.step()
            sched.step()
        preds = net(Tensor(x)).data.argmax(axis=1)
        assert (preds == labels).mean() > 0.9
        assert opt.lr < 0.5  # scheduler actually decayed

    def test_embedding_plus_attention_pipeline(self):
        """Embedding lookup -> attention pooling -> linear head, trained to
        separate two 'documents' composed of different token groups."""
        rng = np.random.default_rng(2)
        emb = Embedding(20, 8, rng=0)
        pool = GlobalAttentionPooling(8, 8, rng=1)
        head = Linear(8, 1, rng=2)
        params = emb.parameters() + pool.parameters() + head.parameters()
        opt = Adam(params, lr=5e-2)
        docs = [(rng.integers(0, 10, size=6), 0.0) for _ in range(10)] + \
               [(rng.integers(10, 20, size=6), 1.0) for _ in range(10)]
        for _ in range(60):
            opt.zero_grad()
            losses = []
            for token_ids, label in docs:
                pooled = pool(emb(token_ids))
                pred = head(pooled.reshape(1, -1)).reshape(())
                losses.append((pred - label) * (pred - label))
            total = losses[0]
            for term in losses[1:]:
                total = total + term
            (total * (1.0 / len(losses))).backward()
            opt.step()
        errors = 0
        for token_ids, label in docs:
            pred = head(pool(emb(token_ids)).reshape(1, -1)).item()
            errors += int(round(min(max(pred, 0.0), 1.0)) != label)
        assert errors <= 2

    def test_concat_training_path(self):
        """Gradients flow through concat into both branches."""
        left = Linear(3, 2, rng=0)
        right = Linear(3, 2, rng=1)
        head = Linear(4, 1, rng=2)
        x = Tensor(np.random.default_rng(3).normal(size=(8, 3)))
        out = head(concat([left(x), right(x)], axis=1)).sum()
        out.backward()
        assert left.weight.grad is not None
        assert right.weight.grad is not None
        assert np.abs(left.weight.grad).sum() > 0
        assert np.abs(right.weight.grad).sum() > 0
