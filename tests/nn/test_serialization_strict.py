"""Strict, atomic weight loading: mismatches never partially mutate.

The serving artifact store leans on ``load_module`` / ``load_state_dict``
being all-or-nothing — a half-written model would rank, just wrongly.
These tests pin the contract: validation happens before any assignment,
errors name the offending archive and parameters, and a failed load
leaves every parameter bit-identical to its pre-load value.
"""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, load_module, save_module


def _snapshot(module):
    return {name: tensor.data.copy()
            for name, tensor in module.named_parameters()}


def _assert_unchanged(module, snapshot):
    current = dict(module.named_parameters())
    assert set(current) == set(snapshot)
    for name, tensor in current.items():
        np.testing.assert_array_equal(tensor.data, snapshot[name],
                                      err_msg=f"parameter {name} mutated")


@pytest.fixture
def model():
    return Sequential(Linear(4, 3, rng=0), Linear(3, 2, rng=1))


class TestLoadModuleStrict:
    def test_round_trip_is_exact(self, model, tmp_path):
        path = tmp_path / "weights.npz"
        save_module(model, path)
        twin = Sequential(Linear(4, 3, rng=99), Linear(3, 2, rng=98))
        load_module(twin, path)
        for name, tensor in twin.named_parameters():
            np.testing.assert_array_equal(
                tensor.data, dict(model.named_parameters())[name].data)

    def test_wrong_shape_names_path_and_leaves_module_untouched(
            self, model, tmp_path):
        path = tmp_path / "weights.npz"
        save_module(Sequential(Linear(5, 3, rng=0), Linear(3, 2, rng=1)),
                    path)
        before = _snapshot(model)
        with pytest.raises(ValueError) as excinfo:
            load_module(model, path)
        message = str(excinfo.value)
        assert "weights.npz" in message
        assert "Sequential" in message
        assert "steps.0.weight" in message
        _assert_unchanged(model, before)

    def test_missing_and_unexpected_keys_raise_keyerror(self, model,
                                                        tmp_path):
        path = tmp_path / "weights.npz"
        state = model.state_dict()
        state["rogue.weight"] = state.pop("steps.0.weight")
        np.savez(path, **state)
        before = _snapshot(model)
        with pytest.raises(KeyError) as excinfo:
            load_module(model, path)
        message = str(excinfo.value)
        assert "steps.0.weight" in message  # missing
        assert "rogue.weight" in message    # unexpected
        assert "weights.npz" in message
        _assert_unchanged(model, before)


class TestLoadStateDictAtomic:
    def test_late_shape_mismatch_modifies_nothing(self, model):
        """The early-sorted parameter matches; a later one does not.

        A naive assign-as-you-validate loop would overwrite the early
        parameter before discovering the bad one — the load must stage
        everything first.
        """
        state = model.state_dict()
        state["steps.0.weight"] = state["steps.0.weight"] + 1.0  # valid
        state["steps.1.weight"] = np.zeros((7, 7))               # invalid
        before = _snapshot(model)
        with pytest.raises(ValueError, match="no parameters were modified"):
            model.load_state_dict(state)
        _assert_unchanged(model, before)

    def test_loaded_arrays_are_copies(self, model):
        state = model.state_dict()
        model.load_state_dict(state)
        state["steps.0.weight"][:] = 123.0
        assert not np.any(
            dict(model.named_parameters())["steps.0.weight"].data == 123.0)

    def test_valid_load_applies_every_parameter(self, model):
        state = {name: value + 0.5 for name, value in
                 model.state_dict().items()}
        model.load_state_dict(state)
        for name, tensor in model.named_parameters():
            np.testing.assert_array_equal(tensor.data, state[name])
