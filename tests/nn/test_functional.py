"""Tests for the functional ops (softmax, normalisation, distances)."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    cosine_similarity,
    dot_rows,
    dropout,
    euclidean_distance,
    l2_normalize,
    log_softmax,
    softmax,
)
from repro.nn.tensor import parameter


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        np.testing.assert_allclose(softmax(x).data.sum(axis=-1), 1.0)

    def test_extreme_values_stable(self):
        x = Tensor(np.array([1000.0, -1000.0, 0.0]))
        out = softmax(x)
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        np.testing.assert_allclose(log_softmax(x).data,
                                   np.log(softmax(x).data), atol=1e-12)

    def test_softmax_gradient_flows(self):
        p = parameter(np.array([1.0, 2.0, 3.0]))
        (softmax(p) * Tensor([1.0, 0.0, 0.0])).sum().backward()
        assert p.grad is not None
        # gradient of a softmax component sums to ~0 over inputs
        assert abs(p.grad.sum()) < 1e-12


class TestNormalisation:
    def test_l2_normalize_unit_rows(self):
        x = Tensor(np.random.default_rng(2).normal(size=(5, 3)))
        norms = np.linalg.norm(l2_normalize(x).data, axis=-1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-6)

    def test_l2_normalize_zero_row_safe(self):
        x = Tensor(np.zeros((2, 3)))
        out = l2_normalize(x)
        assert np.isfinite(out.data).all()

    def test_cosine_similarity_bounds(self):
        a = Tensor(np.random.default_rng(3).normal(size=(6, 4)))
        b = Tensor(np.random.default_rng(4).normal(size=(6, 4)))
        sims = cosine_similarity(a, b).data
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)

    def test_cosine_self_is_one(self):
        a = Tensor(np.random.default_rng(5).normal(size=(4, 3)))
        np.testing.assert_allclose(cosine_similarity(a, a).data, 1.0, rtol=1e-6)


class TestDistances:
    def test_dot_rows(self):
        a = Tensor(np.array([[1.0, 2.0], [0.0, 1.0]]))
        b = Tensor(np.array([[3.0, 4.0], [5.0, 6.0]]))
        np.testing.assert_allclose(dot_rows(a, b).data, [11.0, 6.0])

    def test_euclidean_matches_numpy(self):
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        expected = np.linalg.norm(a - b, axis=1)
        np.testing.assert_allclose(
            euclidean_distance(Tensor(a), Tensor(b)).data, expected, rtol=1e-6)

    def test_euclidean_gradient_at_zero_safe(self):
        p = parameter(np.ones((2, 3)))
        q = Tensor(np.ones((2, 3)))
        euclidean_distance(p, q).sum().backward()
        assert np.isfinite(p.grad).all()


class TestDropoutFunctional:
    def test_rate_zero_identity(self):
        x = Tensor(np.ones((3, 3)))
        out = dropout(x, 0.0, np.random.default_rng(0), training=True)
        np.testing.assert_array_equal(out.data, x.data)

    def test_eval_identity(self):
        x = Tensor(np.ones((3, 3)))
        out = dropout(x, 0.9, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_expected_scale_preserved(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
