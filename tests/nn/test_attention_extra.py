"""Extra attention coverage: masked behaviour inside the subspace network."""

import numpy as np
import pytest

from repro.core.subspace_model import SubspaceEmbeddingNetwork


class TestMaskedAttention:
    def test_other_subspace_sentences_do_not_leak_into_own_half(self):
        """With context_weight=0, subspace k's embedding must not change
        when a sentence of a different subspace changes."""
        net = SubspaceEmbeddingNetwork(in_dim=12, hidden_dims=(16,), out_dim=6,
                                       num_subspaces=3, context_weight=0.0,
                                       rng=0)
        rng = np.random.default_rng(0)
        H = rng.normal(size=(4, 12))
        labels = [0, 1, 1, 2]
        base = net.embed(H, labels)
        H2 = H.copy()
        H2[3] = rng.normal(size=12)  # change the result sentence
        changed = net.embed(H2, labels)
        # own halves of background and method are identical
        np.testing.assert_allclose(changed[0][:6], base[0][:6])
        np.testing.assert_allclose(changed[1][:6], base[1][:6])
        # result subspace must differ
        assert not np.allclose(changed[2][:6], base[2][:6])

    def test_context_weight_controls_cross_talk(self):
        """With context_weight>0 the context half reacts to other
        subspaces; with 0 it is exactly zero."""
        rng = np.random.default_rng(1)
        H = rng.normal(size=(3, 12))
        labels = [0, 1, 2]
        no_ctx = SubspaceEmbeddingNetwork(in_dim=12, out_dim=6, num_subspaces=3,
                                          context_weight=0.0, rng=0)
        out = no_ctx.embed(H, labels)
        np.testing.assert_allclose(out[:, 6:], 0.0)
        with_ctx = SubspaceEmbeddingNetwork(in_dim=12, out_dim=6,
                                            num_subspaces=3,
                                            context_weight=1.0, rng=0)
        out2 = with_ctx.embed(H, labels)
        assert np.abs(out2[:, 6:]).max() > 0

    def test_single_subspace_network(self):
        net = SubspaceEmbeddingNetwork(in_dim=12, out_dim=6, num_subspaces=1,
                                       rng=0)
        out = net.embed(np.random.default_rng(2).normal(size=(3, 12)), [0, 0, 0])
        assert out.shape == (1, 12)
        # K=1 has no "other" subspaces: context half must be zero
        np.testing.assert_allclose(out[0, 6:], 0.0)

    def test_gradients_reach_all_parameters(self):
        net = SubspaceEmbeddingNetwork(in_dim=12, hidden_dims=(16,), out_dim=6,
                                       num_subspaces=3, rng=0)
        H = np.random.default_rng(3).normal(size=(4, 12))
        outs = net(H, [0, 1, 2, 1])
        total = outs[0].sum() + outs[1].sum() + outs[2].sum()
        total.backward()
        for name, param in net.named_parameters():
            assert param.grad is not None, f"{name} received no gradient"
