"""Tests for Module reflection, Linear/MLP/Embedding layers, serialization."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Dropout,
    Embedding,
    Linear,
    Module,
    Sequential,
    Tensor,
    load_module,
    save_module,
)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradient_flows_to_weight_and_bias(self):
        layer = Linear(2, 2, rng=0)
        out = layer(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=42)
        b = Linear(4, 3, rng=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestMLP:
    def test_stack_depth(self):
        mlp = MLP([8, 4, 2], rng=0)
        out = mlp(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 2)
        # tanh squashes to (-1, 1)
        assert np.all(np.abs(out.data) < 1.0)

    def test_no_final_activation(self):
        mlp = MLP([2, 2], activation="relu", final_activation=False, rng=0)
        x = Tensor(np.array([[10.0, 10.0]]))
        out = mlp(x)
        # without activation output can exceed relu/tanh bounds in magnitude
        assert out.shape == (1, 2)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([2, 2], activation="gelu")

    def test_parameter_count(self):
        mlp = MLP([3, 5, 2], rng=0)
        n = sum(p.size for p in mlp.parameters())
        assert n == (3 * 5 + 5) + (5 * 2 + 2)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[0], out.data[1])

    def test_out_of_range(self):
        emb = Embedding(4, 2, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([4]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatter(self):
        emb = Embedding(5, 2, rng=0)
        out = emb(np.array([2, 2])).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestDropout:
    def test_eval_mode_identity(self):
        layer = Dropout(0.5, rng=0).eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_zeroes_and_rescales(self):
        layer = Dropout(0.5, rng=0)
        out = layer(Tensor(np.ones((100, 100))))
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.3 < (out.data == 0).mean() < 0.7

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleReflection:
    def test_nested_parameters(self):
        class Net(Module):
            def __init__(self):
                self.a = Linear(2, 2, rng=0)
                self.b = Sequential(Linear(2, 3, rng=1), Linear(3, 1, rng=2))

            def forward(self, x):
                return self.b(self.a(x))

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "a.weight" in names
        assert "b.steps.0.weight" in names
        assert len(net.parameters()) == 6

    def test_state_dict_roundtrip(self, tmp_path):
        net = MLP([3, 4, 2], rng=0)
        state = net.state_dict()
        other = MLP([3, 4, 2], rng=99)
        other.load_state_dict(state)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(net(x).data, other(x).data)

    def test_state_dict_strict(self):
        net = MLP([3, 4, 2], rng=0)
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            MLP([3, 4, 2], rng=0).load_state_dict(state)

    def test_state_dict_shape_mismatch(self):
        net = Linear(2, 2, rng=0)
        bad = {name: np.zeros((9, 9)) for name in net.state_dict()}
        with pytest.raises(ValueError):
            net.load_state_dict(bad)

    def test_save_load_npz(self, tmp_path):
        net = MLP([3, 4, 2], rng=0)
        path = tmp_path / "model.npz"
        save_module(net, path)
        other = MLP([3, 4, 2], rng=7)
        load_module(other, path)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(net(x).data, other(x).data)

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        net.eval()
        assert net.steps[1].training is False
        net.train()
        assert net.steps[1].training is True

    def test_zero_grad(self):
        net = Linear(2, 2, rng=0)
        net(Tensor(np.ones((1, 2)))).sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None
