"""Unit and gradient-check tests for the autograd Tensor engine."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Tensor, as_tensor, concat, parameter, stack


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = grad.reshape(-1)
    x_flat = x.reshape(-1)
    for i in range(x_flat.size):
        orig = x_flat[i]
        x_flat[i] = orig + eps
        hi = fn(x)
        x_flat[i] = orig - eps
        lo = fn(x)
        x_flat[i] = orig
        flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build, x0: np.ndarray, atol: float = 1e-5) -> None:
    """Assert autograd gradient matches numerical gradient of `build`."""
    t = parameter(x0.copy())
    out = build(t)
    out.backward()
    expected = numeric_grad(lambda arr: float(build(Tensor(arr)).data), x0.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestBasicOps:
    def test_add_values(self):
        assert (Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])).data.tolist() == [4.0, 6.0]

    def test_scalar_promotion(self):
        assert (Tensor([1.0]) + 2).data.tolist() == [3.0]
        assert (2 * Tensor([3.0])).data.tolist() == [6.0]
        assert (1 - Tensor([0.25])).data.tolist() == [0.75]
        assert (1 / Tensor([4.0])).data.tolist() == [0.25]

    def test_item_scalar_only(self):
        assert Tensor(5.0).item() == 5.0
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        p = parameter([1.0, 2.0])
        d = p.detach()
        assert not d.requires_grad
        assert d.data is p.data

    def test_backward_requires_scalar(self):
        p = parameter([1.0, 2.0])
        with pytest.raises(ShapeError):
            (p * 2).backward()

    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(3.0).backward()


class TestGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 1.0) * t).sum(), np.array([1.0, -2.0, 0.5]))

    def test_div(self):
        check_gradient(lambda t: (t / 2.0 + 3.0 / t).sum(), np.array([1.0, 2.0, -1.5]))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), np.array([1.0, -2.0, 0.5]))

    def test_exp_log(self):
        check_gradient(lambda t: (t.exp() + (t + 3.0).log()).sum(), np.array([0.1, 0.5, -0.2]))

    def test_tanh_sigmoid_relu(self):
        x = np.array([-1.0, 0.3, 2.0])
        check_gradient(lambda t: t.tanh().sum(), x)
        check_gradient(lambda t: t.sigmoid().sum(), x)
        check_gradient(lambda t: t.relu().sum(), np.array([-1.0, 0.3, 2.0]))

    def test_abs_clip_min(self):
        check_gradient(lambda t: t.abs().sum(), np.array([-1.0, 0.5, 2.0]))
        check_gradient(lambda t: t.clip_min(0.0).sum(), np.array([-1.0, 0.5, 2.0]))

    def test_matmul_2d(self):
        a0 = np.arange(6, dtype=np.float64).reshape(2, 3) / 3.0
        b = Tensor(np.arange(12, dtype=np.float64).reshape(3, 4) / 5.0)
        check_gradient(lambda t: (t @ b).sum(), a0)

    def test_matmul_grad_right(self):
        a = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3))
        b0 = np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0
        p = parameter(b0.copy())
        (a @ p).sum().backward()
        expected = numeric_grad(lambda arr: float((a.data @ arr).sum()), b0.copy())
        np.testing.assert_allclose(p.grad, expected, atol=1e-5)

    def test_vec_matmul(self):
        w = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3))
        check_gradient(lambda t: (t @ w).sum(), np.array([0.5, -1.0]))

    def test_transpose(self):
        check_gradient(lambda t: (t.T @ Tensor(np.ones((2, 2)))).sum(),
                       np.arange(4, dtype=np.float64).reshape(2, 2))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(3, 2) * 2.0).sum(),
                       np.arange(6, dtype=np.float64).reshape(2, 3))

    def test_getitem_gather_accumulates(self):
        p = parameter(np.ones((4, 2)))
        out = p[np.array([0, 0, 2])].sum()
        out.backward()
        np.testing.assert_allclose(p.grad, [[2, 2], [0, 0], [1, 1], [0, 0]])

    def test_sum_axis_keepdims(self):
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), x.copy())
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), x.copy())

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(),
                       np.arange(6, dtype=np.float64).reshape(2, 3))

    def test_max(self):
        check_gradient(lambda t: t.max(), np.array([1.0, 5.0, 3.0]))

    def test_broadcast_add_bias(self):
        b0 = np.array([0.5, -0.5])
        x = Tensor(np.ones((3, 2)))
        p = parameter(b0.copy())
        ((x + p) ** 2).sum().backward()
        expected = numeric_grad(lambda arr: float(((x.data + arr) ** 2).sum()), b0.copy())
        np.testing.assert_allclose(p.grad, expected, atol=1e-5)

    def test_diamond_graph_accumulation(self):
        # y = x*x used twice downstream: gradient must accumulate once per path.
        p = parameter([2.0])
        y = p * p
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(p.grad, [8.0])

    def test_grad_accumulates_across_backward_calls(self):
        p = parameter([1.0])
        (p * 2.0).sum().backward()
        (p * 2.0).sum().backward()
        np.testing.assert_allclose(p.grad, [4.0])
        p.zero_grad()
        assert p.grad is None


class TestConcatStack:
    def test_concat_values_and_grads(self):
        a = parameter([1.0, 2.0])
        b = parameter([3.0])
        out = concat([a, b]) * Tensor([1.0, 10.0, 100.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 10.0])
        np.testing.assert_allclose(b.grad, [100.0])

    def test_concat_axis1(self):
        a = parameter(np.ones((2, 2)))
        b = parameter(np.ones((2, 3)))
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_stack(self):
        a = parameter([1.0, 2.0])
        b = parameter([3.0, 4.0])
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        (out * Tensor([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            stack([])


def test_as_tensor_passthrough():
    t = Tensor([1.0])
    assert as_tensor(t) is t
    assert as_tensor([1.0, 2.0]).shape == (2,)
