"""Tests for optimisers, schedulers, losses, and attention blocks."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    GlobalAttentionPooling,
    Linear,
    StepLR,
    Tensor,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cross_entropy,
    cross_subspace_attention,
    fuse_with_context,
    l2_regularization,
    margin_ranking_loss,
    mse_loss,
    parameter,
    softmax,
)


def quadratic_loss(p):
    return ((p - Tensor([3.0, -2.0])) ** 2).sum()


class TestOptim:
    @pytest.mark.parametrize("make", [
        lambda ps: SGD(ps, lr=0.1),
        lambda ps: SGD(ps, lr=0.05, momentum=0.9),
        lambda ps: Adam(ps, lr=0.2),
    ])
    def test_converges_on_quadratic(self, make):
        p = parameter([0.0, 0.0])
        opt = make([p])
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = parameter([10.0])
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # zero-gradient objective: only decay acts
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([parameter([1.0])], lr=0.0)

    def test_step_lr_decays(self):
        p = parameter([1.0])
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_clip_grad_norm(self):
        p = parameter([3.0, 4.0])
        (p * Tensor([3.0, 4.0])).sum().backward()
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_skips_none_grad(self):
        p = parameter([1.0])
        opt = Adam([p], lr=0.1)
        opt.step()  # no backward run; must not crash
        np.testing.assert_allclose(p.data, [1.0])


class TestLosses:
    def test_margin_ranking_zero_when_satisfied(self):
        pos = Tensor([5.0, 5.0])
        neg = Tensor([1.0, 1.0])
        assert margin_ranking_loss(pos, neg, margin=1.0).item() == 0.0

    def test_margin_ranking_penalises_violations(self):
        pos = Tensor([0.0])
        neg = Tensor([0.0])
        assert margin_ranking_loss(pos, neg, margin=1.0).item() == pytest.approx(1.0)

    def test_margin_negative_raises(self):
        with pytest.raises(ValueError):
            margin_ranking_loss(Tensor([1.0]), Tensor([0.0]), margin=-1.0)

    def test_bce_matches_reference(self):
        logits = Tensor([0.0, 2.0, -2.0])
        targets = np.array([1.0, 1.0, 0.0])
        expected = -np.mean(
            targets * np.log(1 / (1 + np.exp(-logits.data)))
            + (1 - targets) * np.log(1 - 1 / (1 + np.exp(-logits.data)))
        )
        assert binary_cross_entropy_with_logits(logits, targets).item() == pytest.approx(expected)

    def test_bce_extreme_logits_stable(self):
        logits = Tensor([1000.0, -1000.0])
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_cross_entropy_shape_checks(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_l2_regularization(self):
        p = parameter([3.0, 4.0])
        assert l2_regularization([p], 0.5).item() == pytest.approx(12.5)
        with pytest.raises(ValueError):
            l2_regularization([p], -0.1)

    def test_mse(self):
        assert mse_loss(Tensor([1.0, 2.0]), np.array([1.0, 4.0])).item() == pytest.approx(2.0)

    def test_bce_trains_classifier(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)
        layer = Linear(2, 1, rng=0)
        opt = Adam(layer.parameters(), lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            logits = layer(Tensor(x)).reshape(-1)
            binary_cross_entropy_with_logits(logits, y).backward()
            opt.step()
        preds = (layer(Tensor(x)).data.reshape(-1) > 0).astype(float)
        assert (preds == y).mean() > 0.95


class TestAttention:
    def test_softmax_sums_to_one(self):
        w = softmax(Tensor(np.array([[1.0, 2.0, 3.0]])), axis=-1)
        np.testing.assert_allclose(w.data.sum(axis=-1), 1.0)

    def test_global_attention_pooling_shape(self):
        pool = GlobalAttentionPooling(6, 4, rng=0)
        out = pool(Tensor(np.random.default_rng(0).normal(size=(5, 6))))
        assert out.shape == (4,)

    def test_global_attention_pooling_single_sentence(self):
        pool = GlobalAttentionPooling(6, 4, rng=0)
        out = pool(Tensor(np.ones((1, 6))))
        assert out.shape == (4,)

    def test_pooling_trains(self):
        pool = GlobalAttentionPooling(3, 2, rng=0)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        target = np.array([1.0, -1.0])
        opt = Adam(pool.parameters(), lr=0.05)
        first = None
        for _ in range(50):
            opt.zero_grad()
            loss = mse_loss(pool(x), target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert mse_loss(pool(x), target).item() < first

    def test_cross_subspace_attention_shapes(self):
        vecs = [Tensor(np.ones(4) * i) for i in range(1, 4)]
        ctx = cross_subspace_attention(vecs)
        assert len(ctx) == 3
        assert all(c.shape == (4,) for c in ctx)

    def test_cross_subspace_single_space_zero_context(self):
        ctx = cross_subspace_attention([Tensor(np.ones(4))])
        np.testing.assert_array_equal(ctx[0].data, np.zeros(4))

    def test_cross_subspace_empty_raises(self):
        with pytest.raises(ValueError):
            cross_subspace_attention([])

    def test_context_is_convex_combination(self):
        a = Tensor(np.array([1.0, 0.0]))
        b = Tensor(np.array([0.0, 1.0]))
        c = Tensor(np.array([1.0, 1.0]))
        ctx = cross_subspace_attention([a, b, c])
        # context of a mixes b and c; entries lie inside their convex hull
        assert 0.0 <= ctx[0].data[0] <= 1.0
        assert 0.0 <= ctx[0].data[1] <= 1.0

    def test_fuse_with_context_doubles_dim(self):
        vecs = [Tensor(np.ones(4)), Tensor(np.zeros(4))]
        fused = fuse_with_context(vecs)
        assert all(f.shape == (8,) for f in fused)
        np.testing.assert_array_equal(fused[0].data[:4], np.ones(4))
