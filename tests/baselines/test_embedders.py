"""Tests for the document-embedding baselines (SHPE, Doc2Vec, BERT-avg)."""

import numpy as np
import pytest

from repro.baselines import BertAverageEmbedder, Doc2VecEmbedder, SHPEEmbedder
from repro.data import Paper, load_scopus
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def papers():
    return load_scopus(scale=0.2, seed=4).papers[:60]


@pytest.mark.parametrize("embedder_cls", [SHPEEmbedder, Doc2VecEmbedder,
                                          BertAverageEmbedder])
class TestCommonContract:
    def test_embed_shapes_consistent(self, embedder_cls, papers):
        embedder = embedder_cls().fit(papers)
        matrix = embedder.embed_many(papers[:10])
        assert matrix.shape[0] == 10
        assert np.isfinite(matrix).all()

    def test_not_fitted(self, embedder_cls, papers):
        with pytest.raises(NotFittedError):
            embedder_cls().embed(papers[0])

    def test_deterministic(self, embedder_cls, papers):
        a = embedder_cls().fit(papers).embed(papers[0])
        b = embedder_cls().fit(papers).embed(papers[0])
        np.testing.assert_allclose(a, b)


class TestSpecifics:
    def test_shpe_drops_oov_words(self, papers):
        embedder = SHPEEmbedder().fit(papers)
        # a paper made exclusively of words unseen in the corpus collapses
        # to the TF-IDF-only part (word half = zeros)
        alien = Paper(id="alien", title="zzz", abstract="Qqqqx wwwwy vvvvz.",
                      year=2015, field="cs")
        vec = embedder.embed(alien)
        np.testing.assert_allclose(vec[:embedder.dim], 0.0)

    def test_bert_fragments_rare_words(self, papers):
        embedder = BertAverageEmbedder().fit(papers)
        # two distinct rare words with shared trigrams embed similarly
        a = Paper(id="a", title="t", abstract="Vibazuko gomu.", year=2015,
                  field="cs")
        b = Paper(id="b", title="t", abstract="Vibazuka gomu.", year=2015,
                  field="cs")
        va, vb = embedder.embed(a), embedder.embed(b)
        cos = va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb))
        assert cos > 0.8

    def test_doc2vec_train_papers_have_learned_vectors(self, papers):
        embedder = Doc2VecEmbedder(epochs=2, seed=0).fit(papers)
        trained = embedder.embed(papers[0])
        unseen = Paper(id="unseen", title="t",
                       abstract=papers[0].abstract, year=2016, field="cs")
        inferred = embedder.embed(unseen)
        assert trained.shape == inferred.shape
        assert not np.allclose(trained, inferred)

    def test_doc2vec_same_topic_closer(self, papers):
        embedder = Doc2VecEmbedder(epochs=4, seed=0).fit(papers)
        by_field = {}
        for p in papers:
            by_field.setdefault(p.field, []).append(p)
        fields = [group for group in by_field.values() if len(group) >= 4]
        assert len(fields) >= 2

        def cos(a, b):
            va, vb = embedder.embed(a), embedder.embed(b)
            return va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb) + 1e-9)

        same, cross = [], []
        for i, group in enumerate(fields):
            for a, b in zip(group[:4], group[1:5]):
                same.append(cos(a, b))
            other = fields[(i + 1) % len(fields)]
            for a, b in zip(group[:4], other[:4]):
                cross.append(cos(a, b))
        assert np.mean(same) > np.mean(cross)

    def test_empty_abstract_handled(self, papers):
        blank = Paper(id="blank", title="t", abstract="", year=2015, field="cs")
        for embedder_cls in (SHPEEmbedder, BertAverageEmbedder):
            vec = embedder_cls().fit(papers).embed(blank)
            assert np.isfinite(vec).all()
