"""Internal mechanics of the KGCN baseline network."""

import numpy as np
import pytest

from repro.baselines.graph_rec import _KGCNNet
from repro.data import load_acm
from repro.graph import build_academic_network


@pytest.fixture(scope="module")
def setup():
    corpus = load_acm(scale=0.2, seed=44)
    graph = build_academic_network(corpus)
    rng = np.random.default_rng(0)
    content = rng.normal(size=(graph.num_entities, 12))
    net = _KGCNNet(graph, n_users=5, content=content, dim=8, neighbor_k=4,
                   rng=0)
    paper_idx = np.array(graph.entities_of_type("paper")[:6])
    return net, paper_idx


class TestKGCNNet:
    def test_item_vector_shape(self, setup):
        net, paper_idx = setup
        vectors = net.item_vectors(paper_idx)
        assert vectors.shape == (6, 8)
        assert np.isfinite(vectors.data).all()

    def test_item_vectors_bounded_by_tanh(self, setup):
        net, paper_idx = setup
        vectors = net.item_vectors(paper_idx)
        assert np.all(np.abs(vectors.data) <= 1.0)

    def test_scores_shape(self, setup):
        net, paper_idx = setup
        logits = net(np.zeros(6, dtype=int), paper_idx)
        assert logits.shape == (6,)

    def test_receptive_fields_cached(self, setup):
        net, paper_idx = setup
        first = net._neighbours(int(paper_idx[0]))
        second = net._neighbours(int(paper_idx[0]))
        np.testing.assert_array_equal(first, second)

    def test_different_users_different_scores(self, setup):
        net, paper_idx = setup
        a = net(np.zeros(6, dtype=int), paper_idx).data
        b = net(np.ones(6, dtype=int), paper_idx).data
        assert not np.allclose(a, b)

    def test_gradients_flow(self, setup):
        net, paper_idx = setup
        net.zero_grad()
        loss = net(np.zeros(6, dtype=int), paper_idx).sum()
        loss.backward()
        assert net.users.weight.grad is not None
        assert net.content_proj.weight.grad is not None
