"""Tests for the CLT / CSJ / HP quality scorers."""

import numpy as np
import pytest

from repro.baselines import CLTScorer, CSJScorer, HPScorer
from repro.data import Author, Corpus, Paper, load_scopus


@pytest.fixture(scope="module")
def scopus():
    return load_scopus(scale=0.25, seed=2)


class TestTextScorers:
    def test_scores_are_finite(self, scopus):
        papers = scopus.papers[:40]
        for scorer_cls in (CLTScorer, CSJScorer):
            scorer = scorer_cls().fit(papers)
            scores = scorer.score_many(papers)
            assert np.isfinite(scores).all()
            assert scores.std() > 0  # not constant

    def test_fit_normalisation_changes_scale(self, scopus):
        papers = scopus.papers[:40]
        fitted = CLTScorer().fit(papers)
        raw = CLTScorer()
        assert fitted.score(papers[0]) != raw.score(papers[0])

    def test_different_scorers_disagree(self, scopus):
        papers = scopus.papers[:40]
        clt = CLTScorer().fit(papers).score_many(papers)
        csj = CSJScorer().fit(papers).score_many(papers)
        assert not np.allclose(clt, csj)

    def test_empty_abstract(self):
        paper = Paper(id="e", title="t", abstract="", year=2015, field="cs")
        assert np.isfinite(CLTScorer().score(paper))


class TestHPScorer:
    def _mini_corpus(self):
        papers = [
            Paper(id="old1", title="t", abstract="A.", year=2010, field="cs",
                  authors=("star",)),
            Paper(id="old2", title="t", abstract="A.", year=2011, field="cs",
                  authors=("star",), references=("old1",)),
            Paper(id="old3", title="t", abstract="A.", year=2012, field="cs",
                  authors=("nobody",), references=("old1", "old2")),
            Paper(id="new_star", title="t", abstract="A.", year=2013, field="cs",
                  authors=("star",)),
            Paper(id="new_nobody", title="t", abstract="A.", year=2013, field="cs",
                  authors=("fresh",)),
            Paper(id="citer", title="t", abstract="A.", year=2014, field="cs",
                  authors=("nobody",), references=("new_star",)),
        ]
        authors = [Author(a, a) for a in ("star", "nobody", "fresh")]
        return Corpus("mini", papers, authors=authors)

    def test_h_index_computation(self):
        corpus = self._mini_corpus()
        hp = HPScorer(corpus, history_year=2013)
        # star has papers old1 (2 cites) and old2 (1 cite) -> h = 1... old1
        # cited by old2+old3 = 2, old2 cited by old3 = 1 -> h-index = 1? No:
        # counts [2, 1]: h=1 needs >=1 (yes), h=2 needs second >=2 (1 < 2).
        assert hp.h_index("star") == 1
        assert hp.h_index("fresh") == 0

    def test_new_paper_scoring_prefers_established_authors(self):
        corpus = self._mini_corpus()
        hp = HPScorer(corpus, history_year=2013)
        star_paper = corpus.get_paper("new_star")
        fresh_paper = corpus.get_paper("new_nobody")
        assert hp.score(star_paper) > hp.score(fresh_paper)

    def test_early_citations_counted(self):
        corpus = self._mini_corpus()
        hp = HPScorer(corpus, history_year=2013, early_weight=10.0)
        # new_star is cited by 'citer' (2014 = within one year of 2013)
        assert hp.score(corpus.get_paper("new_star")) >= 10.0

    def test_correlates_with_citations_on_synthetic(self, scopus):
        from repro.analysis import spearman_correlation
        papers = sorted(scopus.papers, key=lambda p: p.year)[-60:]
        hp = HPScorer(scopus, history_year=2015)
        rho = spearman_correlation(hp.score_many(papers),
                                   [p.citation_count for p in papers])
        assert rho > 0.0  # authority carries real signal in the generator
