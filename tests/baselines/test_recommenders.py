"""Tests for the recommendation baselines (shared contract + specifics)."""

import numpy as np
import pytest

from repro.baselines import (
    JTIERecommender,
    KGCNLSRecommender,
    KGCNRecommender,
    MLPRecommender,
    NBCFRecommender,
    RippleNetRecommender,
    SVDRecommender,
    TfIdfIndex,
    WNMFRecommender,
    author_citation_pairs,
    build_interaction_matrix,
    content_neighbors,
)
from repro.analysis.metrics import ndcg_at_k
from repro.data import load_acm
from repro.errors import NotFittedError
from repro.experiments.protocol import split_task_by_year

ALL_RECOMMENDERS = [
    lambda: SVDRecommender(seed=0),
    lambda: WNMFRecommender(seed=0, n_iter=40),
    lambda: NBCFRecommender(),
    lambda: MLPRecommender(seed=0, epochs=2),
    lambda: JTIERecommender(seed=0, epochs=2),
    lambda: KGCNRecommender(seed=0, epochs=1),
    lambda: KGCNLSRecommender(seed=0, epochs=1),
    lambda: RippleNetRecommender(),
]


@pytest.fixture(scope="module")
def task():
    corpus = load_acm(scale=0.3, seed=8)
    return split_task_by_year(corpus, 2014, n_users=8, candidate_size=16,
                              min_prefix=8, seed=0)


@pytest.mark.parametrize("factory", ALL_RECOMMENDERS,
                         ids=lambda f: f().name)
class TestRecommenderContract:
    def test_rank_is_permutation(self, factory, task):
        rec = factory()
        rec.fit(task.corpus, task.train_papers, task.new_papers)
        user = task.users[0]
        ranked = rec.rank(list(user.train_papers), list(user.candidates))
        assert sorted(ranked) == sorted(p.id for p in user.candidates)

    def test_empty_candidates(self, factory, task):
        rec = factory()
        rec.fit(task.corpus, task.train_papers, task.new_papers)
        assert rec.rank(list(task.users[0].train_papers), []) == []

    def test_not_fitted(self, factory, task):
        rec = factory()
        if isinstance(rec, NBCFRecommender):
            with pytest.raises(NotFittedError):
                rec.rank(list(task.users[0].train_papers),
                         list(task.users[0].candidates))
        else:
            with pytest.raises(NotFittedError):
                rec.rank(list(task.users[0].train_papers),
                         list(task.users[0].candidates))


class TestBetterThanRandom:
    @pytest.mark.parametrize("factory", [
        lambda: NBCFRecommender(),
        lambda: RippleNetRecommender(),
        lambda: SVDRecommender(seed=0),
    ], ids=("NBCF", "RippleNet", "SVD"))
    def test_beats_shuffled_ranking(self, factory, task):
        rec = factory()
        rec.fit(task.corpus, task.train_papers, task.new_papers)
        rng = np.random.default_rng(0)
        model_scores, random_scores = [], []
        for user in task.users:
            cands = user.candidate_set(8)
            ranked = rec.rank(list(user.train_papers), cands)
            model_scores.append(ndcg_at_k(ranked, set(user.relevant_ids), 8))
            shuffled = [c.id for c in cands]
            rng.shuffle(shuffled)
            random_scores.append(ndcg_at_k(shuffled, set(user.relevant_ids), 8))
        assert np.mean(model_scores) > np.mean(random_scores)


class TestInteractionMatrix:
    def test_entries(self, task):
        matrix, authors, papers = build_interaction_matrix(
            task.corpus, task.train_papers)
        assert matrix.shape == (len(authors), len(papers))
        # authored papers marked
        paper = task.train_papers[0]
        if paper.authors:
            i = authors[paper.authors[0]]
            assert matrix[i, papers[paper.id]] == 1.0

    def test_author_citation_pairs_labels(self, task):
        samples = author_citation_pairs(list(task.train_papers),
                                        negative_ratio=2, rng=0)
        labels = {s[2] for s in samples}
        assert labels == {0.0, 1.0}
        positives = [s for s in samples if s[2] == 1.0]
        assert positives


class TestContentIndex:
    def test_tfidf_normalised(self, task):
        index = TfIdfIndex().fit(list(task.train_papers))
        vec = index.transform(task.train_papers[0])
        assert abs(np.linalg.norm(vec) - 1.0) < 1e-9

    def test_same_paper_most_similar(self, task):
        index = TfIdfIndex().fit(list(task.train_papers))
        matrix = index.transform_many(list(task.train_papers[:30]))
        top, weights = content_neighbors(matrix[3], matrix, top_m=3)
        assert 3 in top
        assert weights.sum() == pytest.approx(1.0)

    def test_validation(self, task):
        with pytest.raises(ValueError):
            TfIdfIndex().fit([])
        with pytest.raises(ValueError):
            TfIdfIndex(max_features=0)
        index = TfIdfIndex().fit(list(task.train_papers))
        matrix = index.transform_many(list(task.train_papers[:5]))
        with pytest.raises(ValueError):
            content_neighbors(matrix[0], matrix, top_m=0)


class TestKGCNSpecifics:
    def test_label_smoothness_flag(self):
        assert KGCNRecommender.label_smoothness == 0.0
        assert KGCNLSRecommender.label_smoothness > 0.0

    def test_ripple_weights_cover_user_entities(self, task):
        rec = RippleNetRecommender()
        rec.fit(task.corpus, task.train_papers, task.new_papers)
        user = task.users[0]
        weights = rec._ripple_weights(list(user.train_papers))
        assert weights  # non-empty propagation set
        graph = rec._graph
        first = graph.index_of("paper", user.train_papers[0].id)
        for entity in graph.two_way_neighbors(first):
            assert weights.get(entity, 0) > 0
