"""ServingIndex tests: blockwise retrieval, caching, ingestion, degradation."""

import dataclasses
import json
import shutil

import numpy as np
import pytest

from repro import obs
from repro.serve import ServingIndex, load_pipeline


@pytest.fixture
def pool(serve_task):
    return list(serve_task.new_papers)


@pytest.fixture
def index(artifact, pool):
    return ServingIndex.from_artifact(artifact[0], papers=pool)


@pytest.fixture
def user(serve_task):
    return serve_task.users[0]


def _clone(paper, new_id):
    return dataclasses.replace(paper, id=new_id, references=(),
                               citation_count=0)


class TestRetrieval:
    def test_pool_is_indexed(self, index, pool):
        assert not index.degraded
        assert index.num_papers == len(pool)
        assert index.paper_ids == [p.id for p in pool]

    def test_blockwise_matches_full_matrix(self, artifact, pool, serve_task):
        small = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           block_size=7)
        large = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           block_size=10_000)
        for user in serve_task.users[:3]:
            papers = list(user.train_papers)
            for k in (1, 5, len(pool)):
                assert small.top_k(papers, k=k) == large.top_k(papers, k=k)

    def test_heap_matches_bruteforce_argsort(self, index, user):
        papers = list(user.train_papers)
        k = 12
        got = index.top_k(papers, k=k)
        # Recompute scores directly from the precomputed matrix.
        rec = index._recommender
        interest = rec.model.interest_vectors([p.id for p in papers]).data
        pairwise = interest @ index._influence.T
        mix = rec.config.max_pool_mix
        scores = mix * pairwise.max(axis=0) + (1 - mix) * pairwise.mean(axis=0)
        order = np.argsort(-scores, kind="mergesort")[:k]
        assert got == [index.paper_ids[i] for i in order]

    def test_k_larger_than_pool(self, index, user):
        everything = index.top_k(list(user.train_papers),
                                 k=index.num_papers + 50)
        assert sorted(everything) == sorted(index.paper_ids)

    def test_invalid_arguments(self, index, user):
        with pytest.raises(ValueError, match="k must be"):
            index.top_k(list(user.train_papers), k=0)
        with pytest.raises(ValueError, match="no representative"):
            index.top_k([], k=5)
        with pytest.raises(KeyError, match="not registered"):
            index.top_k("nobody", k=5)


class TestCache:
    def test_hit_and_explicit_invalidation(self, index, user):
        papers = list(user.train_papers)
        first = index.top_k(papers, k=10)
        assert (index.cache_hits, index.cache_misses) == (0, 1)
        second = index.top_k(papers, k=10)
        assert second == first
        assert (index.cache_hits, index.cache_misses) == (1, 1)
        # Different k is a different entry.
        index.top_k(papers, k=5)
        assert index.cache_misses == 2
        index.invalidate()
        index.top_k(papers, k=10)
        assert index.cache_misses == 3

    def test_cached_result_is_copied(self, index, user):
        papers = list(user.train_papers)
        first = index.top_k(papers, k=10)
        first.clear()  # corrupting the returned list must not poison the cache
        assert len(index.top_k(papers, k=10)) == 10

    def test_lru_bound(self, artifact, pool, serve_task):
        index = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           cache_size=2)
        papers = list(serve_task.users[0].train_papers)
        for k in (1, 2, 3, 4):
            index.top_k(papers, k=k)
        assert len(index._cache) == 2

    def test_registered_user_matches_adhoc(self, index, user):
        index.register_user("u1", list(user.train_papers))
        assert index.top_k("u1", k=10) == \
            index.top_k(list(user.train_papers), k=10)


class TestIngestion:
    def test_add_paper_appears_in_topk_without_refit(self, artifact, pool,
                                                     user):
        index = ServingIndex.from_artifact(artifact[0], papers=pool)
        model = index._recommender.model
        entities_before = model.graph.num_entities
        weights_before = {k: v.copy() for k, v in model.state_dict().items()
                          if not k.startswith("embeddings.")}
        fresh = _clone(user.train_papers[-1], "serve-test-fresh")
        assert fresh.id not in index.paper_ids
        position = index.add_paper(fresh)
        assert position == index.num_papers - 1
        assert index.paper_ids[-1] == fresh.id
        top = index.top_k(list(user.train_papers), k=10)
        assert fresh.id in top
        # Cold start grew the graph but trained no weights.
        assert model.graph.num_entities > entities_before
        for name, before in weights_before.items():
            assert np.array_equal(before, model.state_dict()[name]), name

    def test_add_paper_invalidates_cache(self, index, user):
        papers = list(user.train_papers)
        without = index.top_k(papers, k=index.num_papers)
        fresh = _clone(user.train_papers[-1], "serve-test-fresh-2")
        index.add_paper(fresh)
        with_new = index.top_k(papers, k=index.num_papers)
        assert index.cache_misses == 2  # second query recomputed
        assert fresh.id not in without
        assert fresh.id in with_new

    def test_duplicate_rejected(self, index, pool):
        with pytest.raises(ValueError, match="already in the pool"):
            index.add_paper(pool[0])

    def test_unknown_pool_papers_are_ingested_at_init(self, artifact, pool,
                                                      user):
        fresh = _clone(user.train_papers[-1], "serve-test-init-ingest")
        index = ServingIndex.from_artifact(artifact[0], papers=pool + [fresh])
        assert fresh.id in index.paper_ids
        assert fresh.id in index.top_k(list(user.train_papers), k=10)

    def test_growth_buffer_is_identical_across_resize_boundaries(
            self, artifact, pool, user):
        # The influence buffer starts at capacity 8 and doubles; growing
        # an index one paper at a time across several resize boundaries
        # must leave the exact same matrix (and ranking) as indexing the
        # same pool in one shot.
        grown = ServingIndex.from_artifact(artifact[0], papers=pool[:5])
        for paper in pool[5:37]:  # crosses the 8 -> 16 -> 32 -> 64 bounds
            grown.add_paper(paper)
        bulk = ServingIndex.from_artifact(artifact[0], papers=pool[:37])
        assert grown._influence.shape == bulk._influence.shape == (
            37, bulk._influence.shape[1])
        assert grown._influence_buffer.shape[0] == 64  # doubled, not n^2
        # Every row appended one-at-a-time survived the copies bit for
        # bit (recomputing a single paper reproduces exactly what
        # _append buffered; positions < 5 came from a batched call) ...
        for position in (5, 7, 8, 15, 16, 31, 32, 36):
            row = grown._influence_rows([grown.paper_ids[position]])[0]
            assert np.array_equal(grown._influence[position], row)
        # ... and batched vs row-at-a-time computation agrees to BLAS
        # rounding, so the two indexes rank alike.
        assert np.allclose(grown._influence, bulk._influence,
                           rtol=1e-9, atol=1e-12)
        papers = list(user.train_papers)
        assert grown.top_k(papers, k=37) == bulk.top_k(papers, k=37)


class TestDegradation:
    def test_unknown_entity_falls_back(self, index, user, obs_enabled):
        stranger = _clone(user.train_papers[-1], "never-seen-user-paper")
        result = index.top_k([stranger], k=10)
        assert len(result) == 10
        assert set(result) <= set(index.paper_ids)
        counter = obs.get_registry().get("serve.degraded",
                                         reason="unknown_entity")
        assert counter is not None and counter.value == 1

    def test_corrupt_artifact_degrades_not_raises(self, artifact, pool, user,
                                                  tmp_path, obs_enabled):
        broken = tmp_path / "broken"
        shutil.copytree(artifact[0], broken)
        manifest = json.loads((broken / "manifest.json").read_text())
        manifest["schema_version"] = 999
        (broken / "manifest.json").write_text(json.dumps(manifest))
        index = ServingIndex.from_artifact(broken, papers=pool)
        assert index.degraded
        counter = obs.get_registry().get("serve.degraded",
                                         reason="artifact_load_failed")
        assert counter is not None and counter.value == 1
        # Still answers queries, through TF-IDF.
        result = index.top_k(list(user.train_papers), k=10)
        assert len(result) == 10
        assert set(result) <= set(index.paper_ids)

    def test_degraded_ingestion_still_works(self, pool, user, tmp_path,
                                            obs_enabled):
        index = ServingIndex.from_artifact(tmp_path / "absent", papers=pool)
        assert index.degraded
        fresh = _clone(user.train_papers[-1], "degraded-fresh")
        index.add_paper(fresh)
        assert fresh.id in index.top_k(list(user.train_papers),
                                       k=index.num_papers)

    def test_loaded_index_equals_direct_index(self, artifact, pool, user):
        # from_artifact and a directly constructed index agree.
        direct = ServingIndex(load_pipeline(artifact[0]), papers=pool)
        via = ServingIndex.from_artifact(artifact[0], papers=pool)
        papers = list(user.train_papers)
        assert direct.top_k(papers, k=15) == via.top_k(papers, k=15)
