"""End-to-end tests for the ``python -m repro.serve serve`` daemon.

Real subprocesses against the session artifact: the daemon announces its
ephemeral port as one machine-readable stdout line, answers every ops
endpoint while running, drains cleanly on SIGTERM (exit 0, shutdown
postmortem written), and — when startup hits an unreplayable WAL — dies
loudly leaving a postmortem bundle that names the failure.
"""

import dataclasses
import json
import os
import pathlib
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.obs.emitters import lint_exposition
from repro.serve import WriteAheadLog

_REPO = pathlib.Path(__file__).resolve().parents[2]


def _spawn(args, extra_env=None):
    env = dict(os.environ, PYTHONPATH=str(_REPO / "src"))
    # The daemon must not inherit a CI chaos-wall fault plan — only the
    # plan a test passes explicitly may fire inside the subprocess.
    env.pop("REPRO_FAULTS", None)
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "serve", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        cwd=str(_REPO), env=env, text=True)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


@pytest.mark.slow
def test_daemon_answers_ops_plane_and_drains_cleanly(artifact, tmp_path):
    directory, _ = artifact
    pm_dir = tmp_path / "postmortems"
    proc = _spawn(["--dir", str(directory),
                   "--wal", str(tmp_path / "ingest.wal"),
                   "--postmortem-dir", str(pm_dir),
                   "--final-postmortem",
                   "--duration", "120"])  # watchdog; SIGTERM ends it sooner
    try:
        announce = json.loads(proc.stdout.readline())
        assert announce["pid"] == proc.pid
        assert announce["port"] > 0
        assert announce["artifact"] == str(directory)
        url = announce["url"]

        status, body = _get(url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "alive"

        status, body = _get(url + "/readyz")
        assert status == 200, f"daemon not ready: {body!r}"
        assert json.loads(body)["healthy"] is True

        status, body = _get(url + "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert lint_exposition(text) == []
        assert "repro_process_rss_kb" in text
        assert "repro_process_uptime_seconds" in text
        # No ingest has happened, so the WAL file does not exist yet and
        # its position gauge is legitimately absent — but the attached
        # log's lag gauge is live.
        assert "repro_serve_wal_lag 0" in text

        status, body = _get(url + "/slo")
        assert status == 200
        payload = json.loads(body)
        # The WAL-lag objective registered by attach_wal is being judged.
        assert any(s["slo"] == "serve.wal.lag" for s in payload["slos"])

        status, body = _get(url + "/debug/vars")
        assert status == 200
        payload = json.loads(body)
        assert payload["index"]["degraded"] is False
        assert payload["wal"]["path"] == str(tmp_path / "ingest.wal")
        assert payload["flightrec"]["armed"] is True
        assert payload["obs_enabled"] is True

        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode == 0, stderr
    assert "draining" in stderr
    assert "serve daemon stopped cleanly" in stderr
    bundles = sorted(pm_dir.glob("postmortem-*.json"))
    assert bundles, "no shutdown postmortem written"
    final = json.loads(bundles[-1].read_text())
    assert final["reason"] == "shutdown"
    assert final["process"]["pid"] == proc.pid


@pytest.mark.slow
def test_startup_wal_replay_failure_leaves_postmortem(artifact, serve_task,
                                                      tmp_path):
    """Acceptance path: a crash inside the WAL machinery names itself.

    A WAL holding one acknowledged-but-unreplayable ingest (every replay
    attempt fires the ``serve.wal.replay`` fault) must kill startup —
    refusing to serve a silently shrunken pool — *after* the armed
    flight recorder wrote a bundle naming the fault site.
    """
    directory, _ = artifact
    pm_dir = tmp_path / "postmortems"
    wal_path = tmp_path / "poison.wal"
    from repro.resilience import faults
    wal = WriteAheadLog(wal_path)
    paper = dataclasses.replace(serve_task.new_papers[0], id="daemon-chaos-0",
                                references=(), citation_count=0)
    with faults.inject(None):  # ambient chaos-wall plans must not fire
        wal.append(paper, 0)
    wal.close()

    proc = _spawn(["--dir", str(directory), "--wal", str(wal_path),
                   "--postmortem-dir", str(pm_dir), "--duration", "120"],
                  extra_env={"REPRO_FAULTS": "serve.wal.replay:1.0"})
    try:
        _, stderr = proc.communicate(timeout=300)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode != 0
    assert "WALError" in stderr
    bundles = sorted(pm_dir.glob("postmortem-*.json"))
    assert bundles, "startup crash left no postmortem"
    bundle = json.loads(bundles[0].read_text())
    assert bundle["reason"] == "wal_replay_failed"
    assert bundle["exception"]["type"] == "WALError"
    assert "daemon-chaos-0" in bundle["exception"]["message"]
    # The injected-fault entries captured at fire time name the site and
    # the open replay span.
    fault_entries = [e for e in bundle["entries"] if e["kind"] == "fault"]
    assert fault_entries
    assert fault_entries[0]["name"] == "serve.wal.replay"
    assert "serve.wal.replay" in fault_entries[0]["open_spans"]
