"""Flight recorder under WAL chaos: postmortems that name the crash site.

Companion to ``test_wal_chaos.py``: the same crash-and-recover loop, but
run with the process-wide flight recorder armed. The contract under test
is the postmortem story — after an injected ``serve.wal.append`` crash
the bundle on disk names the fault site, carries the open span stack *at
fire time* (``serve.add_paper`` was mid-flight when the process "died"),
and retains the recent request/event history leading up to the crash.
"""

import dataclasses
import json

import pytest

from repro import obs
from repro.errors import InjectedFault, WALError
from repro.resilience import faults
from repro.serve import ServingIndex, WriteAheadLog


def _restart(pool, wal_path):
    """Simulate a process restart: fresh degraded index, replayed log."""
    index = ServingIndex(None, papers=list(pool))
    index.attach_wal(WriteAheadLog(wal_path))
    return index


def _chaos_papers(serve_task, count):
    papers = []
    for i in range(count):
        template = serve_task.new_papers[i % len(serve_task.new_papers)]
        papers.append(dataclasses.replace(
            template, id=f"flightrec-{i}", references=(), citation_count=0))
    return papers


@pytest.fixture
def armed_recorder(tmp_path):
    rec = obs.get_flight_recorder()
    rec.clear()
    rec.arm(tmp_path / "postmortems")
    try:
        yield rec
    finally:
        rec.disarm()
        rec.clear()


def test_crash_postmortem_names_fault_site(tmp_path, serve_task,
                                           obs_enabled, armed_recorder):
    # Pin injection off at the outer scope: under the CI chaos wall an
    # ambient plan could crash the warmups/restarts; only the explicit
    # plans injected below may fire here.
    with faults.inject(None):
        _run_crash_loop(tmp_path, serve_task, armed_recorder)


def _run_crash_loop(tmp_path, serve_task, armed_recorder):
    pool = list(serve_task.new_papers)
    wal_path = tmp_path / "ingest.wal"
    papers = _chaos_papers(serve_task, 6)
    index = _restart(pool, wal_path)

    # Warmup traffic so the ring has history for the bundle to retain.
    for paper in papers[:3]:
        index.add_paper(paper)

    # Crash-and-recover loop: every round crashes the append (probability
    # 1 inside the scope), leaves the worst-case torn tail, restarts, and
    # retries cleanly — deterministic, no seeded coin flips.
    crashes = 0
    for paper in papers[3:]:
        with faults.inject("serve.wal.append:1.0"):
            with pytest.raises(InjectedFault) as exc_info:
                index.add_paper(paper)
        crashes += 1
        # What a dying process does: trip the black box on the way down.
        armed_recorder.trip("wal_chaos_crash", exc=exc_info.value)
        if wal_path.exists():
            with open(wal_path, "ab") as handle:
                handle.write(b'{"seq": 999, "torn')
        index = _restart(pool, wal_path)
        index.add_paper(paper)  # the retry, outside the fault plan

    assert crashes == 3
    # Rate limiting: the first trip dumped, the rapid-fire rest recorded
    # without flooding the disk.
    assert len(armed_recorder.dumps) >= 1
    bundle = json.loads(armed_recorder.dumps[0].read_text())

    assert bundle["reason"] == "wal_chaos_crash"
    assert bundle["exception"]["type"] == "InjectedFault"
    assert "serve.wal.append" in bundle["exception"]["message"]

    # The fault entry captured at fire time names the site AND the spans
    # that were open when the "process died" — the request was mid-ingest.
    fault_entries = [e for e in bundle["entries"] if e["kind"] == "fault"]
    assert fault_entries, "no fault entry made it into the bundle"
    assert fault_entries[0]["name"] == "serve.wal.append"
    assert "serve.add_paper" in fault_entries[0]["open_spans"]

    # Recent history survived: the warmup ingests are in the ring as
    # request summaries preceding the crash.
    requests = [e for e in bundle["entries"] if e["kind"] == "request"
                and e["name"] == "serve.add_paper"]
    assert len(requests) >= 3

    # The post-crash restarts recovered the torn tails and said so: the
    # torn-record events are in the live ring for the *next* postmortem.
    torn_events = [e for e in armed_recorder.entries()
                   if e["kind"] == "event"
                   and e["name"] == "serve.wal.torn_records"]
    assert len(torn_events) == crashes

    # Durability contract unchanged by the recorder riding along.
    final = _restart(pool, wal_path)
    ingested = [pid for pid in final._positions
                if pid.startswith("flightrec-")]
    assert sorted(ingested) == sorted(p.id for p in papers)

    # A final explicit dump (the operator's shutdown bundle) carries the
    # whole story: crash trips, torn-tail recoveries, retries.
    path = armed_recorder.dump_postmortem(tmp_path / "postmortems", "final")
    final_bundle = json.loads(path.read_text())
    kinds = {e["kind"] for e in final_bundle["entries"]}
    assert {"fault", "trip", "request", "event", "dump"} <= kinds


def test_replay_failure_trips_recorder(tmp_path, serve_task,
                                       obs_enabled, armed_recorder):
    """An acknowledged-but-unreplayable record is a page, not a shrug."""
    pool = list(serve_task.new_papers)
    wal_path = tmp_path / "ingest.wal"
    with faults.inject(None):  # ambient chaos-wall plans must not fire
        index = _restart(pool, wal_path)
        index.add_paper(_chaos_papers(serve_task, 1)[0])

    # Every replay attempt fails: the 3-attempt retry exhausts, attach
    # raises WALError, and the recorder black-boxes the failure first.
    with faults.inject("serve.wal.replay:1.0"):
        with pytest.raises(WALError, match="refusing to serve"):
            _restart(pool, wal_path)

    trips = [e for e in armed_recorder.entries() if e["kind"] == "trip"]
    assert any(e["name"] == "wal_replay_failed" for e in trips)
    assert len(armed_recorder.dumps) >= 1
    bundle = json.loads(armed_recorder.dumps[-1].read_text())
    assert bundle["reason"] == "wal_replay_failed"
    assert bundle["exception"]["type"] == "WALError"
