"""Shared serving fixtures: one fitted pipeline + one saved artifact.

Fitting NPRec is the expensive part, so it happens once per session. The
artifact fixture also captures the original recommender's rankings
*immediately after saving* — the field-sampler RNG is persisted
mid-stream, so round-trip comparisons must replay the exact same query
sequence the original saw after the save.
"""

import pytest

from repro import obs
from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.core.sem import SEMConfig
from repro.data import load_acm
from repro.experiments.protocol import split_task_by_year
from repro.serve import save_pipeline


@pytest.fixture(scope="session")
def serve_task():
    corpus = load_acm(scale=0.3, seed=None)
    return split_task_by_year(corpus, 2014, n_users=6, candidate_size=40,
                              seed=0)


@pytest.fixture(scope="session")
def fitted_recommender(serve_task):
    config = NPRecConfig(sem=SEMConfig(n_triplets=40, epochs=1),
                         epochs=2, max_positives=80, seed=3)
    return NPRecRecommender(config).fit(
        serve_task.corpus, serve_task.train_papers, serve_task.new_papers)


@pytest.fixture(scope="session")
def artifact(tmp_path_factory, serve_task, fitted_recommender):
    """(directory, baseline) where *baseline* holds the original
    recommender's post-save rankings, in query order."""
    directory = tmp_path_factory.mktemp("serve") / "pipeline"
    save_pipeline(fitted_recommender, directory, corpus=serve_task.corpus)
    user = serve_task.users[0]
    baseline = {
        "user": user,
        "head": fitted_recommender.rank(list(user.train_papers),
                                        user.candidate_set(20)),
        "full": fitted_recommender.rank(list(user.train_papers),
                                        list(user.candidates)),
    }
    return directory, baseline


@pytest.fixture
def obs_enabled():
    state = obs.configure(enabled=True, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, reset=True)
