"""Durable ingestion: WAL mechanics + crash-recovery equivalence.

The acceptance bar for the write-ahead log is *bit-identical* recovery:
a process that crashes mid-ingest and replays its log on restart must
produce the same ``top_k`` ids — and the same score bits — as a process
that never crashed. The equivalence wall here proves it for both
retrieval strategies (exact and IVF), for torn tails (a record cut
mid-byte), and across compaction, rather than assuming the replay path
and the live path stay in sync.

Operation order matters in these tests: the artifact persists the
field-sampler RNG state, so the oracle and the recovered run must issue
the *same ingestion sequence* after loading — queries happen only after
all ingests, identically in both runs.
"""

import dataclasses
import json
import shutil

import pytest

from repro import obs
from repro.errors import InjectedFault, WALError
from repro.resilience import faults
from repro.serve import ServingIndex, WriteAheadLog
from repro.serve.wal import WALRecord


def _fresh_papers(task, n, tag):
    """Never-seen papers cloned from pool templates (fresh ids)."""
    out = []
    for i in range(n):
        template = task.new_papers[i % len(task.new_papers)]
        out.append(dataclasses.replace(
            template, id=f"wal-{tag}-{i}", references=(), citation_count=0))
    return out


# ----------------------------------------------------------------------
# Log-file mechanics (no model involved)
# ----------------------------------------------------------------------
class TestWALFile:
    def test_append_recover_round_trip(self, tmp_path, serve_task):
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        papers = serve_task.new_papers[:3]
        for i, paper in enumerate(papers):
            record = wal.append(paper, pool_version=i)
            assert record.seq == i
        assert wal.lag == 3
        wal.close()

        recovered = WriteAheadLog(path).recover()
        assert [r.seq for r in recovered] == [0, 1, 2]
        assert [r.paper["id"] for r in recovered] == [p.id for p in papers]
        assert [r.pool_version for r in recovered] == [0, 1, 2]

    def test_torn_tail_mid_byte_is_dropped_and_repaired(self, tmp_path,
                                                        serve_task):
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        for i, paper in enumerate(serve_task.new_papers[:3]):
            wal.append(paper, pool_version=i)
        wal.close()

        # Crash mid-write: the last record loses its final 10 bytes.
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])

        wal2 = WriteAheadLog(path)
        recovered = wal2.recover()
        assert len(recovered) == 2
        assert wal2.torn_records == 1
        assert wal2.lag == 2
        # Repaired in place: the file now ends at the last durable byte,
        # and the next append continues the sequence from there.
        durable = raw.split(b"\n")
        assert path.read_bytes() == b"\n".join(durable[:2]) + b"\n"
        record = wal2.append(serve_task.new_papers[3], pool_version=9)
        assert record.seq == 2
        wal2.close()
        assert len(WriteAheadLog(path).recover()) == 3

    def test_corrupt_middle_record_drops_everything_after(self, tmp_path,
                                                          serve_task):
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        for i, paper in enumerate(serve_task.new_papers[:3]):
            wal.append(paper, pool_version=i)
        wal.close()

        lines = path.read_bytes().splitlines()
        # Tamper with record #1's payload without fixing its checksum.
        lines[1] = lines[1].replace(b'"seq":1', b'"seq":2', 1)
        path.write_bytes(b"\n".join(lines) + b"\n")

        wal2 = WriteAheadLog(path)
        recovered = wal2.recover()
        # Only the prefix before the corruption survives; the valid-
        # looking record *after* it postdates the corruption point and
        # is dropped too (its seq no longer lines up anyway).
        assert len(recovered) == 1
        assert wal2.torn_records == 2

    def test_checksum_covers_the_payload(self, serve_task):
        from repro.data.io import paper_to_dict
        from repro.serve.wal import _record_digest

        entry = {"seq": 0, "pool_version": 0,
                 "paper": paper_to_dict(serve_task.new_papers[0])}
        entry["sha256"] = _record_digest(entry)
        good = json.dumps(entry, sort_keys=True).encode("utf-8")
        assert WALRecord.validate(good, expected_seq=0) is not None
        assert WALRecord.validate(good, expected_seq=1) is None
        tampered = good.replace(b'"pool_version": 0', b'"pool_version": 7')
        assert WALRecord.validate(tampered, expected_seq=0) is None
        assert WALRecord.validate(b"not json", expected_seq=0) is None

    def test_truncate_empties_the_log(self, tmp_path, serve_task):
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        for paper in serve_task.new_papers[:2]:
            wal.append(paper, pool_version=0)
        assert wal.truncate() == 2
        assert wal.lag == 0
        assert path.read_bytes() == b""
        # Appends restart the sequence from zero.
        assert wal.append(serve_task.new_papers[2], pool_version=5).seq == 0
        wal.close()


# ----------------------------------------------------------------------
# Crash-recovery equivalence (the acceptance bar)
# ----------------------------------------------------------------------
class TestCrashRecovery:
    @pytest.mark.parametrize("strategy", ["exact", "ivf"])
    @pytest.mark.parametrize("crash_after", [1, 3])
    def test_replay_is_bit_identical_to_never_crashing(
            self, artifact, serve_task, tmp_path, strategy, crash_after):
        directory, _ = artifact
        fresh = _fresh_papers(serve_task, 5, f"{strategy}-{crash_after}")
        user = serve_task.users[0]
        kwargs = dict(papers=list(serve_task.new_papers), index=strategy)

        # Oracle: the process that never crashed.
        oracle = ServingIndex.from_artifact(directory, **kwargs)
        for paper in fresh:
            oracle.add_paper(paper)
        oracle.register_user(user.author_id, list(user.train_papers))
        # One cold batch query: cache hits would return ids without the
        # score vector, and the bar here is ids *and* score bits.
        want = oracle.batch_top_k([(user.author_id, 10)])[0]
        want_ids, want_bits = want.ids, want.scores.tobytes()

        # Durable run: crash after `crash_after` acknowledged ingests...
        wal_path = tmp_path / "ingest.wal"
        crashed = ServingIndex.from_artifact(
            directory, wal=WriteAheadLog(wal_path), **kwargs)
        for paper in fresh[:crash_after]:
            crashed.add_paper(paper)
        crashed.wal.close()
        del crashed  # the crash: in-memory state is gone

        # ...restart, replay, finish the ingestion sequence.
        recovered = ServingIndex.from_artifact(
            directory, wal=WriteAheadLog(wal_path), **kwargs)
        assert recovered.wal.lag == crash_after
        for paper in fresh[crash_after:]:
            recovered.add_paper(paper)
        recovered.register_user(user.author_id, list(user.train_papers))
        got = recovered.batch_top_k([(user.author_id, 10)])[0]
        assert got.ids == want_ids
        assert got.scores.tobytes() == want_bits

    def test_torn_tail_recovers_the_acknowledged_prefix(
            self, artifact, serve_task, tmp_path):
        directory, _ = artifact
        fresh = _fresh_papers(serve_task, 3, "torn")
        user = serve_task.users[1]
        kwargs = dict(papers=list(serve_task.new_papers))

        # Oracle over the first two ingests only: the torn third record
        # was never durable, so recovery must match the 2-ingest world.
        oracle = ServingIndex.from_artifact(directory, **kwargs)
        for paper in fresh[:2]:
            oracle.add_paper(paper)
        oracle.register_user(user.author_id, list(user.train_papers))
        want_ids = oracle.top_k(user.author_id, 10)

        wal_path = tmp_path / "ingest.wal"
        live = ServingIndex.from_artifact(
            directory, wal=WriteAheadLog(wal_path), **kwargs)
        for paper in fresh:
            live.add_paper(paper)
        live.wal.close()
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw[:-7])  # tear record #2 mid-byte
        del live

        recovered = ServingIndex.from_artifact(
            directory, wal=WriteAheadLog(wal_path), **kwargs)
        assert recovered.wal.lag == 2
        assert recovered.wal.torn_records == 1
        assert fresh[2].id not in recovered._positions
        recovered.register_user(user.author_id, list(user.train_papers))
        assert recovered.top_k(user.author_id, 10) == want_ids

    def test_compact_bakes_the_log_into_the_artifact(
            self, artifact, serve_task, tmp_path):
        source, _ = artifact
        directory = tmp_path / "pipeline"
        shutil.copytree(source, directory)  # compact rewrites the artifact
        fresh = _fresh_papers(serve_task, 3, "compact")
        user = serve_task.users[2]

        wal_path = tmp_path / "ingest.wal"
        live = ServingIndex.from_artifact(
            directory, papers=list(serve_task.new_papers),
            wal=WriteAheadLog(wal_path))
        for paper in fresh:
            live.add_paper(paper)
        summary = live.compact()
        assert summary["records_compacted"] == 3
        assert summary["pool_size"] == live.num_papers
        assert live.wal.lag == 0
        assert (directory / "pool" / "pool.json").exists()

        live.register_user(user.author_id, list(user.train_papers))
        want_ids = live.top_k(user.author_id, 10)

        # Restart against the compacted artifact: nothing to replay —
        # the pool snapshot plus the re-saved model carry everything.
        restarted = ServingIndex.from_artifact(
            directory, papers=list(serve_task.new_papers),
            wal=WriteAheadLog(wal_path))
        assert restarted.wal.lag == 0
        assert all(p.id in restarted._positions for p in fresh)
        restarted.register_user(user.author_id, list(user.train_papers))
        assert restarted.top_k(user.author_id, 10) == want_ids

        # The artifact it re-saved still verifies clean.
        assert restarted.health(probe=False)["checks"]["artifact"]["ok"]

    def test_replay_is_idempotent_for_known_papers(self, serve_task,
                                                   tmp_path, obs_enabled):
        # Degraded (TF-IDF only) index: replay idempotence is a pool-
        # membership property, identical on the modelled path.
        pool = list(serve_task.new_papers)
        fresh = _fresh_papers(serve_task, 2, "idem")
        wal_path = tmp_path / "ingest.wal"
        first = ServingIndex(None, papers=pool)
        first.attach_wal(WriteAheadLog(wal_path))
        for paper in fresh:
            first.add_paper(paper)

        # Restart where the pool *already* contains the logged papers
        # (e.g. after a compact whose truncate was lost): records skip.
        again = ServingIndex(None, papers=pool + fresh)
        applied = again.attach_wal(WriteAheadLog(wal_path))
        assert applied == 0
        skipped = obs.get_registry().get("serve.wal.replayed",
                                         outcome="skipped")
        assert skipped is not None and skipped.value == 2
        assert again.num_papers == len(pool) + len(fresh)


# ----------------------------------------------------------------------
# Failure semantics and the lag SLO
# ----------------------------------------------------------------------
class TestDurabilityContract:
    def test_unreplayable_record_raises_walerror(self, serve_task, tmp_path):
        pool = list(serve_task.new_papers)
        wal_path = tmp_path / "ingest.wal"
        first = ServingIndex(None, papers=pool)
        first.attach_wal(WriteAheadLog(wal_path))
        first.add_paper(_fresh_papers(serve_task, 1, "fail")[0])

        # Every replay attempt fails: an acknowledged ingest that cannot
        # be reapplied is data loss, so startup refuses loudly instead
        # of serving a silently shrunken pool.
        with faults.inject("serve.wal.replay:1.0:1"):
            fresh_index = ServingIndex(None, papers=pool)
            with pytest.raises(WALError, match="refusing to serve"):
                fresh_index.attach_wal(WriteAheadLog(wal_path))

    def test_crashed_append_leaves_no_record_and_no_mutation(
            self, serve_task, tmp_path):
        pool = list(serve_task.new_papers)
        paper = _fresh_papers(serve_task, 1, "crash")[0]
        wal_path = tmp_path / "ingest.wal"
        index = ServingIndex(None, papers=pool)
        index.attach_wal(WriteAheadLog(wal_path))
        with faults.inject("serve.wal.append:1.0:1"):
            with pytest.raises(InjectedFault):
                index.add_paper(paper)
        # Write-ahead means write *first*: the failed append left the
        # pool untouched and the log empty — nothing was acknowledged.
        assert paper.id not in index._positions
        assert index.wal.lag == 0
        assert len(WriteAheadLog(wal_path).recover()) == 0

    def test_wal_lag_slo_pages_health(self, serve_task, tmp_path,
                                      obs_enabled):
        pool = list(serve_task.new_papers)
        index = ServingIndex(None, papers=pool)
        index.attach_wal(WriteAheadLog(tmp_path / "ingest.wal"),
                         lag_bound=2)
        for paper in _fresh_papers(serve_task, 3, "lag"):
            index.add_paper(paper)
        report = index.health(probe=False)
        assert report["checks"]["wal"]["lag"] == 3
        assert "serve.wal.lag" in report["slo_breaches"]
        assert not report["healthy"]

        # Compaction is the documented remedy; health recovers with it.
        index.compact(tmp_path / "compacted")
        report = index.health(probe=False)
        assert report["checks"]["wal"]["lag"] == 0
        assert "serve.wal.lag" not in report["slo_breaches"]
