"""IVF ANN tests: determinism, recall, exactness at full probe, growth,
persistence, and the ServingIndex strategy wiring."""

import shutil

import numpy as np
import pytest

from repro import obs
from repro.errors import ArtifactError, NotFittedError
from repro.serve import (IVFIndex, ServingIndex, batch_exact_top_k,
                         exact_top_k, exact_top_k_scored, has_ann_index,
                         load_ann_index, pool_fingerprint, rank_candidates,
                         save_ann_index)

MIX = 0.7


def _clustered(n, dim=16, centers=12, seed=0):
    rng = np.random.default_rng(seed)
    mus = rng.normal(size=(centers, dim))
    rows = mus[rng.integers(0, centers, size=n)] \
        + 0.25 * rng.normal(size=(n, dim))
    interest = rows[rng.choice(n, size=4, replace=False)] \
        + 0.1 * rng.normal(size=(4, dim))
    novelty = rng.normal(size=n)
    return rows, interest, novelty


def _reference_order(interest, rows, novelty, k):
    pairwise = interest @ rows.T
    scores = MIX * pairwise.max(axis=0) + (1 - MIX) * pairwise.mean(axis=0)
    if novelty is not None:
        scores = scores + 0.3 * novelty
    return np.argsort(-scores, kind="mergesort")[:k]


class TestExactTopK:
    def test_matches_bruteforce_argsort(self):
        rows, interest, novelty = _clustered(257)
        for k in (1, 10, 50):
            got = exact_top_k(interest, rows, k, mix=MIX, novelty=novelty,
                              novelty_weight=0.3, block_size=13)
            assert np.array_equal(got, _reference_order(interest, rows,
                                                        novelty, k))

    def test_tie_heavy_pool_prefers_lower_position(self):
        # Many identical rows: the argpartition prescreen must keep
        # boundary ties, and ties must resolve toward lower positions
        # (the offline ranker's stable mergesort order).
        rng = np.random.default_rng(1)
        base = rng.normal(size=(5, 8))
        rows = base[np.repeat(np.arange(5), 40)]  # 200 rows, 5 distinct
        interest = rng.normal(size=(3, 8))
        for block in (7, 64, 512):
            got = exact_top_k(interest, rows, 90, mix=MIX, block_size=block)
            assert np.array_equal(got, _reference_order(interest, rows,
                                                        None, 90))

    def test_k_covers_pool(self):
        rows, interest, _ = _clustered(30)
        got = exact_top_k(interest, rows, 100, mix=MIX, block_size=8)
        assert got.shape[0] == 30
        assert np.array_equal(np.sort(got), np.arange(30))

    def test_invalid_k(self):
        rows, interest, _ = _clustered(10)
        with pytest.raises(ValueError, match="k must be"):
            exact_top_k(interest, rows, 0, mix=MIX)


class TestBatchExactTopK:
    def test_bit_identical_to_per_query_calls(self):
        # The batched ranker must not just agree on order: positions AND
        # float score bits must match the lone-query path, for every
        # query in the batch, at awkward block boundaries.
        rows, _, novelty = _clustered(257)
        rng = np.random.default_rng(7)
        interests = [rng.normal(size=(m, rows.shape[1]))
                     for m in (1, 3, 4, 2, 5)]
        ks = [1, 10, 50, 257, 300]
        batched = batch_exact_top_k(interests, rows, ks, mix=MIX,
                                    novelty=novelty, novelty_weight=0.3,
                                    block_size=13)
        for interest, k, (positions, scores) in zip(interests, ks, batched):
            solo_pos, solo_scores = exact_top_k_scored(
                interest, rows, k, mix=MIX, novelty=novelty,
                novelty_weight=0.3, block_size=13)
            assert np.array_equal(positions, solo_pos)
            assert np.array_equal(scores, solo_scores)  # exact bits

    def test_block_size_never_changes_the_answer(self):
        rows, _, _ = _clustered(100)
        rng = np.random.default_rng(11)
        interests = [rng.normal(size=(2, rows.shape[1])) for _ in range(3)]
        reference = batch_exact_top_k(interests, rows, [20, 20, 20],
                                      mix=MIX, block_size=100)
        for block in (3, 17, 64):
            got = batch_exact_top_k(interests, rows, [20, 20, 20],
                                    mix=MIX, block_size=block)
            for (ref_pos, _), (pos, _) in zip(reference, got):
                assert np.array_equal(ref_pos, pos)

    def test_empty_batch_and_length_mismatch(self):
        rows, _, _ = _clustered(10)
        assert batch_exact_top_k([], rows, [], mix=MIX) == []
        with pytest.raises(ValueError, match="interest matrices but"):
            batch_exact_top_k([rows[:2]], rows, [3, 4], mix=MIX)


class TestRankCandidates:
    def test_matches_search_composition(self):
        # search() == gather() + rank_candidates() — the decomposition
        # batch_top_k relies on to score IVF probes outside the lock.
        rows, interest, _ = _clustered(300)
        index = IVFIndex(n_lists=8, seed=0).fit(rows)
        for nprobe in (2, 5):
            direct, _ = index.search(interest, rows, 12, nprobe=nprobe,
                                     mix=MIX)
            candidates, _ = index.gather(interest, MIX, nprobe)
            composed, _ = rank_candidates(interest, rows, candidates, 12,
                                          mix=MIX)
            assert np.array_equal(direct, composed)

    def test_candidate_ties_resolve_to_lower_position(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(4, 8))
        rows = base[np.repeat(np.arange(4), 25)]  # blocks of identical rows
        interest = rng.normal(size=(2, 8))
        candidates = np.arange(0, 100, 2)  # even positions only
        got, _ = rank_candidates(interest, rows, candidates, 30, mix=MIX)
        scores = MIX * (interest @ rows.T).max(axis=0) \
            + (1 - MIX) * (interest @ rows.T).mean(axis=0)
        expect = candidates[np.lexsort((candidates,
                                        -scores[candidates]))][:30]
        assert np.array_equal(got, expect)


class TestKMeans:
    def test_fit_is_deterministic(self):
        rows, _, _ = _clustered(300)
        a = IVFIndex(n_lists=12, seed=5).fit(rows)
        b = IVFIndex(n_lists=12, seed=5).fit(rows)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignments, b.assignments)

    def test_assignments_partition_the_pool(self):
        rows, _, _ = _clustered(211)
        ivf = IVFIndex(n_lists=9).fit(rows)
        sizes = ivf.list_sizes()
        assert sizes.sum() == 211
        assert (sizes > 0).all()  # empty-cluster stealing leaves none empty
        members = np.sort(np.concatenate(
            [np.asarray(m) for m in ivf._lists]))
        assert np.array_equal(members, np.arange(211))

    def test_n_lists_capped_at_rows(self):
        rows, _, _ = _clustered(5)
        ivf = IVFIndex(n_lists=64).fit(rows)
        assert ivf.num_lists == 5

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="n_lists"):
            IVFIndex(n_lists=0)
        with pytest.raises(ValueError, match="recluster_factor"):
            IVFIndex(n_lists=4, recluster_factor=1.0)
        with pytest.raises(ValueError, match="non-empty"):
            IVFIndex(n_lists=4).fit(np.empty((0, 3)))


class TestSearch:
    def test_full_probe_equals_exact_ranking(self):
        rows, interest, novelty = _clustered(400)
        ivf = IVFIndex(n_lists=16).fit(rows)
        for block in (11, 512):
            exact = exact_top_k(interest, rows, 25, mix=MIX, novelty=novelty,
                                novelty_weight=0.3, block_size=block)
            got, stats = ivf.search(interest, rows, 25, mix=MIX,
                                    novelty=novelty, novelty_weight=0.3,
                                    nprobe=ivf.num_lists, block_size=block)
            assert stats.candidates_scanned == 400
            assert stats.scan_fraction == 1.0
            assert np.array_equal(got, exact)

    def test_recall_is_monotone_in_nprobe(self):
        rows, interest, novelty = _clustered(600)
        ivf = IVFIndex(n_lists=24).fit(rows)
        exact = set(exact_top_k(interest, rows, 10, mix=MIX, novelty=novelty,
                                novelty_weight=0.3).tolist())
        previous = -1.0
        for nprobe in (1, 2, 4, 8, 16, 24):
            got, stats = ivf.search(interest, rows, 10, mix=MIX,
                                    novelty=novelty, novelty_weight=0.3,
                                    nprobe=nprobe)
            recall = len(set(got.tolist()) & exact) / 10
            assert recall >= previous  # superset candidates, monotone recall
            previous = recall
            assert stats.lists_probed == nprobe
        assert previous == 1.0  # all lists probed == exact top-k

    def test_nprobe_is_clamped(self):
        rows, interest, _ = _clustered(100)
        ivf = IVFIndex(n_lists=8).fit(rows)
        low, _ = ivf.search(interest, rows, 5, mix=MIX, nprobe=0)
        high, stats = ivf.search(interest, rows, 5, mix=MIX, nprobe=10_000)
        assert 1 <= low.shape[0] <= 5
        assert stats.candidates_scanned == 100  # clamped to every list

    def test_search_before_fit(self):
        rows, interest, _ = _clustered(20)
        with pytest.raises(ValueError, match="before fit"):
            IVFIndex(n_lists=4).search(interest, rows, 5, mix=MIX)
        with pytest.raises(ValueError, match="before fit"):
            IVFIndex(n_lists=4).add(rows[0])


class TestIncrementalGrowth:
    def test_add_assigns_appended_positions(self):
        rows, _, _ = _clustered(120)
        ivf = IVFIndex(n_lists=8).fit(rows[:100])
        for i in range(100, 120):
            ivf.add(rows[i])
        assert ivf.num_rows == 120
        members = np.sort(np.concatenate(
            [np.asarray(m) for m in ivf._lists]))
        assert np.array_equal(members, np.arange(120))

    def test_lopsided_growth_trips_recluster(self):
        rows, _, _ = _clustered(200, centers=8, seed=2)
        ivf = IVFIndex(n_lists=8, recluster_factor=2.0).fit(rows)
        target = ivf.centroids[0]  # pile clones onto one list
        fired = False
        for _ in range(400):
            if ivf.add(target + 1e-3):
                fired = True
                break
        assert fired, "imbalance trigger never fired"


class TestPersistence:
    def test_array_round_trip(self):
        rows, interest, novelty = _clustered(150)
        ivf = IVFIndex(n_lists=10, seed=3, max_iter=9,
                       recluster_factor=3.0).fit(rows)
        clone = IVFIndex.from_arrays(ivf.to_arrays(), ivf.meta())
        assert clone.seed == 3 and clone.recluster_factor == 3.0
        assert np.array_equal(clone.assignments, ivf.assignments)
        a, _ = ivf.search(interest, rows, 12, mix=MIX, novelty=novelty,
                          novelty_weight=0.3, nprobe=4)
        b, _ = clone.search(interest, rows, 12, mix=MIX, novelty=novelty,
                            novelty_weight=0.3, nprobe=4)
        assert np.array_equal(a, b)

    def test_from_arrays_validates_assignments(self):
        rows, _, _ = _clustered(50)
        ivf = IVFIndex(n_lists=5).fit(rows)
        arrays = ivf.to_arrays()
        arrays["assignments"] = arrays["assignments"].copy()
        arrays["assignments"][0] = 99
        with pytest.raises(ValueError, match="nonexistent lists"):
            IVFIndex.from_arrays(arrays, ivf.meta())

    def test_unfitted_cannot_persist(self):
        with pytest.raises(ValueError, match="unfitted"):
            IVFIndex(n_lists=4).to_arrays()


# ----------------------------------------------------------------------
# ServingIndex wiring
# ----------------------------------------------------------------------
@pytest.fixture
def pool(serve_task):
    return list(serve_task.new_papers)


@pytest.fixture
def user(serve_task):
    return serve_task.users[0]


def _clone(paper, new_id):
    import dataclasses
    return dataclasses.replace(paper, id=new_id, references=(),
                               citation_count=0)


class TestServingStrategy:
    def test_full_probe_matches_exact_index(self, artifact, pool, serve_task):
        exact = ServingIndex.from_artifact(artifact[0], papers=pool)
        ivf = ServingIndex.from_artifact(artifact[0], papers=pool,
                                         index="ivf", nprobe=10_000)
        for user in serve_task.users[:3]:
            papers = list(user.train_papers)
            for k in (1, 5, 20):
                assert ivf.top_k(papers, k=k) == exact.top_k(papers, k=k)

    def test_ivf_results_stay_in_pool(self, artifact, pool, user):
        index = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           index="ivf", nprobe=2, n_lists=8)
        top = index.top_k(list(user.train_papers), k=10)
        assert len(top) == len(set(top)) <= 10
        assert set(top) <= set(index.paper_ids)
        assert index.ann is not None and index.ann.num_lists == 8

    def test_probe_counters_recorded(self, artifact, pool, user, obs_enabled):
        index = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           index="ivf", nprobe=3, n_lists=9)
        index.top_k(list(user.train_papers), k=5)
        registry = obs.get_registry()
        probed = registry.get("serve.ann.lists_probed")
        scanned = registry.get("serve.ann.candidates_scanned")
        assert probed is not None and probed.value == 3
        assert scanned is not None and 0 < scanned.value <= len(pool)

    def test_invalid_strategy_arguments(self, artifact, pool):
        with pytest.raises(ValueError, match="index must be"):
            ServingIndex.from_artifact(artifact[0], papers=pool,
                                       index="annoy")
        with pytest.raises(ValueError, match="nprobe"):
            ServingIndex.from_artifact(artifact[0], papers=pool,
                                       index="ivf", nprobe=0)
        with pytest.raises(ValueError, match="n_lists"):
            ServingIndex.from_artifact(artifact[0], papers=pool,
                                       index="ivf", n_lists=0)

    def test_set_nprobe_revalidates_and_drops_cache(self, artifact, pool,
                                                    user):
        index = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           index="ivf", nprobe=1)
        papers = list(user.train_papers)
        index.top_k(papers, k=5)
        index.set_nprobe(10_000)  # clamped at query time == exact
        index.top_k(papers, k=5)
        assert index.cache_misses == 2
        with pytest.raises(ValueError, match="nprobe"):
            index.set_nprobe(0)

    def test_ingested_paper_joins_the_quantizer(self, artifact, pool, user):
        index = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           index="ivf", nprobe=10_000)
        papers = list(user.train_papers)
        index.top_k(papers, k=5)  # lazy-build the quantizer
        rows_before = index.ann.num_rows
        fresh = _clone(user.train_papers[-1], "ann-test-fresh")
        index.add_paper(fresh)
        assert index.ann.num_rows == rows_before + 1 == index.num_papers
        # Full probe keeps the oracle guarantee even after growth.
        assert fresh.id in index.top_k(papers, k=index.num_papers)

    def test_recluster_wiring(self, artifact, pool, user, obs_enabled,
                              monkeypatch):
        index = ServingIndex.from_artifact(artifact[0], papers=pool,
                                           index="ivf", n_lists=4)
        index.top_k(list(user.train_papers), k=5)
        monkeypatch.setattr(index.ann, "add", lambda row: True)
        index.add_paper(_clone(user.train_papers[-1], "ann-recluster"))
        counter = obs.get_registry().get("serve.ann.recluster")
        assert counter is not None and counter.value == 1
        # The refit covers the grown pool (fit replaced the patched add's
        # stale view).
        assert index.ann.num_rows == index.num_papers


class TestServingEdges:
    def test_degraded_ivf_serves_fallback(self, pool, user, tmp_path,
                                          obs_enabled):
        index = ServingIndex.from_artifact(tmp_path / "absent", papers=pool,
                                           index="ivf")
        assert index.degraded
        result = index.top_k(list(user.train_papers), k=10)
        assert len(result) == 10
        with pytest.raises(NotFittedError, match="cannot cluster"):
            index.build_ann_index()

    def test_empty_pool(self, artifact, user):
        index = ServingIndex.from_artifact(artifact[0], papers=[],
                                           index="ivf")
        assert index.top_k(list(user.train_papers), k=5) == []
        with pytest.raises(NotFittedError, match="cannot cluster"):
            index.build_ann_index()


class TestArtifactPersistence:
    @pytest.fixture
    def warm_dir(self, artifact, pool, tmp_path):
        """A private artifact copy with a persisted quantizer."""
        directory = tmp_path / "warm"
        shutil.copytree(artifact[0], directory)
        index = ServingIndex.from_artifact(directory, papers=pool,
                                           index="ivf")
        save_ann_index(directory, index.build_ann_index(), index.paper_ids)
        return directory

    def test_round_trip_and_manifest_coverage(self, warm_dir, pool):
        assert has_ann_index(warm_dir)
        ivf, meta = load_ann_index(warm_dir)
        assert ivf.fitted and ivf.num_rows == len(pool)
        assert meta["pool_sha256"] == pool_fingerprint([p.id for p in pool])
        # The refreshed manifest sha256-covers the quantizer files, so a
        # reloaded index passes its artifact health check.
        index = ServingIndex.from_artifact(warm_dir, papers=pool,
                                           index="ivf")
        assert index.health(probe=False)["checks"]["artifact"]["ok"]

    def test_adopted_without_refit(self, warm_dir, pool, user, obs_enabled):
        index = ServingIndex.from_artifact(warm_dir, papers=pool,
                                           index="ivf")
        adopted = obs.get_registry().get("serve.ann.artifact",
                                         outcome="adopted")
        assert adopted is not None and adopted.value == 1
        assert index.ann is not None and index.ann.fitted  # no lazy refit due
        assert len(index.top_k(list(user.train_papers), k=5)) == 5

    def test_stale_fingerprint_is_not_adopted(self, warm_dir, pool, user,
                                              obs_enabled):
        grown = pool + [_clone(user.train_papers[-1], "ann-stale-extra")]
        index = ServingIndex.from_artifact(warm_dir, papers=grown,
                                           index="ivf")
        stale = obs.get_registry().get("serve.ann.artifact", outcome="stale")
        assert stale is not None and stale.value == 1
        assert index.ann is None  # refits lazily on first query

    def test_absent_quantizer_counted(self, artifact, pool, obs_enabled):
        ServingIndex.from_artifact(artifact[0], papers=pool, index="ivf")
        absent = obs.get_registry().get("serve.ann.artifact",
                                        outcome="absent")
        assert absent is not None and absent.value == 1

    def test_exact_mode_ignores_quantizer(self, warm_dir, pool, user):
        index = ServingIndex.from_artifact(warm_dir, papers=pool)
        assert index.ann is None
        assert len(index.top_k(list(user.train_papers), k=5)) == 5

    def test_save_requires_fitted_index_and_artifact(self, artifact, pool,
                                                     tmp_path):
        with pytest.raises(NotFittedError, match="fitted"):
            save_ann_index(artifact[0], IVFIndex(n_lists=4),
                           [p.id for p in pool])
        rows = np.random.default_rng(0).normal(size=(10, 4))
        fitted = IVFIndex(n_lists=2).fit(rows)
        with pytest.raises(ArtifactError, match="pool has"):
            save_ann_index(artifact[0], fitted, [p.id for p in pool])
        with pytest.raises(ArtifactError, match="save_pipeline"):
            save_ann_index(tmp_path / "nowhere", fitted,
                           [f"p{i}" for i in range(10)])

    def test_corrupt_quantizer_raises(self, warm_dir):
        (warm_dir / "ann" / "ivf.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="deserialised"):
            load_ann_index(warm_dir)

    def test_missing_quantizer_raises(self, artifact):
        assert not has_ann_index(artifact[0])
        with pytest.raises(ArtifactError, match="no ANN quantizer"):
            load_ann_index(artifact[0])
