"""Concurrency test wall for the micro-batching scheduler.

The scheduler's contract is *bit-identical equivalence*: every response
produced by :class:`BatchScheduler` — whatever the batch it rode in,
whatever the thread interleaving — must match a serial
:meth:`ServingIndex.top_k` oracle exactly, ids **and** scores, across
the exact and IVF strategies, with cache hits, cache misses, and
degraded-user requests mixed into the same batches. The stress tests
then race ``add_paper`` and ``set_nprobe`` against batched queries and
replay every response against a fresh replica index driven to the same
pool version, proving no request was dropped, torn, or answered from a
state that never existed.

Determinism note: the model samples receptive fields lazily on first
touch, from one shared RNG. The serial-oracle pass runs *first* (fixed
sampling order), the cache is invalidated, and only then does the
concurrent run start — recomputation of already-sampled state is pure,
so batched answers must land on identical bits. The stress tests only
query registered users (profiles precomputed at registration) and
fully-unknown probes (degraded, no sampling), so ingest commits remain
the only field draws and happen in mutator order under the lock.
"""

import dataclasses
import random
import threading
from collections import defaultdict

import numpy as np
import pytest

from repro.errors import GraphError
from repro.resilience import faults
from repro.serve import BatchScheduler, ServingIndex
from repro.serve.ann import exact_top_k_scored, rank_candidates
from repro.serve.scheduler import SheddingGovernor


def _clone(paper, new_id):
    return dataclasses.replace(paper, id=new_id, references=(),
                               citation_count=0)


def _build_index(artifact, pool, kind, **kwargs):
    extra = {"index": "ivf", "nprobe": 4} if kind == "ivf" else {}
    extra.update(kwargs)
    return ServingIndex.from_artifact(artifact[0], papers=pool, **extra)


def _register(index, serve_task, n=4):
    users = serve_task.users[:n]
    for user in users:
        index.register_user(user.author_id, list(user.train_papers))
    return [user.author_id for user in users]


def _oracle(index, user, k):
    """Serial (ids, scores) for one request.

    Ids come from the public serial path; scores are recomputed through
    the scored rankers at exactly the serial call shapes. Degraded
    requests (unknown entities) return ``(ids, None)`` — the fallback
    has no model scores to compare.
    """
    ids = index.top_k(user, k)
    if isinstance(user, str):
        papers, profile = index._profiles[user]
    else:
        papers, profile = list(user), None
    if profile is not None:
        interest = profile
    else:
        try:
            interest = index._recommender.model.interest_vectors(
                [p.id for p in papers]).data
        except GraphError:
            return ids, None
    cfg = index._recommender.config
    novelty = (index._novelty_scores() if cfg.influence_weight > 0 else None)
    if index.index_kind == "ivf":
        ann = index._ensure_ann()
        candidates, _ = ann.gather(interest, cfg.max_pool_mix, index.nprobe)
        positions, scores = rank_candidates(
            interest, index._influence, candidates, k, mix=cfg.max_pool_mix,
            novelty=novelty, novelty_weight=cfg.influence_weight,
            block_size=index.block_size)
    else:
        positions, scores = exact_top_k_scored(
            interest, index._influence, k, mix=cfg.max_pool_mix,
            novelty=novelty, novelty_weight=cfg.influence_weight,
            block_size=index.block_size)
    assert ids == [index.paper_ids[int(p)] for p in positions]
    return ids, scores


class TestBatchedEqualsSerial:
    """Satellite 1: seeded multi-thread equivalence, exact and IVF."""

    @pytest.mark.parametrize("kind,n_threads", [
        ("exact", 2), ("exact", 5), ("exact", 16),
        ("ivf", 3), ("ivf", 8),
    ])
    def test_every_response_is_bit_identical(self, artifact, serve_task,
                                             kind, n_threads):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, kind)
        user_ids = _register(index, serve_task)
        degraded_user = [_clone(pool[0], "scheduler-unknown-paper")]

        rng = random.Random(1234 + 17 * n_threads + (kind == "ivf"))
        ks = (1, 3, 10, 17)
        requests = []
        for _ in range(60):
            if rng.random() < 0.85:
                requests.append((rng.choice(user_ids), rng.choice(ks)))
            else:
                # Unknown-entity request: degrades to TF-IDF inside the
                # same batches as modelled requests.
                requests.append(("degraded", rng.choice((3, 10))))

        def target(name):
            return degraded_user if name == "degraded" else name

        oracle = {}
        for name, k in requests:
            if (name, k) not in oracle:
                oracle[(name, k)] = _oracle(index, target(name), k)
        index.invalidate()

        results = [None] * len(requests)
        failures = []
        # A governor that cannot trip: a shed answer is deliberately a
        # different (fallback) ranking, and this test asserts exact
        # model-path equivalence on every response.
        scheduler = BatchScheduler(index, max_batch=6, max_wait_ms=20.0,
                                   queue_depth=256,
                                   governor=SheddingGovernor(threshold=100.0))

        def worker(tid):
            try:
                for i in range(tid, len(requests), n_threads):
                    name, k = requests[i]
                    results[i] = scheduler.submit(
                        target(name), k).result(timeout=60)
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "worker deadlocked"
        scheduler.close()
        assert failures == []

        outcomes = set()
        for i, (name, k) in enumerate(requests):
            ids, scores = oracle[(name, k)]
            ticket = results[i]
            assert ticket is not None, f"request {i} dropped"
            assert not ticket.shed
            assert ticket.ids == ids, (i, name, k)
            outcomes.add(ticket.cache)
            if ticket.scores is not None and scores is not None:
                # Bit-identical, not approximately equal.
                assert np.array_equal(np.asarray(ticket.scores), scores)
        # Duplicated (user, k) pairs guarantee both paths interleaved.
        assert "miss" in outcomes and "hit" in outcomes
        stats = scheduler.stats()
        assert stats["submitted"] == len(requests)
        assert stats["shed"] == 0
        assert stats["queue_depth"] == 0

    def test_batch_of_duplicates_dedups_but_answers_all(self, artifact,
                                                        serve_task):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, "exact")
        user_ids = _register(index, serve_task, n=2)
        expected, _ = _oracle(index, user_ids[0], 5)
        index.invalidate()
        misses_before = index.cache_misses
        out = index.batch_top_k([(user_ids[0], 5)] * 4)
        assert [r.ids for r in out] == [expected] * 4
        # One computation served all four co-riders.
        assert index.cache_misses == misses_before + 4
        assert all(r.cache == "miss" for r in out)

    def test_per_request_errors_do_not_fail_the_batch(self, artifact,
                                                      serve_task):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, "exact")
        user_ids = _register(index, serve_task, n=2)
        expected, _ = _oracle(index, user_ids[0], 5)
        index.invalidate()
        out = index.batch_top_k([
            (user_ids[0], 5),
            ("nobody", 5),
            (user_ids[0], 0),
        ])
        assert out[0].ids == expected
        assert isinstance(out[1].error, KeyError)
        assert isinstance(out[2].error, ValueError)

        scheduler = BatchScheduler(index, max_batch=4, max_wait_ms=1.0)
        with pytest.raises(KeyError, match="not registered"):
            scheduler.submit("nobody", 5).result(timeout=30)
        assert scheduler.query(user_ids[0], 5) == expected
        scheduler.close()


class TestIngestRaces:
    """Satellite 2: queries racing ingestion, replayed by pool version."""

    @pytest.mark.parametrize("kind", ["exact", "ivf"])
    def test_no_torn_reads_under_concurrent_ingest(self, artifact,
                                                   serve_task, kind):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, kind)
        user_ids = _register(index, serve_task)
        probe = [_clone(pool[1], "stress-unknown-probe")]
        fresh = [_clone(pool[i % len(pool)], f"stress-ingest-{i}")
                 for i in range(5)]
        # No shedding in this test: a shed answer is a *different*
        # (fallback) ranking and would fail the replica comparison.
        governor = SheddingGovernor(threshold=100.0)
        scheduler = BatchScheduler(index, max_batch=5, max_wait_ms=10.0,
                                   queue_depth=512, governor=governor)

        rng = random.Random(99)
        plans = [[("query", rng.choice(user_ids), rng.choice((5, 10)))
                  if rng.random() < 0.8 else ("probe", None, 5)
                  for _ in range(24)]
                 for _ in range(3)]
        records = []
        record_lock = threading.Lock()
        failures = []

        def querier(plan):
            try:
                for kind_, user, k in plan:
                    who = probe if kind_ == "probe" else user
                    ticket = scheduler.submit(who, k).result(timeout=60)
                    with record_lock:
                        records.append((ticket.pool_version, kind_, user, k,
                                        list(ticket.ids)))
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        mutations = []  # committed mutator ops, in order

        def mutator():
            try:
                for i, paper in enumerate(fresh):
                    index.add_paper(paper)
                    mutations.append(("ingest", paper))
                    if kind == "ivf" and i == 2:
                        index.set_nprobe(6)  # retune mid-flight
                        mutations.append(("nprobe", 6))
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        threads = [threading.Thread(target=querier, args=(p,))
                   for p in plans] + [threading.Thread(target=mutator)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not any(t.is_alive() for t in threads), "deadlock"
        scheduler.close()
        assert failures == []
        assert scheduler.stats()["shed"] == 0
        assert len(records) == sum(len(p) for p in plans)  # nothing dropped

        # Replay: drive a replica through the same committed mutation
        # sequence; every response must match the replica at exactly the
        # pool version it was stamped with — pre- or post-ingest state,
        # never a torn mix of the two.
        replica = _build_index(artifact, pool, kind)
        _register(replica, serve_task)
        by_version = defaultdict(list)
        for version, kind_, user, k, ids in records:
            by_version[version].append((kind_, user, k, ids))
        versions_seen = set(by_version)

        def check_current():
            for kind_, user, k, ids in by_version.pop(
                    replica.pool_version, ()):
                who = probe if kind_ == "probe" else user
                assert replica.top_k(who, k) == ids, \
                    (replica.pool_version, kind_, user, k)

        check_current()
        for op, payload in mutations:
            if op == "ingest":
                replica.add_paper(payload)
            else:
                replica.set_nprobe(payload)
            check_current()
        assert not by_version, \
            f"responses stamped with unreachable versions: {set(by_version)}"
        assert versions_seen - {replica.pool_version}, \
            "every response saw the final pool: the race never interleaved"

    def test_duplicate_concurrent_ingest_commits_exactly_once(self, artifact,
                                                              serve_task):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, "exact")
        paper = _clone(pool[0], "dup-ingest-race")
        outcomes = []
        barrier = threading.Barrier(2)

        def ingest():
            barrier.wait()
            try:
                outcomes.append(("ok", index.add_paper(paper)))
            except ValueError as exc:
                outcomes.append(("dup", str(exc)))

        threads = [threading.Thread(target=ingest) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert sorted(o[0] for o in outcomes) == ["dup", "ok"]
        assert index.paper_ids.count(paper.id) == 1


class TestFaultInjection:
    """Fault-injected batches degrade per-request and never cache."""

    def test_query_fault_degrades_batch_and_is_not_cached(self, artifact,
                                                          serve_task):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, "exact")
        user_ids = _register(index, serve_task, n=2)
        healthy, _ = _oracle(index, user_ids[0], 5)
        index.invalidate()
        with faults.inject("serve.query:1.0"):
            degraded = index.top_k(user_ids[0], 5)  # serial fault oracle
            index.invalidate()
            out = index.batch_top_k([(user_ids[0], 5)])
        assert out[0].ids == degraded
        assert out[0].degraded_reason == "query_fault"
        # Not cached: the next healthy batch recomputes the model answer.
        out = index.batch_top_k([(user_ids[0], 5)])
        assert out[0].cache == "miss"
        assert out[0].ids == healthy

    def test_scheduler_survives_faulted_flushes(self, artifact, serve_task):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, "exact")
        user_ids = _register(index, serve_task, n=2)
        healthy, _ = _oracle(index, user_ids[1], 5)
        index.invalidate()
        scheduler = BatchScheduler(index, max_batch=4, max_wait_ms=1.0)
        with faults.inject("serve.query:1.0"):
            ticket = scheduler.submit(user_ids[1], 5).result(timeout=30)
            assert ticket.degraded_reason == "query_fault"
        # Fault cleared: same scheduler, healthy model answer again.
        assert scheduler.query(user_ids[1], 5) == healthy
        scheduler.close()


class TestHealthSaturation:
    """Satellite 4: health() reports scheduler state and saturation."""

    def test_health_reports_and_flags_saturated_queue(self, artifact,
                                                      serve_task):
        pool = list(serve_task.new_papers)
        index = _build_index(artifact, pool, "exact")
        user_ids = _register(index, serve_task, n=2)
        scheduler = BatchScheduler(index, max_batch=8, max_wait_ms=1000.0,
                                   queue_depth=2, start=False)
        baseline = index.health(probe=False)
        check = baseline["checks"]["scheduler"]
        assert check["ok"] and not check["saturated"]
        assert check["queue_capacity"] == 2
        assert baseline["healthy"]

        scheduler.submit(user_ids[0], 5)
        scheduler.submit(user_ids[0], 7)
        saturated = index.health(probe=False)
        check = saturated["checks"]["scheduler"]
        assert check["saturated"] and not check["ok"]
        assert check["queue_depth"] == 2
        assert not saturated["healthy"]

        scheduler.close()  # drains the queue and detaches
        assert index.scheduler is None
        assert "scheduler" not in index.health(probe=False)["checks"]
