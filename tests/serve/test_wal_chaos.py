"""Crash-and-recover chaos loop for the ingestion WAL.

Runs as its own CI step (see ``.github/workflows/ci.yml``): the
``serve.wal.append`` fault site is the canonical simulated crash and is
deliberately *not* retried, so it lives outside the shared chaos wall —
an append-site plan mixed into unrelated suites would fail honest
ingestion tests at random.

When the active fault plan targets ``serve.wal.append`` (the CI
crash-and-recover step exports ``serve.wal.append:0.05:17``) that plan
drives the crashes; under any other plan — including the shared chaos
wall, whose sites never touch this path — the same pinned plan is
injected here instead, so the test crashes (and means the same thing)
everywhere it runs.

The loop is the durability contract end to end: every *acknowledged*
ingest must survive any number of crashes and restarts; every *crashed*
ingest must vanish without a trace (no record, no pool entry, no ack).
The client retries crashed ingests exactly like a real writer would.
"""

import contextlib
import dataclasses

from repro.errors import InjectedFault
from repro.serve import ServingIndex, WriteAheadLog

_PLAN = "serve.wal.append:0.05:17"


def _restart(pool, wal_path):
    """Simulate a process restart: fresh index, replayed log."""
    index = ServingIndex(None, papers=list(pool))
    index.attach_wal(WriteAheadLog(wal_path))
    return index


def test_crash_and_recover_loop(tmp_path, serve_task):
    from repro.resilience import faults

    pool = list(serve_task.new_papers)
    wal_path = tmp_path / "ingest.wal"
    papers = []
    for i in range(40):
        template = serve_task.new_papers[i % len(serve_task.new_papers)]
        papers.append(dataclasses.replace(
            template, id=f"chaos-{i}", references=(), citation_count=0))

    active = faults.active()
    append_rule = active.rules.get("serve.wal.append") if active else None
    with contextlib.ExitStack() as stack:
        if append_rule is None or append_rule.probability <= 0:
            stack.enter_context(faults.inject(_PLAN))
        # Degraded (TF-IDF only) index: the WAL/recovery machinery under
        # test is identical to the modelled path, and 40 ingests with
        # restarts stay in milliseconds.
        index = _restart(pool, wal_path)
        acked = []
        crashes = 0
        for paper in papers:
            while True:
                try:
                    index.add_paper(paper)
                except InjectedFault:
                    # The crash: nothing was logged, nothing applied,
                    # nothing acknowledged. A real dying process can
                    # also leave a half-written record behind — emulate
                    # the worst case, then restart and replay.
                    crashes += 1
                    if wal_path.exists():
                        with open(wal_path, "ab") as handle:
                            handle.write(b'{"seq": 999, "torn')
                    index = _restart(pool, wal_path)
                    assert len(index._positions) == len(pool) + len(acked)
                else:
                    acked.append(paper.id)
                    break

    # Final restart outside any fault plan: the recovered pool is
    # exactly the base pool plus every acknowledged ingest — no more,
    # no less — and the log replays clean.
    final = _restart(pool, wal_path)
    assert final.wal.lag == len(acked)
    assert sorted(pid for pid in final._positions
                  if pid.startswith("chaos-")) == sorted(acked)
    assert set(acked) == {p.id for p in papers}
    user = serve_task.users[0]
    final.register_user(user.author_id, list(user.train_papers))
    assert len(final.top_k(user.author_id, 10)) == 10
    # With rate 0.05 over 40+ draws the seeded plan crashes at least
    # once in CI (seed 17 is pinned there); locally the injected plan
    # matches, so the loop provably exercised recovery.
    assert crashes >= 1
