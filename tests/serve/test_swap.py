"""Hot-swap: canary-gated cutover, rollback, and zero failed requests.

The contract under test: a successful swap transplants the candidate's
state into the live index *in place* (every caller keeps its reference);
a failed canary or load leaves the incumbent untouched; and a swap under
concurrent scheduler traffic completes with zero failed in-flight
requests — parked submits answer against whichever index wins.
"""

import dataclasses
import threading

import pytest

from repro import obs
from repro.resilience import faults
from repro.serve import (BatchScheduler, HotSwapper, ServingIndex,
                         WriteAheadLog, save_pipeline)


@pytest.fixture()
def candidate_dir(tmp_path, serve_task, fitted_recommender):
    """A second (retrained-equivalent) artifact to swap to."""
    directory = tmp_path / "candidate"
    save_pipeline(fitted_recommender, directory, corpus=serve_task.corpus)
    return directory


def _live(artifact, serve_task, n_users=3, **kwargs):
    directory, _ = artifact
    index = ServingIndex.from_artifact(
        directory, papers=list(serve_task.new_papers), **kwargs)
    for user in serve_task.users[:n_users]:
        index.register_user(user.author_id, list(user.train_papers))
    return index


class TestSwapOutcomes:
    def test_successful_swap_adopts_in_place(self, artifact, serve_task,
                                             candidate_dir, tmp_path,
                                             obs_enabled):
        live = _live(artifact, serve_task)
        live.attach_wal(WriteAheadLog(tmp_path / "ingest.wal"))
        template = serve_task.users[0].train_papers[-1]
        ingested = dataclasses.replace(template, id="swap-ingested",
                                       references=(), citation_count=0)
        live.add_paper(ingested)
        old_model = live._recommender
        wal = live.wal

        report = HotSwapper(live).swap(candidate_dir)
        assert report.swapped, report.error
        assert report.overlaps and report.mean_overlap >= 0.6
        # In-place adoption: same object, new internals, new artifact.
        assert live._artifact_dir == candidate_dir
        assert live._recommender is not old_model
        # The post-artifact ingest survived: it rode the pool snapshot
        # into the candidate.
        assert ingested.id in live._positions
        assert not live.degraded
        user = serve_task.users[0]
        assert len(live.top_k(user.author_id, 10)) == 10
        # The WAL stays attached and untouched — its records cover
        # ingests the new artifact has not compacted either.
        assert live.wal is wal and live.wal.lag == 1

        counter = obs.get_registry().get("serve.swap", outcome="swapped")
        assert counter is not None and counter.value == 1

    def test_low_canary_overlap_rolls_back(self, artifact, serve_task,
                                           candidate_dir, monkeypatch,
                                           obs_enabled):
        live = _live(artifact, serve_task)
        old_model = live._recommender
        baseline = live.top_k(serve_task.users[0].author_id, 10)
        # The live index answers garbage the candidate cannot match:
        # overlap@k is 0 for every golden user.
        monkeypatch.setattr(
            live, "top_k",
            lambda user, k=10: [f"not-a-real-paper-{i}" for i in range(k)])

        report = HotSwapper(live, min_overlap=0.6).swap(candidate_dir)
        assert report.outcome == "rolled_back"
        assert report.mean_overlap == 0.0
        assert "overlap" in report.error
        monkeypatch.undo()
        # Rollback is inaction: the incumbent still serves, unchanged.
        assert live._recommender is old_model
        assert live._artifact_dir != candidate_dir
        assert live.top_k(serve_task.users[0].author_id, 10) == baseline

        counter = obs.get_registry().get("serve.swap", outcome="rolled_back")
        assert counter is not None and counter.value == 1
        events = [e for e in obs.events() if e.get("type") == "event"
                  and e.get("name") == "serve.swap"]
        assert len(events) == 1
        assert events[0]["outcome"] == "rolled_back"
        assert events[0]["trace_id"]  # joined to the swap request trace

    def test_failed_structural_health_rolls_back(self, artifact, serve_task,
                                                 candidate_dir, monkeypatch):
        live = _live(artifact, serve_task)
        old_model = live._recommender
        monkeypatch.setattr(
            ServingIndex, "health",
            lambda self, probe=True: {
                "degraded": False,
                "checks": {"artifact": {"ok": False, "error": "boom"}}})

        report = HotSwapper(live).swap(candidate_dir)
        assert report.outcome == "rolled_back"
        assert report.failed_checks == ["artifact"]
        assert live._recommender is old_model

    def test_unloadable_candidate_is_load_failed(self, artifact, serve_task,
                                                 tmp_path, obs_enabled):
        live = _live(artifact, serve_task)
        old_model = live._recommender
        report = HotSwapper(live, retry_attempts=2).swap(tmp_path / "nope")
        assert report.outcome == "load_failed"
        assert "degraded" in report.error
        assert live._recommender is old_model

        counter = obs.get_registry().get("serve.swap", outcome="load_failed")
        assert counter is not None and counter.value == 1

    def test_injected_load_faults_exhaust_to_load_failed(
            self, artifact, serve_task, candidate_dir):
        live = _live(artifact, serve_task)
        with faults.inject("serve.swap.load:1.0:5"):
            report = HotSwapper(live, retry_attempts=2).swap(candidate_dir)
        assert report.outcome == "load_failed"
        # And the very same candidate swaps fine once the fault clears.
        report = HotSwapper(live).swap(candidate_dir)
        assert report.swapped, report.error


class TestSwapUnderLoad:
    def test_zero_failed_requests_across_a_swap(self, artifact, serve_task,
                                                candidate_dir):
        # A degraded live index keeps the traffic cheap; the swap then
        # *upgrades* it to the modelled candidate mid-stream.
        live = ServingIndex(None, papers=list(serve_task.new_papers))
        users = []
        for user in serve_task.users[:3]:
            live.register_user(user.author_id, list(user.train_papers))
            users.append(user.author_id)
        scheduler = BatchScheduler(live, max_batch=4, max_wait_ms=1.0,
                                   queue_depth=256)
        # min_overlap=0 on purpose: TF-IDF answers vs modelled answers
        # need not agree — the gate under test is the drain barrier.
        swapper = HotSwapper(live, min_overlap=0.0)

        tickets, submit_errors = [], []
        stop = threading.Event()

        def pound(worker: int) -> None:
            i = 0
            while not stop.is_set():
                try:
                    tickets.append(scheduler.submit(
                        users[(worker + i) % len(users)], 5 + (i % 17)))
                except Exception as exc:  # noqa: BLE001 - the assertion
                    submit_errors.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=pound, args=(n,))
                   for n in range(3)]
        for thread in threads:
            thread.start()
        try:
            report = swapper.swap(candidate_dir)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert report.swapped, report.error
        assert not submit_errors
        assert not live.degraded  # the swap healed the degraded index

        # Zero failed in-flight requests: every admitted ticket resolves
        # (served or shed — never errored, never stranded by the swap).
        scheduler.close()
        assert tickets
        for ticket in tickets:
            result = ticket.result(timeout=10)
            assert result.error is None
        # And post-swap traffic answers through the scheduler as usual.
        with pytest.raises(RuntimeError):
            scheduler.submit(users[0], 5)  # closed above
        assert len(live.top_k(users[0], 10)) == 10
