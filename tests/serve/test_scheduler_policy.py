"""Deterministic flush-policy and shedding tests (FakeClock-driven).

These tests run the scheduler in manual mode (``start=False`` + explicit
:meth:`BatchScheduler.pump`) against a cheap degraded index, with a
:class:`FakeClock` shared between the scheduler and its governor — the
flush and shedding decisions become pure functions of the clock, so the
policy (lone request flushes at max-wait, full batch flushes
immediately, queue overflow sheds with a traced event, SLO burn sheds
and recovers) is asserted exactly, with no background thread and no
real sleeps.
"""

import threading
import time

import pytest

from repro import obs
from repro.obs.testing import FakeClock
from repro.serve import BatchScheduler, ServingIndex
from repro.serve.scheduler import SheddingGovernor


@pytest.fixture
def pool(serve_task):
    return list(serve_task.new_papers)


@pytest.fixture
def index(pool, serve_task):
    """Degraded (TF-IDF only) index: the policy layer under test is
    identical to the modelled path, and skipping the artifact load keeps
    these tests in milliseconds."""
    idx = ServingIndex(None, papers=pool)
    for user in serve_task.users[:3]:
        idx.register_user(user.author_id, list(user.train_papers))
    return idx


@pytest.fixture
def users(serve_task):
    return [u.author_id for u in serve_task.users[:3]]


def _manual(index, clock, **kwargs):
    kwargs.setdefault("governor", SheddingGovernor(threshold=100.0,
                                                   clock=clock))
    return BatchScheduler(index, clock=clock, start=False, **kwargs)


class TestFlushPolicy:
    def test_lone_request_flushes_at_max_wait(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=5.0)
        ticket = scheduler.submit(users[0], 5)
        assert scheduler.pump() == 0          # not due yet
        clock.advance(0.004)
        assert scheduler.pump() == 0          # 4ms < max_wait
        clock.advance(0.001)
        assert scheduler.pump() == 1          # exactly max-wait-ms old
        assert ticket.result(timeout=1).ids == index.top_k(users[0], 5)
        scheduler.close()

    def test_full_batch_flushes_immediately(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=3, max_wait_ms=1000.0)
        tickets = [scheduler.submit(users[i % len(users)], 5 + i)
                   for i in range(3)]
        # No clock advance at all: the batch is full, so it is due now.
        assert scheduler.pump() == 3
        for ticket in tickets:
            assert ticket.result(timeout=1).done
        scheduler.close()

    def test_overflow_beyond_max_batch_stays_queued(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=2, max_wait_ms=1000.0,
                            queue_depth=16)
        tickets = [scheduler.submit(users[0], 3 + i) for i in range(5)]
        assert scheduler.pump() == 2
        assert scheduler.pump() == 2
        assert scheduler.stats()["queue_depth"] == 1
        assert scheduler.pump() == 0          # lone leftover, not aged yet
        clock.advance(1.0)
        assert scheduler.pump() == 1
        assert all(t.done for t in tickets)
        scheduler.close()

    def test_cache_hits_bypass_the_queue(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=5.0)
        first = scheduler.submit(users[0], 5)
        clock.advance(0.005)
        scheduler.pump()
        first.result(timeout=1)
        # Same (user, k): resolves instantly from the cache, no queue
        # slot, no pump needed.
        again = scheduler.submit(users[0], 5)
        assert again.done and again.cache == "hit"
        assert again.ids == first.ids
        assert scheduler.stats()["queue_depth"] == 0
        assert scheduler.stats()["cache_fast_hits"] == 1
        scheduler.close()


class TestShedding:
    def test_queue_full_sheds_with_traced_event(self, index, users,
                                                obs_enabled):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=1000.0,
                            queue_depth=2)
        queued = [scheduler.submit(users[0], 5), scheduler.submit(users[1], 5)]
        shed = scheduler.submit(users[2], 5)
        assert shed.done and shed.shed and shed.shed_reason == "queue_full"
        assert shed.cache == "shed"
        # The shed answer is the TF-IDF fallback, served immediately.
        assert shed.ids == index.top_k(users[2], 5)
        assert not any(t.done for t in queued)

        counter = obs.get_registry().get("serve.shed", reason="queue_full")
        assert counter is not None and counter.value == 1
        degraded = obs.get_registry().get("serve.degraded", reason="shed")
        assert degraded is not None and degraded.value == 1
        shed_events = [e for e in obs.events()
                       if e.get("type") == "event"
                       and e.get("name") == "serve.shed"]
        assert len(shed_events) == 1
        assert shed_events[0]["reason"] == "queue_full"
        assert shed_events[0]["trace_id"]  # joined to a real trace
        scheduler.close()

    def test_slo_burn_sheds_then_recovers(self, index, users):
        clock = FakeClock()
        governor = SheddingGovernor(threshold=0.25, window=5.0, budget=0.05,
                                    min_samples=3, clock=clock)
        scheduler = BatchScheduler(index, max_batch=8, max_wait_ms=5.0,
                                   queue_depth=16, governor=governor,
                                   clock=clock, start=False)
        # Three slow requests: queued, then the clock jumps past the
        # latency SLO before the flush, so every recorded latency burns.
        tickets = [scheduler.submit(users[i], 3) for i in range(3)]
        clock.advance(0.3)
        assert scheduler.pump() == 3
        for ticket in tickets:
            assert ticket.result(timeout=1).done
        assert governor.burning()
        assert scheduler.stats()["shedding"]

        shed = scheduler.submit(users[0], 9)
        assert shed.shed and shed.shed_reason == "slo_burn"
        assert shed.ids == index.top_k(users[0], 9)

        # Recovery is passive: the burn window ages out and admission
        # resumes — no operator action, no reset call.
        clock.advance(5.1)
        assert not governor.burning()
        normal = scheduler.submit(users[0], 11)
        assert not normal.done and not normal.shed
        clock.advance(0.006)  # past max-wait (0.005 exact can round under
        # the threshold after the accumulated advances above)
        assert scheduler.pump() == 1
        assert normal.result(timeout=1).ids == index.top_k(users[0], 11)
        assert scheduler.stats()["shed_by_reason"] == {"slo_burn": 1}
        scheduler.close()

    def test_cache_hits_resolve_even_while_shedding(self, index, users):
        clock = FakeClock()
        governor = SheddingGovernor(threshold=0.1, min_samples=1, clock=clock)
        scheduler = BatchScheduler(index, max_batch=4, max_wait_ms=5.0,
                                   queue_depth=4, governor=governor,
                                   clock=clock, start=False)
        first = scheduler.submit(users[0], 5)
        clock.advance(0.2)                    # slow flush -> burning
        scheduler.pump()
        first.result(timeout=1)
        assert governor.burning()
        hit = scheduler.submit(users[0], 5)
        assert hit.done and hit.cache == "hit" and not hit.shed
        miss = scheduler.submit(users[1], 5)
        assert miss.shed and miss.shed_reason == "slo_burn"
        scheduler.close()


class TestGovernor:
    def test_needs_min_samples_before_burning(self):
        clock = FakeClock()
        governor = SheddingGovernor(threshold=0.1, min_samples=5,
                                    budget=0.0, clock=clock)
        for _ in range(4):
            governor.record(1.0)
        assert not governor.burning()         # evidence too thin
        governor.record(1.0)
        assert governor.burning()

    def test_budget_tolerates_a_slow_minority(self):
        clock = FakeClock()
        governor = SheddingGovernor(threshold=0.1, min_samples=4,
                                    budget=0.5, clock=clock)
        for latency in (0.01, 0.01, 0.01, 1.0):
            governor.record(latency)
        assert not governor.burning()         # 25% slow <= 50% budget
        governor.record(1.0)
        governor.record(1.0)
        # Exactly at budget (3/6 == 50%) does not burn; one more slow
        # sample tips it over.
        assert not governor.burning()
        governor.record(1.0)
        assert governor.burning()             # 4/7 slow > 50% budget

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            SheddingGovernor(threshold=0.0)
        with pytest.raises(ValueError, match="budget"):
            SheddingGovernor(budget=1.0)
        with pytest.raises(ValueError, match="min_samples"):
            SheddingGovernor(min_samples=0)


class TestLifecycle:
    def test_close_drains_pending_tickets(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=1000.0)
        tickets = [scheduler.submit(users[i], 4) for i in range(3)]
        assert scheduler.pump() == 0          # nothing due...
        scheduler.close()                     # ...until close drains
        for ticket in tickets:
            assert ticket.result(timeout=1).done
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(users[0], 4)

    def test_close_without_drain_fails_queued(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=1000.0)
        ticket = scheduler.submit(users[0], 4)
        scheduler.close(drain=False)
        with pytest.raises(RuntimeError, match="before flush"):
            ticket.result(timeout=1)

    def test_submit_racing_close_raises_instead_of_stranding(self, index,
                                                             users):
        # A submit that enters while close() is tearing the scheduler
        # down must raise — enqueueing after the flusher drained would
        # strand a ticket that never resolves. The quiesce park is the
        # window: the submit waits inside the lock, close() flips
        # _closed, and the woken submit must re-check it.
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=1000.0)
        with scheduler._cv:
            scheduler._quiesced = True  # hold the submit in the park loop
        outcome = []

        def late_submit():
            try:
                outcome.append(scheduler.submit(users[0], 4))
            except RuntimeError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=late_submit)
        thread.start()
        time.sleep(0.05)                      # the submit is parked
        assert not outcome
        scheduler.close()                     # races the parked submit
        thread.join(timeout=5)
        assert len(outcome) == 1
        assert isinstance(outcome[0], RuntimeError)
        assert "closed" in str(outcome[0])

    def test_context_manager_and_validation(self, index, users):
        with BatchScheduler(index, max_batch=2, max_wait_ms=2.0) as scheduler:
            assert index.scheduler is scheduler
            assert scheduler.query(users[0], 5) == index.top_k(users[0], 5)
        assert index.scheduler is None
        with pytest.raises(ValueError, match="max_batch"):
            BatchScheduler(index, max_batch=0)
        with pytest.raises(ValueError, match="queue_depth"):
            BatchScheduler(index, queue_depth=0)


class TestQuiesce:
    def test_barrier_drains_queued_requests_first(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=1000.0)
        tickets = [scheduler.submit(users[i], 4) for i in range(3)]
        assert scheduler.pump() == 0          # not due under normal policy
        with scheduler.quiesce(timeout=5):
            # Entering the barrier made the queue due and drained it
            # inline (manual mode): nothing is queued or in flight.
            assert all(t.done for t in tickets)
            assert scheduler.stats()["queue_depth"] == 0
            assert scheduler.stats()["in_flight"] == 0
            assert scheduler.stats()["quiesced"]
        assert not scheduler.stats()["quiesced"]
        scheduler.close()

    def test_new_misses_park_until_the_barrier_lifts(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=0.0)
        parked = []

        with scheduler.quiesce(timeout=5):
            thread = threading.Thread(
                target=lambda: parked.append(scheduler.submit(users[0], 4)))
            thread.start()
            time.sleep(0.05)
            # Parked: neither admitted, failed, nor shed — it waits for
            # whichever index state wins the swap.
            assert not parked
            assert scheduler.stats()["queue_depth"] == 0
        thread.join(timeout=5)
        assert len(parked) == 1 and not parked[0].shed
        assert scheduler.pump() == 1          # max_wait 0: due immediately
        assert parked[0].result(timeout=1).ids == index.top_k(users[0], 4)
        scheduler.close()

    def test_cache_hits_flow_through_the_barrier(self, index, users):
        clock = FakeClock()
        scheduler = _manual(index, clock, max_batch=8, max_wait_ms=0.0)
        warm = scheduler.submit(users[0], 5)
        scheduler.pump()
        warm.result(timeout=1)
        with scheduler.quiesce(timeout=5):
            hit = scheduler.submit(users[0], 5)
            assert hit.done and hit.cache == "hit"
            assert hit.ids == warm.ids
        scheduler.close()
