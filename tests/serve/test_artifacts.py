"""Artifact store tests: exact round trip + loud failure modes."""

import json
import shutil

import numpy as np
import pytest

from repro.core.nprec import NPRecRecommender
from repro.core.rules import venue_difference
from repro.errors import ArtifactError, NotFittedError, SchemaVersionError
from repro.serve import (
    SCHEMA_VERSION,
    load_author_affiliations,
    load_pipeline,
    save_pipeline,
)


def _copy(artifact_dir, tmp_path):
    target = tmp_path / "copy"
    shutil.copytree(artifact_dir, target)
    return target


class TestRoundTrip:
    def test_rank_is_bit_identical(self, artifact):
        # The loaded copy must replay the same query sequence the
        # original ran after saving (field sampling advances a persisted
        # RNG mid-stream).
        directory, baseline = artifact
        reloaded = load_pipeline(directory)
        user = baseline["user"]
        head = reloaded.rank(list(user.train_papers), user.candidate_set(20))
        full = reloaded.rank(list(user.train_papers), list(user.candidates))
        assert head == baseline["head"]
        assert full == baseline["full"]

    def test_two_loads_are_identical(self, artifact, serve_task):
        directory, _ = artifact
        first = load_pipeline(directory)
        second = load_pipeline(directory)
        user = serve_task.users[1]
        papers = list(user.train_papers)
        candidates = user.candidate_set(30)
        assert first.rank(papers, candidates) == second.rank(papers, candidates)

    def test_model_state_is_exact(self, artifact, fitted_recommender):
        directory, _ = artifact
        reloaded = load_pipeline(directory)
        original = fitted_recommender
        state_a = original.model.state_dict()
        state_b = reloaded.model.state_dict()
        assert sorted(state_a) == sorted(state_b)
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name
        assert np.array_equal(original.model._nonpaper_mask[:len(reloaded.model._nonpaper_mask)],
                              reloaded.model._nonpaper_mask)
        assert reloaded.model.graph.to_payload() == \
            original.model.graph.to_payload()
        assert reloaded.model.block_gates == original.model.block_gates
        assert reloaded.config == original.config
        assert reloaded._novelty == original._novelty
        assert sorted(reloaded._train_by_id) == sorted(original._train_by_id)

    def test_sem_components_restored(self, artifact, fitted_recommender):
        directory, _ = artifact
        reloaded = load_pipeline(directory)
        sem_a, sem_b = fitted_recommender.sem, reloaded.sem
        assert np.array_equal(sem_a.encoder._rotation, sem_b.encoder._rotation)
        assert sem_a.encoder._frequency == sem_b.encoder._frequency
        assert np.array_equal(sem_a.rules.weights, sem_b.rules.weights)
        for key, value in sem_a.network.state_dict().items():
            assert np.array_equal(value, sem_b.network.state_dict()[key]), key

    def test_affiliations_persisted(self, artifact, serve_task):
        directory, _ = artifact
        affiliations = load_author_affiliations(directory)
        expected = {a.id: a.affiliation for a in serve_task.corpus.authors
                    if a.affiliation}
        assert affiliations == expected


class TestFailureModes:
    def test_unfitted_recommender_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_pipeline(NPRecRecommender(), tmp_path / "x")

    def test_extra_rules_rejected(self, artifact, fitted_recommender,
                                  tmp_path):
        fitted_recommender.sem.extra_rules = [("venue", venue_difference)]
        try:
            with pytest.raises(ArtifactError, match="extra rules"):
                save_pipeline(fitted_recommender, tmp_path / "x")
        finally:
            fitted_recommender.sem.extra_rules = []

    def test_missing_manifest(self, artifact, tmp_path):
        directory = _copy(artifact[0], tmp_path)
        (directory / "manifest.json").unlink()
        with pytest.raises(ArtifactError, match="manifest"):
            load_pipeline(directory)

    def test_corrupt_manifest_json(self, artifact, tmp_path):
        directory = _copy(artifact[0], tmp_path)
        (directory / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="corrupt manifest"):
            load_pipeline(directory)

    def test_wrong_schema_version(self, artifact, tmp_path):
        directory = _copy(artifact[0], tmp_path)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 999
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SchemaVersionError, match="schema version"):
            load_pipeline(directory)

    def test_schema_error_is_artifact_error(self):
        # Callers catching the broad class also see version mismatches.
        assert issubclass(SchemaVersionError, ArtifactError)

    def test_tampered_file_fails_checksum(self, artifact, tmp_path):
        directory = _copy(artifact[0], tmp_path)
        target = directory / "config.json"
        payload = json.loads(target.read_text())
        payload["nprec_config"]["dim"] = 999
        target.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="config.json"):
            load_pipeline(directory)

    def test_missing_payload_file(self, artifact, tmp_path):
        directory = _copy(artifact[0], tmp_path)
        (directory / "serve.json").unlink()
        with pytest.raises(ArtifactError, match="serve.json"):
            load_pipeline(directory)

    def test_wrong_kind_rejected(self, artifact, tmp_path):
        directory = _copy(artifact[0], tmp_path)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["kind"] = "something-else"
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="kind"):
            load_pipeline(directory)


class TestManifest:
    def test_manifest_contents(self, artifact, fitted_recommender):
        directory, _ = artifact
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["kind"] == "nprec-pipeline"
        counts = manifest["counts"]
        assert counts["train_papers"] == len(fitted_recommender._train_by_id)
        assert counts["entities"] > counts["train_papers"]
        # Every listed file exists and every payload file is listed.
        files = set(manifest["files"])
        on_disk = {str(p.relative_to(directory)).replace("\\", "/")
                   for p in directory.rglob("*")
                   if p.is_file() and p.name != "manifest.json"}
        assert files == on_disk
