"""CLI tests: warmup -> query against a real artifact, plus arg handling."""

import json

import pytest

from repro.serve.__main__ import main


@pytest.fixture(scope="module")
def warm_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "artifact"
    code = main(["warmup", "--dir", str(directory), "--scale", "0.3",
                 "--seed", "0", "--users", "6"])
    assert code == 0
    return directory


class TestWarmup:
    def test_writes_artifact_with_metadata(self, warm_dir):
        manifest = json.loads((warm_dir / "manifest.json").read_text())
        assert manifest["kind"] == "nprec-pipeline"
        assert manifest["extra"]["corpus"] == "acm"
        assert manifest["extra"]["scale"] == 0.3


class TestQuery:
    def test_query_prints_topk(self, warm_dir, capsys):
        code = main(["query", "--dir", str(warm_dir), "-k", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "top-5" in out
        # Five ranked lines, numbered.
        assert out.count("\n  ") >= 5

    def test_unknown_user_is_an_error(self, warm_dir, capsys):
        code = main(["query", "--dir", str(warm_dir), "--user", "nobody"])
        assert code == 2
        assert "unknown user" in capsys.readouterr().err

    def test_degraded_query_warns_but_serves(self, warm_dir, tmp_path,
                                             capsys):
        import shutil
        broken = tmp_path / "broken"
        shutil.copytree(warm_dir, broken)
        (broken / "serve.json").write_text("tampered")
        code = main(["query", "--dir", str(broken), "-k", "3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "degraded" in captured.err
        assert "top-3" in captured.out


@pytest.fixture(scope="module")
def ivf_dir(tmp_path_factory):
    """A warmup artifact that also persisted its IVF quantizer."""
    directory = tmp_path_factory.mktemp("cli-ivf") / "artifact"
    code = main(["warmup", "--dir", str(directory), "--scale", "0.3",
                 "--seed", "0", "--users", "6", "--index", "ivf",
                 "--nprobe", "4"])
    assert code == 0
    return directory


class TestIvfFlags:
    def test_warmup_persists_quantizer(self, ivf_dir, capsys):
        assert (ivf_dir / "ann" / "ivf.json").is_file()
        assert (ivf_dir / "ann" / "ivf.npz").is_file()
        meta = json.loads((ivf_dir / "ann" / "ivf.json").read_text())
        assert meta["kind"] == "ivf"
        assert "pool_sha256" in meta

    def test_query_reports_ivf_strategy(self, ivf_dir, capsys):
        code = main(["query", "--dir", str(ivf_dir), "-k", "4",
                     "--index", "ivf", "--nprobe", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ivf, nprobe=2" in out
        assert "top-4" in out

    def test_exact_remains_the_default(self, ivf_dir, capsys):
        code = main(["query", "--dir", str(ivf_dir), "-k", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact)" in out
        assert "ivf," not in out

    def test_loadtest_accepts_ivf(self, ivf_dir, tmp_path, capsys):
        code = main(["loadtest", "--dir", str(ivf_dir), "--requests", "20",
                     "--concurrency", "2", "--index", "ivf", "--nprobe", "2",
                     "--out", str(tmp_path / "bench.json"),
                     "--capture", str(tmp_path / "capture.jsonl"),
                     "--runs-dir", str(tmp_path / "runs"),
                     "--run-id", "ivf-smoke"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert summary["errors"] == 0
        run = json.loads((tmp_path / "runs" / "ivf-smoke.json").read_text())
        assert run["meta"]["index"] == "ivf"
        assert run["meta"]["nprobe"] == 2


class TestSchedulerFlags:
    def test_health_reports_scheduler_check(self, warm_dir, capsys):
        code = main(["health", "--dir", str(warm_dir), "--scheduler",
                     "--max-batch", "4", "--queue-depth", "16"])
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)
        check = report["checks"]["scheduler"]
        assert check["ok"] is True
        assert check["queue_depth"] == 0
        assert check["queue_capacity"] == 16
        assert check["max_batch"] == 4
        assert check["shed_rate"] == 0.0

    def test_health_without_flag_has_no_scheduler_check(self, warm_dir,
                                                        capsys):
        code = main(["health", "--dir", str(warm_dir)])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "scheduler" not in report["checks"]

    def test_loadtest_with_scheduler(self, warm_dir, tmp_path, capsys):
        code = main(["loadtest", "--dir", str(warm_dir), "--requests", "30",
                     "--concurrency", "3", "--scheduler",
                     "--max-batch", "4", "--max-wait-ms", "1.0",
                     # A threshold no CI box can trip: the shed_rate
                     # gauge below asserts exactly zero.
                     "--shed-threshold", "100",
                     "--out", str(tmp_path / "bench.json"),
                     "--capture", str(tmp_path / "capture.jsonl"),
                     "--runs-dir", str(tmp_path / "runs"),
                     "--run-id", "batched-smoke"])
        captured = capsys.readouterr()
        assert code == 0
        summary = json.loads(captured.out.strip().splitlines()[-1])
        assert summary["errors"] == 0
        assert "scheduler: " in captured.err
        run = json.loads((tmp_path / "runs" / "batched-smoke.json")
                         .read_text())
        assert run["meta"]["scheduler"] is True
        assert run["meta"]["max_batch"] == 4
        gauges = {m["name"]: m for m in run["metrics"]
                  if m["kind"] == "gauge"}
        assert gauges["serve.scheduler.shed_rate"]["value"] == 0.0
        assert gauges["serve.scheduler.batches"]["value"] >= 1.0


class TestParsing:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
