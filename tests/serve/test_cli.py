"""CLI tests: warmup -> query against a real artifact, plus arg handling."""

import json

import pytest

from repro.serve.__main__ import main


@pytest.fixture(scope="module")
def warm_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "artifact"
    code = main(["warmup", "--dir", str(directory), "--scale", "0.3",
                 "--seed", "0", "--users", "6"])
    assert code == 0
    return directory


class TestWarmup:
    def test_writes_artifact_with_metadata(self, warm_dir):
        manifest = json.loads((warm_dir / "manifest.json").read_text())
        assert manifest["kind"] == "nprec-pipeline"
        assert manifest["extra"]["corpus"] == "acm"
        assert manifest["extra"]["scale"] == 0.3


class TestQuery:
    def test_query_prints_topk(self, warm_dir, capsys):
        code = main(["query", "--dir", str(warm_dir), "-k", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "top-5" in out
        # Five ranked lines, numbered.
        assert out.count("\n  ") >= 5

    def test_unknown_user_is_an_error(self, warm_dir, capsys):
        code = main(["query", "--dir", str(warm_dir), "--user", "nobody"])
        assert code == 2
        assert "unknown user" in capsys.readouterr().err

    def test_degraded_query_warns_but_serves(self, warm_dir, tmp_path,
                                             capsys):
        import shutil
        broken = tmp_path / "broken"
        shutil.copytree(warm_dir, broken)
        (broken / "serve.json").write_text("tampered")
        code = main(["query", "--dir", str(broken), "-k", "3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "degraded" in captured.err
        assert "top-3" in captured.out


class TestParsing:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
