"""End-to-end smoke tests: every experiment driver runs at tiny scale.

These complement the benchmarks (which run at reproduction scale and
assert the paper's shapes): here we only check that each driver produces
a structurally valid table quickly, so a refactoring that breaks an
experiment fails in the unit suite, not just in the long benchmark run.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import ResultTable


@pytest.mark.slow
class TestDriversRun:
    def test_table1(self):
        table = run_experiment("table1", scale=0.25, seed=0)
        assert isinstance(table, ResultTable)
        assert [r[0] for r in table.rows] == ["CLT", "CSJ", "HP",
                                              "SEM-B", "SEM-M", "SEM-R"]
        for row in table.rows:
            for cell in row[1:]:
                assert -1.0 <= cell <= 1.0

    def test_fig2(self):
        table = run_experiment("fig2", scale=0.25, seed=0)
        assert [r[0] for r in table.rows] == ["SHPE", "Doc2Vec", "BERT", "SEM"]

    def test_fig3(self):
        tables = run_experiment("fig3", scale=0.25, seed=0, n_papers=30,
                                compute_tsne=False)
        scatter, clustering = tables
        assert len(scatter.rows) == 9   # 3 disciplines x 3 subspaces
        assert len(clustering.rows) == 3

    def test_table2(self):
        table = run_experiment("table2", scale=0.4, seed=0, min_stratum=5)
        assert len(table.rows) == 3
        assert all(isinstance(c, float) for row in table.rows for c in row[1:])

    def test_table3(self):
        table = run_experiment("table3", scale=0.2, seed=0)
        assert len(table.rows) == 3

    def test_table4_subset(self):
        table = run_experiment("table4", scale=0.3, seed=0, acm_users=5,
                               scopus_users=5, methods=("NBCF", "NPRec"),
                               ks=(10, 20))
        assert len(table.rows) == 2
        assert 0.0 <= table.cell("NPRec", "ACM k=10") <= 1.0

    def test_table5_subset(self):
        table = run_experiment("table5", scale=0.3, seed=0, n_users=5,
                               methods=("NBCF", "NPRec"))
        assert table.cell("NPRec", "ACM MRR rp=5") >= 0.0

    def test_table6_subset(self):
        table = run_experiment("table6", scale=0.3, seed=0, n_users=5,
                               methods=("NPRec",), ratios=(1, 5),
                               corpora=("ACM",))
        assert len(table.rows) == 1

    def test_table7_subset(self):
        table = run_experiment("table7", scale=0.3, seed=0, n_users=5,
                               neighbor_ks=(2, 4))
        assert table.cell("NPRec+SC", "K=4") == "-"
        assert isinstance(table.cell("NPRec", "K=2"), float)

    def test_table8_subset(self):
        table = run_experiment("table8", scale=0.3, seed=0, n_users=5,
                               depths=(1, 2))
        assert isinstance(table.cell("NPRec", "H=1"), float)

    def test_fig5(self):
        table = run_experiment("fig5", scale=0.3, seed=0, compute_tsne=False)
        assert [r[0] for r in table.rows] == ["content", "interest", "influence"]
        assert table.cell("content", "neighbourhood shift") == 0.0

    def test_fig6_subset(self):
        table = run_experiment("fig6", scale=0.6, seed=0, n_users=5,
                               methods=("NBCF", "NPRec"))
        assert len(table.rows) == 2
