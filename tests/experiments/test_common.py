"""Tests for the experiment registry and result tables."""

import pytest

from repro.experiments import available_experiments, render_results, run_experiment
from repro.experiments.common import ResultTable


class TestResultTable:
    def test_add_row_validates_width(self):
        table = ResultTable("t", ["A", "B"])
        table.add_row("x", 1.0)
        with pytest.raises(ValueError, match="1 cells but table has 2 columns"):
            table.add_row("only-one")
        with pytest.raises(ValueError, match="3 cells but table has 2 columns"):
            table.add_row("x", 1.0, 2.0)
        # A rejected row must not be partially appended.
        assert table.rows == [["x", 1.0]]

    def test_cell_lookup(self):
        table = ResultTable("t", ["Model", "score"])
        table.add_row("m1", 0.5)
        assert table.cell("m1", "score") == 0.5
        with pytest.raises(KeyError, match="unknown column 'nope'"):
            table.cell("m1", "nope")
        with pytest.raises(KeyError, match="unknown row 'ghost'"):
            table.cell("ghost", "score")

    def test_column_values(self):
        table = ResultTable("t", ["Model", "score"])
        table.add_row("a", 1.0)
        table.add_row("b", 2.0)
        assert table.column_values("score") == [1.0, 2.0]

    def test_column_values_unknown_column(self):
        table = ResultTable("t", ["Model", "score"])
        table.add_row("a", 1.0)
        with pytest.raises(KeyError, match="unknown column 'nope'"):
            table.column_values("nope")

    def test_column_values_empty_table(self):
        assert ResultTable("t", ["Model", "score"]).column_values("score") == []

    def test_render_contains_everything(self):
        table = ResultTable("My Title", ["Model", "x"], notes="a note")
        table.add_row("row1", 0.123456)
        text = table.render()
        assert "My Title" in text
        assert "row1" in text
        assert "0.123" in text
        assert "a note" in text

    def test_render_results_multiple(self):
        t1 = ResultTable("One", ["A"])
        t2 = ResultTable("Two", ["A"])
        text = render_results([t1, t2])
        assert "One" in text and "Two" in text


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table1", "table2", "table3", "table4", "table5",
                    "table6", "table7", "table8", "fig2", "fig3", "fig5",
                    "fig6"}
        assert expected <= set(available_experiments())

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_table3_runs_quickly(self):
        table = run_experiment("table3", scale=0.2)
        assert table.cell("acm", "Paper/patent") > 0
