"""Tests for ablation variant configuration and fig5 helpers."""

import numpy as np
import pytest

from repro.experiments.fig5 import _cosine_matrix, _top_neighbours
from repro.experiments.table7 import VARIANTS, variant_config


class TestVariantConfig:
    def test_sc_disables_network(self):
        config = variant_config("NPRec+SC", seed=0)
        assert config.use_network is False
        assert config.use_text is True

    def test_sn_disables_text_and_content(self):
        config = variant_config("NPRec+SN", seed=0)
        assert config.use_text is False
        assert config.use_content_similarity is False

    def test_cn_uses_citation_sampling(self):
        config = variant_config("NPRec+CN", seed=0)
        assert config.strategy == "citation"
        assert config.use_text and config.use_network

    def test_full_model_defaults(self):
        config = variant_config("NPRec", seed=3, neighbor_k=16, depth=3)
        assert config.strategy == "defuzz"
        assert config.neighbor_k == 16
        assert config.depth == 3
        assert config.seed == 3

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_config("NPRec+XX", seed=0)

    def test_variant_tuple_matches_paper(self):
        assert VARIANTS == ("NPRec+SC", "NPRec+SN", "NPRec+CN", "NPRec")


class TestFig5Helpers:
    def test_cosine_matrix_diagonal_ones(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(6, 4))
        sims = _cosine_matrix(matrix)
        np.testing.assert_allclose(np.diag(sims), 1.0)
        np.testing.assert_allclose(sims, sims.T)

    def test_cosine_matrix_zero_rows_safe(self):
        matrix = np.zeros((3, 4))
        matrix[0] = [1, 0, 0, 0]
        sims = _cosine_matrix(matrix)
        assert np.isfinite(sims).all()

    def test_top_neighbours_excludes_self(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(8, 5))
        neighbours = _top_neighbours(matrix, 3)
        for i, ns in enumerate(neighbours):
            assert i not in ns
            assert len(ns) == 3
