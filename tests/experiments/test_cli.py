"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list", "table3"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_run_table3(self, capsys):
        assert main(["table3", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "finished in" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["tableXX"])

    def test_seed_flag_threads_through(self, capsys):
        assert main(["table3", "--scale", "0.2", "--seed", "5"]) == 0
        assert "acm" in capsys.readouterr().out
