"""Tests for the recommendation evaluation protocol."""

import numpy as np
import pytest

from repro.baselines.base import Recommender
from repro.data import load_acm, load_patents
from repro.experiments.protocol import (
    build_recommendation_task,
    evaluate_recommender,
    split_task_by_month,
    split_task_by_year,
)


class PerfectOracle(Recommender):
    """Ranks the user's relevant papers first (cheats via novelty field)."""

    name = "oracle"

    def __init__(self, relevant_by_user=None):
        self.relevant: set[str] = set()

    def fit(self, corpus, train_papers, new_papers=()):
        return self

    def set_relevant(self, ids):
        self.relevant = set(ids)

    def rank(self, user_papers, candidates):
        return sorted((c.id for c in candidates),
                      key=lambda pid: pid not in self.relevant)


class RandomRecommender(Recommender):
    name = "random"

    def fit(self, corpus, train_papers, new_papers=()):
        self._rng = np.random.default_rng(0)
        return self

    def rank(self, user_papers, candidates):
        ids = [c.id for c in candidates]
        self._rng.shuffle(ids)
        return ids


@pytest.fixture(scope="module")
def acm():
    return load_acm(scale=0.3, seed=6)


@pytest.fixture(scope="module")
def task(acm):
    return split_task_by_year(acm, 2014, n_users=10, candidate_size=30,
                              min_prefix=15, seed=0)


class TestTaskConstruction:
    def test_users_have_history_and_relevants(self, task):
        for user in task.users:
            assert len(user.train_papers) >= 2
            assert user.relevant_ids
            assert all(p.year < 2014 for p in user.train_papers)

    def test_relevants_inside_min_prefix(self, task):
        for user in task.users:
            prefix_ids = {p.id for p in user.candidate_set(15)}
            assert user.relevant_ids <= prefix_ids

    def test_candidates_are_new_papers(self, task):
        new_ids = {p.id for p in task.new_papers}
        for user in task.users:
            assert {c.id for c in user.candidates} <= new_ids

    def test_candidates_exclude_own_papers(self, task, acm):
        for user in task.users:
            for candidate in user.candidates:
                assert user.author_id not in candidate.authors

    def test_nested_candidate_sets(self, task):
        for user in task.users:
            assert user.candidate_set(10) == list(user.candidates[:10])
        with pytest.raises(ValueError):
            task.users[0].candidate_set(0)

    def test_representative_papers_cap(self, acm):
        task = split_task_by_year(acm, 2014, n_users=5, candidate_size=20,
                                  min_prefix=10, representative_papers=3,
                                  seed=0)
        for user in task.users:
            assert len(user.train_papers) == 3

    def test_deterministic(self, acm):
        a = split_task_by_year(acm, 2014, n_users=5, candidate_size=20, seed=3)
        b = split_task_by_year(acm, 2014, n_users=5, candidate_size=20, seed=3)
        assert [u.author_id for u in a.users] == [u.author_id for u in b.users]
        assert [tuple(c.id for c in u.candidates) for u in a.users] == \
            [tuple(c.id for c in u.candidates) for u in b.users]

    def test_validation(self, acm):
        train, new = acm.split_by_year(2014)
        with pytest.raises(ValueError):
            build_recommendation_task(acm, train, new, n_users=0)
        with pytest.raises(ValueError):
            build_recommendation_task(acm, train, new, candidate_size=1)
        with pytest.raises(ValueError):
            build_recommendation_task(acm, train, new, min_prefix=0)

    def test_month_split(self):
        corpus = load_patents(scale=0.5, seed=1)
        task = split_task_by_month(corpus, 11, n_users=5, candidate_size=10,
                                   min_prefix=10, seed=0)
        for paper in task.train_papers:
            assert paper.month < 11
        for paper in task.new_papers:
            assert paper.month >= 11


class TestEvaluation:
    def test_oracle_scores_one(self, task):
        oracle = PerfectOracle()
        metrics_per_user = []
        from repro.analysis.metrics import ndcg_at_k
        for user in task.users:
            oracle.set_relevant(user.relevant_ids)
            ranked = oracle.rank(list(user.train_papers), user.candidate_set(15))
            metrics_per_user.append(
                ndcg_at_k(ranked, set(user.relevant_ids), 15))
        assert np.mean(metrics_per_user) == pytest.approx(1.0)

    def test_random_below_oracle(self, task):
        metrics = evaluate_recommender(RandomRecommender(), task, ks=(15,))
        assert 0.0 < metrics["ndcg@15"] < 0.9
        assert set(metrics) == {"ndcg@15", "mrr", "map"}

    def test_metrics_monotone_in_k(self, task):
        metrics = evaluate_recommender(RandomRecommender(), task, ks=(10, 30))
        # bigger candidate pool -> harder task
        assert metrics["ndcg@10"] >= metrics["ndcg@30"] - 0.05
