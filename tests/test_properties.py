"""Property-based tests (hypothesis) for core invariants.

Covers: the autograd engine (gradients match numerical derivatives on
random expressions), expert-rule metric properties (symmetry, identity,
non-negativity), ranking-metric bounds, LOF/GMM invariants, and the
sampling strategy contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.metrics import (
    dcg_at_k,
    ndcg_at_k,
    rankdata,
    spearman_correlation,
)
from repro.cluster.lof import local_outlier_factor, normalized_lof
from repro.core.rules import (
    classification_difference,
    keyword_difference,
    reference_difference,
    subspace_centroids,
)
from repro.nn import Tensor, parameter, softmax
from repro.text.tokenizer import split_sentences, tokenize
from repro.text.word_vectors import HashWordVectors

finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False,
                          allow_infinity=False)


def small_arrays(min_size=1, max_size=6):
    return arrays(np.float64, st.integers(min_size, max_size),
                  elements=finite_floats)


# ---------------------------------------------------------------------------
# Autograd
# ---------------------------------------------------------------------------
class TestAutogradProperties:
    @given(small_arrays(), small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_addition_gradient_is_ones(self, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        p = parameter(a.copy())
        q = parameter(b.copy())
        (p + q).sum().backward()
        np.testing.assert_allclose(p.grad, np.ones_like(a))
        np.testing.assert_allclose(q.grad, np.ones_like(b))

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_product_rule(self, a):
        p = parameter(a.copy())
        (p * p).sum().backward()
        np.testing.assert_allclose(p.grad, 2 * a, atol=1e-9)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_tanh_gradient_bounded(self, a):
        p = parameter(a.copy())
        p.tanh().sum().backward()
        assert np.all(p.grad <= 1.0 + 1e-12)
        assert np.all(p.grad >= 0.0)

    @given(small_arrays(min_size=2))
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, a):
        weights = softmax(Tensor(a), axis=-1)
        assert weights.data.min() >= 0
        assert weights.data.sum() == pytest.approx(1.0)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_detach_blocks_gradient(self, a):
        p = parameter(a.copy())
        out = (p.detach() * 3.0).sum()
        assert not out.requires_grad


# ---------------------------------------------------------------------------
# Expert rules
# ---------------------------------------------------------------------------
words = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
paths = st.lists(words, min_size=0, max_size=5, unique=True)


class TestRuleProperties:
    @given(paths, paths)
    @settings(max_examples=60, deadline=None)
    def test_classification_symmetric_nonnegative(self, a, b):
        ab = classification_difference(a, b)
        ba = classification_difference(b, a)
        assert ab == pytest.approx(ba)
        assert ab >= 0
        assert classification_difference(a, a) == 0.0

    @given(st.lists(words, max_size=6), st.lists(words, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_reference_symmetric_and_at_least_one(self, a, b):
        ab = reference_difference(a, b)
        assert ab == pytest.approx(reference_difference(b, a))
        if a or b:
            assert ab >= 1.0

    @given(st.lists(words, min_size=1, max_size=4, unique=True),
           st.lists(words, min_size=1, max_size=4, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_keyword_symmetric_nonnegative(self, a, b):
        wv = HashWordVectors(dim=16)
        ab = keyword_difference(a, b, wv)
        assert ab == pytest.approx(keyword_difference(b, a, wv))
        assert ab >= 0
        assert keyword_difference(a, a, wv) <= ab + 1e-9 or True

    @given(arrays(np.float64, st.tuples(st.integers(1, 8), st.just(4)),
                  elements=finite_floats),
           st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_centroids_bounded_by_inputs(self, matrix, k):
        labels = np.arange(matrix.shape[0]) % k
        cents = subspace_centroids(matrix, labels, k)
        assert cents.shape == (k, 4)
        # Only populated subspaces obey the convex-hull bound; empty
        # subspaces are defined as the zero vector.
        for subspace in range(k):
            members = matrix[labels == subspace]
            if len(members):
                assert cents[subspace].min() >= members.min() - 1e-9
                assert cents[subspace].max() <= members.max() + 1e-9
            else:
                np.testing.assert_array_equal(cents[subspace], 0.0)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetricProperties:
    @given(st.lists(finite_floats, min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_rankdata_is_permutation_of_ranks(self, values):
        ranks = rankdata(values)
        assert ranks.sum() == pytest.approx(len(values) * (len(values) + 1) / 2)

    @given(st.lists(finite_floats, min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_spearman_bounds_and_self(self, values):
        rho = spearman_correlation(values, values)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
        if len(set(values)) > 1:
            assert rho == pytest.approx(1.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=30),
           st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_ndcg_in_unit_interval(self, relevance_mask, k):
        ids = [f"p{i}" for i in range(len(relevance_mask))]
        relevant = {pid for pid, r in zip(ids, relevance_mask) if r}
        if not relevant:
            return
        value = ndcg_at_k(ids, relevant, k)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=5, allow_nan=False),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_dcg_monotone_in_k(self, rels):
        assert dcg_at_k(rels, len(rels)) >= dcg_at_k(rels, 1) - 1e-9


# ---------------------------------------------------------------------------
# LOF
# ---------------------------------------------------------------------------
class TestLofProperties:
    @given(arrays(np.float64, st.tuples(st.integers(5, 25), st.integers(2, 4)),
                  elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_lof_positive_and_normalized_bounded(self, data):
        scores = local_outlier_factor(data, k=3)
        assert np.all(scores > 0)
        normed = normalized_lof(data, k=3)
        assert normed.min() >= 0.0
        assert normed.max() <= 1.0

    @given(arrays(np.float64, st.tuples(st.integers(5, 15), st.integers(2, 3)),
                  elements=finite_floats))
    @settings(max_examples=20, deadline=None)
    def test_lof_translation_invariant(self, data):
        # Exact invariance only holds without distance ties: duplicates
        # and regular lattices make neighbour selection tie-break
        # dependent, which translation perturbs. Deterministic Gaussian
        # jitter makes all pairwise distances distinct almost surely.
        data = data + np.random.default_rng(7).normal(size=data.shape) * 0.01
        scores = local_outlier_factor(data, k=3)
        shifted = local_outlier_factor(data + 100.0, k=3)
        np.testing.assert_allclose(scores, shifted, rtol=1e-4, atol=1e-4)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
class TestTextProperties:
    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_tokenize_lowercase_total(self, text):
        for token in tokenize(text):
            assert token == token.lower()

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_split_sentences_never_empty_strings(self, text):
        for sentence in split_sentences(text):
            assert sentence.strip()

    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_hash_vectors_unit_norm(self, word):
        vec = HashWordVectors(dim=24).vector(word)
        assert np.linalg.norm(vec) == pytest.approx(1.0)
