"""Golden regression wall: experiments must match the checked-in results.

Reruns the cheap headline experiments (``table1``, ``fig2``) at their
default settings and compares the rendered tables against
``results/*.txt`` token by token — numeric cells within a small absolute
tolerance (guarding against cross-platform float formatting drift),
everything else exactly.

If a change to samplers, RNG draw order, or model internals shifts these
numbers *intentionally*, regenerate the goldens in the same PR::

    PYTHONPATH=src python - <<'PY'
    from repro.experiments.common import run_experiment, render_results
    for exp in ("table1", "fig2"):
        with open(f"results/{exp}.txt", "w") as fh:
            fh.write(render_results(run_experiment(exp)) + "\n")
    PY

so the diff is visible to reviewers instead of silently absorbed.
"""

from pathlib import Path

import pytest

from repro.experiments.common import render_results, run_experiment

RESULTS = Path(__file__).resolve().parents[2] / "results"

#: Absolute tolerance for numeric cells (tables render with 3 decimals).
TOLERANCE = 2e-3


def _as_number(token: str) -> float | None:
    try:
        return float(token)
    except ValueError:
        return None


def assert_text_close(actual: str, golden: str, source: str) -> None:
    actual_lines = actual.strip().splitlines()
    golden_lines = golden.strip().splitlines()
    assert len(actual_lines) == len(golden_lines), (
        f"{source}: {len(actual_lines)} lines vs {len(golden_lines)} golden")
    for lineno, (got, want) in enumerate(zip(actual_lines, golden_lines), 1):
        got_tokens, want_tokens = got.split(), want.split()
        assert len(got_tokens) == len(want_tokens), (
            f"{source}:{lineno}: {got!r} vs golden {want!r}")
        for got_tok, want_tok in zip(got_tokens, want_tokens):
            want_num = _as_number(want_tok)
            if want_num is None:
                assert got_tok == want_tok, (
                    f"{source}:{lineno}: {got_tok!r} != {want_tok!r}")
            else:
                got_num = _as_number(got_tok)
                assert got_num is not None, (
                    f"{source}:{lineno}: expected number, got {got_tok!r}")
                assert abs(got_num - want_num) <= TOLERANCE, (
                    f"{source}:{lineno}: {got_num} vs golden {want_num} "
                    f"(|diff| > {TOLERANCE})")


@pytest.mark.parametrize("experiment", ["table1", "fig2"])
def test_experiment_matches_golden(experiment):
    golden_path = RESULTS / f"{experiment}.txt"
    assert golden_path.is_file(), (
        f"missing golden file {golden_path}; generate it with "
        f"`python -m repro.experiments {experiment}`")
    actual = render_results(run_experiment(experiment))
    assert_text_close(actual, golden_path.read_text(encoding="utf-8"),
                      source=f"results/{experiment}.txt")
