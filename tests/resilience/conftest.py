"""Shared resilience fixtures: fault-plan isolation and obs capture."""

import pytest

from repro import obs
from repro.resilience import faults


@pytest.fixture(autouse=True)
def isolated_fault_plan():
    """Restore the process-wide fault plan (or its unset state) per test."""
    previous = faults._ACTIVE
    try:
        yield
    finally:
        faults._ACTIVE = previous


@pytest.fixture
def obs_enabled():
    state = obs.configure(enabled=True, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, reset=True)
