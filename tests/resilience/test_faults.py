"""Fault-plan parsing, per-site determinism, and the maybe_fail hook."""

import numpy as np
import pytest

from repro import obs
from repro.errors import InjectedFault
from repro.resilience import faults
from repro.resilience.faults import ENV_VAR, KNOWN_SITES, FaultPlan, FaultRule


class TestParsing:
    def test_full_spec(self):
        plan = FaultPlan.parse("a:0.5:7,b:1.0")
        assert plan.rules["a"] == FaultRule("a", 0.5, 7)
        assert plan.rules["b"] == FaultRule("b", 1.0, 0)

    def test_whitespace_and_trailing_commas_ignored(self):
        plan = FaultPlan.parse(" a:0.25:3 , ,b:0.75 ,")
        assert set(plan.rules) == {"a", "b"}

    @pytest.mark.parametrize("spec", [
        "a",                 # no probability
        "a:0.5:7:9",         # too many fields
        "a:high",            # non-numeric probability
        "a:0.5:x",           # non-numeric seed
        "a:1.5",             # probability out of range
        ":0.5",              # empty site
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.parse("a:0.5,a:0.1")

    def test_from_env(self):
        assert FaultPlan.from_env(environ={}) is None
        plan = FaultPlan.from_env(environ={ENV_VAR: "a:0.5:7"})
        assert plan.rules["a"].seed == 7


class TestDeterminism:
    def test_same_seed_same_firing_sequence(self):
        first = FaultPlan.parse("site:0.3:42")
        second = FaultPlan.parse("site:0.3:42")
        outcomes = [first.should_fail("site") for _ in range(64)]
        assert outcomes == [second.should_fail("site") for _ in range(64)]
        assert any(outcomes) and not all(outcomes)

    def test_sites_draw_from_independent_streams(self):
        """Interleaved draws at one site never perturb another site's."""
        alone = FaultPlan.parse("a:0.3:1")
        mixed = FaultPlan.parse("a:0.3:1,b:0.9:2")
        interleaved = []
        for _ in range(32):
            interleaved.append(mixed.should_fail("a"))
            mixed.should_fail("b")
        assert interleaved == [alone.should_fail("a") for _ in range(32)]

    def test_counters_track_draws_and_fires(self):
        plan = FaultPlan.parse("a:1.0:0,b:0.0:0")
        for _ in range(5):
            plan.should_fail("a")
            plan.should_fail("b")
        assert plan.draws == {"a": 5, "b": 5}
        assert plan.fired == {"a": 5, "b": 0}

    def test_unknown_site_never_fails_or_draws(self):
        plan = FaultPlan.parse("a:1.0")
        assert plan.should_fail("unlisted") is False
        assert plan.draws == {"a": 0}


class TestMaybeFail:
    def test_noop_without_plan(self):
        faults.clear()
        faults.maybe_fail("anything")  # must not raise

    def test_raises_typed_fault_with_site_and_draw(self):
        with faults.inject("boom:1.0:5"):
            with pytest.raises(InjectedFault) as err:
                faults.maybe_fail("boom")
        assert err.value.site == "boom"
        assert err.value.draw == 0

    def test_zero_probability_never_fires(self):
        with faults.inject("quiet:0.0"):
            for _ in range(100):
                faults.maybe_fail("quiet")

    def test_inject_restores_previous_plan(self):
        outer = faults.install("outer:1.0")
        with faults.inject("inner:1.0") as inner:
            assert faults.active() is inner
        assert faults.active() is outer
        faults.clear()
        assert faults.active() is None

    def test_install_accepts_spec_string(self):
        plan = faults.install("x:0.5:9")
        assert isinstance(plan, FaultPlan)
        assert faults.active() is plan

    def test_obs_counter_incremented(self, obs_enabled):
        with faults.inject("boom:1.0"):
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    faults.maybe_fail("boom")
        counter = obs.get_registry().get("resilience.faults.injected",
                                         site="boom")
        assert counter is not None and counter.value == 3

    def test_library_sites_are_documented(self):
        for site, description in KNOWN_SITES.items():
            assert "." in site and description
