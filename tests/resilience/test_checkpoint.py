"""CheckpointManager: atomic saves, integrity checks, retention, resume."""

import json

import numpy as np
import pytest

from repro import obs
from repro.errors import ArtifactError
from repro.nn import Adam, Linear
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    TrainState,
)


def _training_setup(seed: int = 0):
    """A tiny module + optimiser with non-trivial Adam moments."""
    module = Linear(4, 3, rng=seed)
    optimizer = Adam(module.parameters(), lr=1e-3)
    rng = np.random.default_rng(seed)
    for param in optimizer.params:
        param.grad = rng.normal(size=param.data.shape)
    optimizer.step()
    return module, optimizer, rng


def _capture(epoch: int = 1, seed: int = 0) -> tuple:
    module, optimizer, rng = _training_setup(seed)
    order = rng.permutation(10)
    history = {"losses": [0.5, 0.25], "accuracies": [0.6, 0.8]}
    state = TrainState.capture(epoch, module, optimizer, rng, order, history)
    return state, module, optimizer, rng, order, history


class TestTrainState:
    def test_capture_is_a_deep_copy(self):
        state, module, optimizer, rng, order, history = _capture()
        module.weight.data += 1.0
        order[:] = 0
        history["losses"].append(99.0)
        rng.random()
        assert not np.array_equal(state.model_state["weight"],
                                  module.state_dict()["weight"])
        assert not np.array_equal(state.order, order)
        assert state.history["losses"] == [0.5, 0.25]
        assert state.rng_state != rng.bit_generator.state

    def test_restore_round_trips_everything(self):
        state, module, optimizer, rng, order, history = _capture()
        reference = np.random.default_rng(0)
        reference.bit_generator.state = state.rng_state
        expected_draw = reference.random()

        # Trash the live objects, then restore.
        for param in module.parameters():
            param.data[:] = -1.0
        optimizer.lr = 99.0
        order[:] = 0
        history["losses"].clear()
        state.restore(module, optimizer, rng, order, history)

        assert np.array_equal(module.state_dict()["weight"],
                              state.model_state["weight"])
        assert optimizer.lr == state.optimizer_state["lr"]
        assert np.array_equal(order, state.order)
        assert history["losses"] == [0.5, 0.25]
        assert rng.random() == expected_draw

    def test_restore_rejects_mismatched_order_shape(self):
        state, module, optimizer, rng, _, history = _capture()
        with pytest.raises(ArtifactError, match="training examples"):
            state.restore(module, optimizer, rng, np.arange(7), history)


class TestCheckpointManager:
    def test_save_load_round_trip_is_exact(self, tmp_path):
        state = _capture(epoch=3)[0]
        manager = CheckpointManager(tmp_path)
        slot = manager.save(state)
        assert slot.name == "epoch-0003"

        loaded = manager.load(3)
        assert loaded.epoch == 3
        for name, value in state.model_state.items():
            assert np.array_equal(loaded.model_state[name], value)
        assert loaded.optimizer_state["t"] == state.optimizer_state["t"]
        assert loaded.optimizer_state["lr"] == state.optimizer_state["lr"]
        for key in ("m", "v"):
            for got, want in zip(loaded.optimizer_state[key],
                                 state.optimizer_state[key]):
                assert np.array_equal(got, want)
        assert loaded.rng_state == state.rng_state
        assert np.array_equal(loaded.order, state.order)
        assert loaded.history == state.history

    def test_retention_keeps_newest(self, tmp_path, obs_enabled):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(1, 5):
            manager.save(_capture(epoch=epoch)[0])
        assert manager.epochs() == [3, 4]
        pruned = obs.get_registry().get("resilience.checkpoint.pruned")
        assert pruned is not None and pruned.value == 2

    def test_latest_skips_corrupt_snapshot(self, tmp_path, obs_enabled):
        manager = CheckpointManager(tmp_path)
        manager.save(_capture(epoch=1)[0])
        manager.save(_capture(epoch=2)[0])
        # Flip bytes in the newest snapshot's payload.
        payload = tmp_path / "epoch-0002" / "state.npz"
        payload.write_bytes(b"garbage" + payload.read_bytes()[7:])
        state = manager.latest()
        assert state is not None and state.epoch == 1
        corrupt = obs.get_registry().get("resilience.checkpoint.corrupt")
        assert corrupt is not None and corrupt.value == 1

    def test_latest_on_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path / "nothing").latest() is None

    def test_load_rejects_schema_mismatch(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_capture(epoch=1)[0])
        manifest_path = tmp_path / "epoch-0001" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema version"):
            manager.load(1)

    def test_load_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            CheckpointManager(tmp_path).load(5)

    def test_leftover_tmp_dir_is_invisible(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_capture(epoch=1)[0])
        (tmp_path / ".tmp-epoch-0002").mkdir()
        assert manager.epochs() == [1]
        assert manager.latest().epoch == 1

    def test_resave_same_epoch_overwrites(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_capture(epoch=1, seed=0)[0])
        replacement = _capture(epoch=1, seed=7)[0]
        manager.save(replacement)
        assert manager.epochs() == [1]
        assert np.array_equal(manager.load(1).model_state["weight"],
                              replacement.model_state["weight"])

    def test_crash_during_rename_preserves_previous_snapshots(
            self, tmp_path, monkeypatch):
        """A kill at the atomic-rename instant loses nothing already saved."""
        manager = CheckpointManager(tmp_path)
        manager.save(_capture(epoch=1)[0])

        import repro.resilience.checkpoint as checkpoint_mod

        def crash(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(checkpoint_mod.os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            manager.save(_capture(epoch=2)[0])
        monkeypatch.undo()

        # Only the hidden tmp dir was left behind; resume still works.
        assert manager.epochs() == [1]
        state = manager.latest()
        assert state is not None and state.epoch == 1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep_last=0)
