"""Retry decorator: backoff schedule, attempt log, exhaustion semantics."""

import pytest

from repro import obs
from repro.errors import RetryExhaustedError
from repro.resilience.retry import Backoff, retry


class TestBackoff:
    def test_exponential_schedule(self):
        schedule = Backoff(base=0.1, factor=2.0, max_delay=0.35)
        assert schedule.delay(1) == pytest.approx(0.1)
        assert schedule.delay(2) == pytest.approx(0.2)
        assert schedule.delay(3) == pytest.approx(0.35)  # capped
        assert schedule.delay(9) == pytest.approx(0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(base=-1.0)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)
        with pytest.raises(ValueError):
            Backoff().delay(0)


class TestRetry:
    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        @retry(attempts=3, backoff=Backoff(base=0.1), retry_on=(OSError,),
               sleep=slept.append)
        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(f"transient #{calls['n']}")
            return "ok"

        assert flaky() == "ok"
        assert calls["n"] == 3
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_exhaustion_carries_ordered_attempt_log(self):
        slept = []

        @retry(attempts=3, backoff=Backoff(base=0.1), retry_on=(OSError,),
               sleep=slept.append, name="doomed-op")
        def doomed():
            raise OSError(f"failure #{len(slept)}")

        with pytest.raises(RetryExhaustedError) as err:
            doomed()
        exc = err.value
        assert exc.attempts == 3
        assert [a.attempt for a in exc.attempt_log] == [1, 2, 3]
        # Delays are logged per attempt; nothing is slept after the last.
        assert [a.delay for a in exc.attempt_log] == [
            pytest.approx(0.1), pytest.approx(0.2), 0.0]
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]
        assert [str(a.error) for a in exc.attempt_log] == [
            "failure #0", "failure #1", "failure #2"]
        assert exc.__cause__ is exc.attempt_log[-1].error
        assert "doomed-op" in str(exc)

    def test_non_retryable_error_propagates_immediately(self):
        calls = {"n": 0}

        @retry(attempts=5, retry_on=(OSError,), sleep=lambda _: None)
        def wrong_kind():
            calls["n"] += 1
            raise ValueError("a bug, not a flake")

        with pytest.raises(ValueError):
            wrong_kind()
        assert calls["n"] == 1

    def test_single_attempt_never_sleeps(self):
        slept = []

        @retry(attempts=1, retry_on=(OSError,), sleep=slept.append)
        def once():
            raise OSError("nope")

        with pytest.raises(RetryExhaustedError):
            once()
        assert slept == []

    def test_deterministic_across_runs(self):
        def run():
            slept = []

            @retry(attempts=4, backoff=Backoff(base=0.05),
                   retry_on=(OSError,), sleep=slept.append)
            def doomed():
                raise OSError("x")

            with pytest.raises(RetryExhaustedError) as err:
                doomed()
            return slept, [a.delay for a in err.value.attempt_log]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError):
            retry(attempts=0)

    def test_obs_counters(self, obs_enabled):
        @retry(attempts=2, retry_on=(OSError,), sleep=lambda _: None,
               name="probe")
        def doomed():
            raise OSError("x")

        with pytest.raises(RetryExhaustedError):
            doomed()
        registry = obs.get_registry()
        attempts = registry.get("resilience.retry.attempts", op="probe")
        exhausted = registry.get("resilience.retry.exhausted", op="probe")
        assert attempts is not None and attempts.value == 2
        assert exhausted is not None and exhausted.value == 1
