"""NumericGuard unit behaviour: detection thresholds and rollback budget."""

import numpy as np
import pytest

from repro import obs
from repro.errors import NumericalError
from repro.nn import Adam, Linear
from repro.nn.tensor import parameter
from repro.resilience.guards import GuardPolicy, NumericGuard


class TestPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            GuardPolicy(divergence_factor=1.0)
        with pytest.raises(ValueError):
            GuardPolicy(max_rollbacks=-1)
        with pytest.raises(ValueError):
            GuardPolicy(lr_backoff=1.0)
        with pytest.raises(ValueError):
            GuardPolicy(lr_backoff=0.0)


class TestDetection:
    def test_check_loss_passes_finite_values_through(self):
        assert NumericGuard().check_loss(0.25, "here") == 0.25

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_check_loss_raises_on_nonfinite(self, bad, obs_enabled):
        with pytest.raises(NumericalError, match="non-finite loss"):
            NumericGuard().check_loss(bad, "batch 3")
        counter = obs.get_registry().get("resilience.guard.trips",
                                         kind="nonfinite_loss")
        assert counter is not None and counter.value == 1

    def test_check_gradients_raises_on_nan(self, obs_enabled):
        params = [parameter(np.zeros(3)), parameter(np.zeros(2))]
        params[0].grad = np.zeros(3)
        params[1].grad = np.array([0.0, np.nan])
        with pytest.raises(NumericalError, match="parameter #1"):
            NumericGuard().check_gradients(params, "batch 0")
        counter = obs.get_registry().get("resilience.guard.trips",
                                         kind="nonfinite_grad")
        assert counter is not None and counter.value == 1

    def test_check_gradients_can_be_disabled(self):
        guard = NumericGuard(GuardPolicy(check_gradients=False))
        bad = parameter(np.zeros(1))
        bad.grad = np.array([np.nan])
        guard.check_gradients([bad], "anywhere")  # must not raise

    def test_check_gradients_skips_unset_grads(self):
        NumericGuard().check_gradients([parameter(np.zeros(2))], "x")

    def test_divergence_bound(self, obs_enabled):
        guard = NumericGuard(GuardPolicy(divergence_factor=2.0))
        guard.check_epoch(1.0, epoch=0)
        guard.check_epoch(1.9, epoch=1)   # under 2 x best: fine
        guard.check_epoch(0.5, epoch=2)   # new best
        with pytest.raises(NumericalError, match="divergence"):
            guard.check_epoch(1.1, epoch=3)
        counter = obs.get_registry().get("resilience.guard.trips",
                                         kind="divergence")
        assert counter is not None and counter.value == 1

    def test_first_epoch_never_diverges(self):
        NumericGuard(GuardPolicy(divergence_factor=1.5)).check_epoch(1e9, 0)


class TestRecovery:
    def test_rollback_budget(self, obs_enabled):
        guard = NumericGuard(GuardPolicy(max_rollbacks=2))
        assert guard.admit_rollback()
        assert guard.admit_rollback()
        assert not guard.admit_rollback()
        registry = obs.get_registry()
        assert registry.get("resilience.guard.rollbacks").value == 2
        assert registry.get("resilience.guard.retries_exhausted").value == 1

    def test_decay_lr_halves_and_floors(self):
        guard = NumericGuard(GuardPolicy(lr_backoff=0.5, min_lr=3e-4))
        optimizer = Adam(Linear(2, 2, rng=0).parameters(), lr=1e-3)
        assert guard.decay_lr(optimizer) == pytest.approx(5e-4)
        assert guard.decay_lr(optimizer) == pytest.approx(3e-4)
        assert guard.decay_lr(optimizer) == pytest.approx(3e-4)
