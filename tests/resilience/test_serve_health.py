"""Serving resilience: retry-before-degrade, health checks, CLI exit codes."""

import json

import pytest

from repro import obs
from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.core.sem import SEMConfig
from repro.data import load_acm
from repro.experiments.protocol import split_task_by_year
from repro.resilience import faults
from repro.serve import save_pipeline
from repro.serve.__main__ import main as serve_main
from repro.serve.index import ServingIndex


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """(directory, task): one small fitted pipeline saved to disk."""
    corpus = load_acm(scale=0.25, seed=None)
    task = split_task_by_year(corpus, 2014, n_users=4, candidate_size=30,
                              seed=0)
    config = NPRecConfig(sem=SEMConfig(n_triplets=30, epochs=1),
                         epochs=2, max_positives=60, seed=3)
    recommender = NPRecRecommender(config).fit(
        task.corpus, task.train_papers, task.new_papers)
    directory = str(tmp_path_factory.mktemp("resil-serve") / "artifact")
    save_pipeline(recommender, directory, corpus=task.corpus)
    return directory, task


def _transient_seed(probability: float) -> int:
    """A seed whose first draw fires and whose second does not."""
    import numpy as np
    for seed in range(500):
        rng = np.random.default_rng(seed)
        if rng.random() < probability and rng.random() >= probability:
            return seed
    raise RuntimeError("no transient seed found")  # pragma: no cover


class TestFromArtifactRetry:
    def test_transient_fault_is_retried_away(self, artifact, obs_enabled):
        directory, task = artifact
        seed = _transient_seed(0.6)
        with faults.inject(f"artifact.load:0.6:{seed}"):
            index = ServingIndex.from_artifact(directory,
                                               papers=task.new_papers)
        assert not index.degraded
        attempts = obs.get_registry().get("resilience.retry.attempts",
                                          op="artifact.load")
        assert attempts is not None and attempts.value == 1

    def test_persistent_fault_degrades_not_crashes(self, artifact,
                                                   obs_enabled):
        directory, task = artifact
        with faults.inject("artifact.load:1.0"):
            index = ServingIndex.from_artifact(directory,
                                               papers=task.new_papers)
        assert index.degraded
        degraded = obs.get_registry().get("serve.degraded",
                                          reason="artifact_load_failed")
        assert degraded is not None and degraded.value == 1
        exhausted = obs.get_registry().get("resilience.retry.exhausted",
                                           op="serve.from_artifact")
        assert exhausted is not None and exhausted.value == 1
        # Degraded is still serving: TF-IDF answers the query.
        user = task.users[0]
        top = index.top_k(list(user.train_papers), k=5)
        assert len(top) == 5 and set(top) <= set(index.paper_ids)
        # The health report surfaces the failed attempts for operators.
        report = index.health()
        assert report["degraded"] and not report["healthy"]
        assert report["degraded_reason"] == "artifact_load_failed"
        assert [a["attempt"] for a in report["load_attempts"]] == [1, 2, 3]


class TestHealthReport:
    def test_healthy_index(self, artifact, obs_enabled):
        directory, task = artifact
        index = ServingIndex.from_artifact(directory, papers=task.new_papers)
        report = index.health()
        assert report["healthy"] and not report["degraded"]
        assert report["checks"]["artifact"]["ok"]
        assert report["checks"]["embeddings"]["ok"]
        assert report["checks"]["fallback"]["probed"]
        gauge = obs.get_registry().get("serve.healthy")
        assert gauge is not None and gauge.value == 1.0

    def test_query_fault_degrades_single_answer(self, artifact, obs_enabled):
        directory, task = artifact
        index = ServingIndex.from_artifact(directory, papers=task.new_papers)
        user = task.users[0]
        with faults.inject("serve.query:1.0"):
            top = index.top_k(list(user.train_papers), k=5)
        assert len(top) == 5
        degraded = obs.get_registry().get("serve.degraded",
                                          reason="query_fault")
        assert degraded is not None and degraded.value == 1
        # The degraded answer was not cached: the model path now recovers
        # and is allowed to disagree with the TF-IDF fallback answer.
        assert not index.degraded
        assert index.top_k(list(user.train_papers), k=5)


class TestSLOHealth:
    def test_default_latency_slos_registered_and_reported(self, artifact,
                                                          obs_enabled):
        directory, task = artifact
        index = ServingIndex.from_artifact(directory, papers=task.new_papers)
        report = index.health()
        kinds = {s["slo"]: s["kind"] for s in report["slos"]}
        assert kinds.get("serve.query.p99") == "latency"
        assert kinds.get("serve.ingest.p99") == "latency"
        assert kinds.get("serve.error_budget") == "error_rate"
        # An idle index has no latency samples: SLOs report no-data, not
        # a breach, and the index stays healthy.
        assert report["slo_breaches"] == []
        assert report["healthy"]

    def test_queries_feed_the_latency_quantiles(self, artifact, obs_enabled):
        directory, task = artifact
        index = ServingIndex.from_artifact(directory, papers=task.new_papers)
        user = task.users[0]
        for _ in range(3):
            index.top_k(list(user.train_papers), k=5)
        # Latency twins are split by cache outcome: the first query is a
        # miss, the repeats hit the LRU cache.
        registry = obs.get_registry()
        miss = registry.get("serve.query.latency", cache="miss")
        hit = registry.get("serve.query.latency", cache="hit")
        assert miss is not None and miss.count == 1
        assert hit is not None and hit.count == 2
        histogram = registry.get("serve.query.duration_seconds", cache="hit")
        assert histogram is not None and histogram.count == 2

    def test_latency_breach_makes_index_unhealthy(self, artifact, obs_enabled):
        directory, task = artifact
        index = ServingIndex.from_artifact(directory, papers=task.new_papers)
        # Force the p99 sketch over the 250ms objective: a sustained run
        # of slow queries, as the monitor would see it.
        for _ in range(30):
            obs.observe_quantile("serve.query.latency", 2.0)
        report = index.health()
        assert "serve.query.p99" in report["slo_breaches"]
        assert not report["healthy"]
        assert not report["degraded"]  # breached, not degraded

    def test_error_budget_breach(self, artifact, obs_enabled):
        directory, task = artifact
        index = ServingIndex.from_artifact(directory, papers=task.new_papers)
        obs.count("serve.queries", 10)
        obs.count("serve.degraded", 3, reason="query_fault")
        report = index.health()
        assert "serve.error_budget" in report["slo_breaches"]
        assert not report["healthy"]


class TestHealthCli:
    def test_healthy_exit_zero(self, artifact, capsys):
        directory, _ = artifact
        assert serve_main(["health", "--dir", directory]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)  # stdout stays pure JSON
        assert report["healthy"] is True
        # Acceptance criterion: the CLI reports at least one registered
        # latency SLO (human lines on stderr).
        assert "SLO [serve.query.p99] (latency):" in captured.err

    def test_cli_restores_obs_state(self, artifact):
        directory, _ = artifact
        obs.configure(enabled=False, reset=True)
        serve_main(["health", "--dir", directory])
        assert not obs.is_enabled()
        obs.configure(reset=True)

    def test_injected_verify_fault_exits_nonzero(self, artifact, capsys):
        directory, _ = artifact
        with faults.inject("artifact.verify:1.0"):
            code = serve_main(["health", "--dir", directory])
        captured = capsys.readouterr()
        assert code == 1
        report = json.loads(captured.out)
        assert report["healthy"] is False
        assert report["degraded"] is True
        assert report["degraded_reason"] == "artifact_load_failed"
        assert "UNHEALTHY" in captured.err

    def test_missing_artifact_exits_nonzero(self, tmp_path, capsys):
        code = serve_main(["health", "--dir", str(tmp_path / "absent")])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["degraded"] is True
