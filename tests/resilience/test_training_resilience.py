"""Trainer-level resilience: bit-identical resume and guarded rollback.

The resume tests are the contract at the heart of repro.resilience: a
run that is killed and resumed from its newest checkpoint must produce
*exactly* the history and weights of a run that never stopped — float
equality, not approx.
"""

import math

import numpy as np
import pytest

import repro.core.nprec.trainer as nprec_trainer_mod
from repro.core.annotation import annotate_triplets
from repro.core.nprec import NPRecModel, NPRecTrainer, build_training_pairs
from repro.core.rules import ExpertRuleSet
from repro.core.subspace_model import SubspaceEmbeddingNetwork
from repro.core.twin import TwinNetworkTrainer
from repro.data import load_acm, load_scopus
from repro.errors import InjectedFault, NumericalError
from repro.graph import build_academic_network
from repro.resilience import faults
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.guards import GuardPolicy, NumericGuard
from repro.text import SentenceEncoder

EPOCHS = 4


def _fault_seed(probability: float, lo: int, hi: int) -> int:
    """A rule seed whose first firing draw lands in ``[lo, hi)``."""
    for seed in range(500):
        rng = np.random.default_rng(seed)
        for draw in range(hi):
            if rng.random() < probability:
                break
        else:
            continue
        if lo <= draw < hi:
            return seed
    raise RuntimeError("no suitable fault seed in range")  # pragma: no cover


# ----------------------------------------------------------------------
# NPRec setup
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def nprec_setup():
    corpus = load_acm(scale=0.2, seed=11)
    train, new = corpus.split_by_year(2014)
    everyone = list(train) + list(new)
    graph = build_academic_network(corpus, papers=everyone,
                                   citation_whitelist={p.id for p in train})
    rng = np.random.default_rng(0)
    text = {p.id: rng.normal(size=12) for p in everyone}
    pairs = build_training_pairs(train, strategy="citation",
                                 negative_ratio=2, max_positives=24, seed=0)

    def make_trainer(**kwargs):
        model = NPRecModel(graph, text, dim=8, neighbor_k=4, depth=2, seed=0)
        defaults = dict(lr=1e-2, epochs=EPOCHS, batch_size=32, seed=0)
        defaults.update(kwargs)
        return NPRecTrainer(model, **defaults)

    return make_trainer, pairs


# ----------------------------------------------------------------------
# Twin setup
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def twin_setup():
    papers = load_scopus(scale=0.15, seed=5).papers[:40]
    encoder = SentenceEncoder(dim=16)
    rules = ExpertRuleSet(encoder).fit(papers, n_pairs=30, seed=0)
    triplets = annotate_triplets(papers, rules, n_triplets=20, min_gap=0.1,
                                 seed=0)
    encoded = {}
    for paper in papers:
        H = encoder.encode(paper.abstract)
        labels = list(paper.sentence_labels)[:H.shape[0]]
        encoded[paper.id] = (H[:len(labels)], labels)

    def make_trainer(**kwargs):
        network = SubspaceEmbeddingNetwork(in_dim=16, hidden_dims=(24,),
                                           out_dim=8, rng=0)
        defaults = dict(distance="euclidean", lr=2e-3, epochs=EPOCHS,
                        batch_size=8, seed=0)
        defaults.update(kwargs)
        return TwinNetworkTrainer(network, **defaults)

    return make_trainer, triplets, encoded


def _assert_same_weights(left, right):
    left_state, right_state = left.state_dict(), right.state_dict()
    assert set(left_state) == set(right_state)
    for name, value in left_state.items():
        assert np.array_equal(value, right_state[name]), name


# ----------------------------------------------------------------------
# Bit-identical resume
# ----------------------------------------------------------------------
class TestResumeBitIdentity:
    def test_nprec_killed_run_resumes_bit_identically(self, nprec_setup,
                                                      tmp_path):
        make_trainer, pairs = nprec_setup
        baseline_trainer = make_trainer()
        baseline = baseline_trainer.train(pairs)

        n_batches = math.ceil(len(pairs) / 32)
        seed = _fault_seed(0.25, lo=n_batches, hi=EPOCHS * n_batches)
        trainer = make_trainer(checkpoint=tmp_path / "ckpt")
        with faults.inject(f"trainer.batch:0.25:{seed}"):
            with pytest.raises(InjectedFault):
                trainer.train(pairs)
        # At least one epoch completed before the kill ...
        saved = CheckpointManager(tmp_path / "ckpt").epochs()
        assert saved and max(saved) < EPOCHS
        # ... and the resumed run matches the uninterrupted one exactly.
        history = trainer.train(pairs, resume=True)
        assert history.losses == baseline.losses
        assert history.accuracies == baseline.accuracies
        _assert_same_weights(trainer.model, baseline_trainer.model)

    def test_twin_fresh_trainer_resumes_bit_identically(self, twin_setup,
                                                        tmp_path):
        """Resume across a 'process boundary': a brand-new trainer picks
        up a previous trainer's checkpoints and lands on the same bits."""
        make_trainer, triplets, encoded = twin_setup
        baseline_trainer = make_trainer()
        baseline = baseline_trainer.train(triplets, encoded)

        first = make_trainer(epochs=2, checkpoint=tmp_path / "ckpt")
        first.train(triplets, encoded)

        second = make_trainer(checkpoint=tmp_path / "ckpt")
        history = second.train(triplets, encoded, resume=True)
        assert history.losses == baseline.losses
        assert history.violation_rates == baseline.violation_rates
        _assert_same_weights(second.network, baseline_trainer.network)

    def test_resume_requires_checkpoint(self, twin_setup):
        make_trainer, triplets, encoded = twin_setup
        with pytest.raises(ValueError, match="resume=True requires"):
            make_trainer().train(triplets, encoded, resume=True)

    def test_resume_with_no_snapshots_trains_from_scratch(self, twin_setup,
                                                          tmp_path):
        make_trainer, triplets, encoded = twin_setup
        baseline = make_trainer().train(triplets, encoded)
        trainer = make_trainer(checkpoint=tmp_path / "empty")
        history = trainer.train(triplets, encoded, resume=True)
        assert history.losses == baseline.losses

    def test_checkpoint_every_skips_intermediate_epochs(self, twin_setup,
                                                        tmp_path):
        make_trainer, triplets, encoded = twin_setup
        trainer = make_trainer(epochs=3, checkpoint=tmp_path / "ckpt",
                               checkpoint_every=2)
        trainer.train(triplets, encoded)
        # Epoch 2 (multiple of 2) and the final epoch 3 are snapshotted.
        assert CheckpointManager(tmp_path / "ckpt").epochs() == [2, 3]


# ----------------------------------------------------------------------
# Guard trips and rollback inside the epoch loop
# ----------------------------------------------------------------------
class TestGuardedTraining:
    def test_nan_loss_rolls_back_and_recovers(self, nprec_setup, monkeypatch):
        make_trainer, pairs = nprec_setup
        original = nprec_trainer_mod.binary_cross_entropy_with_logits
        calls = {"n": 0}

        def poisoned(logits, labels):
            calls["n"] += 1
            loss = original(logits, labels)
            return loss * float("nan") if calls["n"] == 1 else loss

        monkeypatch.setattr(nprec_trainer_mod,
                            "binary_cross_entropy_with_logits", poisoned)
        trainer = make_trainer(epochs=2, guard=True)
        initial_lr = trainer.optimizer.lr
        history = trainer.train(pairs)

        # The poisoned first batch tripped the guard, the epoch was
        # retried from its start, and training still completed in full.
        assert len(history.losses) == 2
        assert all(math.isfinite(x) for x in history.losses)
        assert trainer.guard.rollbacks_used == 1
        assert trainer.optimizer.lr == pytest.approx(initial_lr * 0.5)

    def test_persistent_fault_exhausts_rollback_budget(self, twin_setup):
        make_trainer, triplets, encoded = twin_setup
        trainer = make_trainer(guard=GuardPolicy(max_rollbacks=2))
        with faults.inject("trainer.batch:1.0"):
            with pytest.raises(InjectedFault):
                trainer.train(triplets, encoded)
        assert trainer.guard.rollbacks_used == 2

    def test_fault_without_guard_propagates(self, twin_setup):
        make_trainer, triplets, encoded = twin_setup
        with faults.inject("trainer.batch:1.0"):
            with pytest.raises(InjectedFault):
                make_trainer().train(triplets, encoded)

    def test_guard_accepts_policy_and_bool(self, twin_setup):
        make_trainer, _, _ = twin_setup
        assert isinstance(make_trainer(guard=True).guard, NumericGuard)
        custom = make_trainer(guard=GuardPolicy(max_rollbacks=5)).guard
        assert custom.policy.max_rollbacks == 5
        assert make_trainer(guard=None).guard is None
        assert make_trainer(guard=False).guard is None

    def test_guarded_run_matches_unguarded_when_quiet(self, twin_setup):
        """With no trips, the guard must not change a single bit."""
        make_trainer, triplets, encoded = twin_setup
        plain_trainer = make_trainer(epochs=2)
        plain = plain_trainer.train(triplets, encoded)
        guarded_trainer = make_trainer(epochs=2, guard=True)
        guarded = guarded_trainer.train(triplets, encoded)
        assert guarded.losses == plain.losses
        _assert_same_weights(guarded_trainer.network, plain_trainer.network)
