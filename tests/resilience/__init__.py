"""Tests for repro.resilience: faults, retry, checkpoints, guards, health."""
