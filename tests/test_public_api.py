"""Public-API integrity: __all__ exports resolve and READMEs snippets run."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.text",
    "repro.data",
    "repro.graph",
    "repro.cluster",
    "repro.analysis",
    "repro.core",
    "repro.core.nprec",
    "repro.baselines",
    "repro.experiments",
    "repro.resilience",
    "repro.utils",
    "repro.viz",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_items_documented(package):
    module = importlib.import_module(package)
    assert module.__doc__ and module.__doc__.strip()
    for name in module.__all__:
        item = getattr(module, name)
        if callable(item) and not isinstance(item, type):
            assert item.__doc__, f"{package}.{name} lacks a docstring"
        elif isinstance(item, type):
            assert item.__doc__, f"{package}.{name} lacks a docstring"


def test_readme_quickstart_snippet_runs():
    """The README's SEM snippet must work verbatim (smaller scale)."""
    from repro import load_scopus, SubspaceEmbeddingMethod, SEMConfig
    from repro.analysis import spearman_correlation

    corpus = load_scopus(scale=0.2)
    papers = corpus.by_field("computer_science")
    sem = SubspaceEmbeddingMethod(SEMConfig(seed=0, n_triplets=10, epochs=1))
    sem.fit(papers)
    scores = sem.outlier_scores(papers, subspace=1)
    rho = spearman_correlation(scores, [p.citation_count for p in papers])
    assert -1.0 <= rho <= 1.0


def test_readme_recommendation_snippet_runs():
    from repro import NPRecRecommender, NPRecConfig, load_acm
    from repro.core.sem import SEMConfig
    from repro.experiments import split_task_by_year

    corpus = load_acm(scale=0.25)
    task = split_task_by_year(corpus, 2014, n_users=3, candidate_size=10,
                              min_prefix=5)
    rec = NPRecRecommender(NPRecConfig(seed=0, epochs=1, max_positives=30,
                                       sem=SEMConfig(n_triplets=10, epochs=1)))
    rec.fit(task.corpus, task.train_papers, task.new_papers)
    user = task.users[0]
    top = rec.rank(list(user.train_papers), user.candidate_set(10))[:5]
    assert len(top) == 5


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
