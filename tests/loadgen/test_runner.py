"""Loop execution, trace propagation across threads, and the BENCH report."""

import json

import pytest

from repro import obs
from repro.loadgen import (
    REPORT_SCHEMA_VERSION,
    LoadRunner,
    WorkloadMix,
    build_report,
    build_schedule,
    write_report,
)
from tests.loadgen.conftest import USER_IDS


def make_schedule(template_papers, n=40, **overrides):
    options = dict(mode="closed", concurrency=3, seed=0)
    options.update(overrides)
    return build_schedule(list(USER_IDS), template_papers, n, **options)


class TestClosedLoop:
    def test_completes_every_request(self, degraded_index, template_papers,
                                     obs_enabled):
        schedule = make_schedule(template_papers)
        runner = LoadRunner(degraded_index, schedule)
        summary = runner.run()
        assert summary.completed == len(schedule) == summary.scheduled
        assert summary.errors == 0
        assert sum(summary.by_kind.values()) == summary.completed
        assert runner.telemetry.total == summary.completed
        assert summary.duration > 0 and summary.achieved_qps > 0

    def test_kind_counts_follow_the_schedule(self, degraded_index,
                                             template_papers, obs_enabled):
        schedule = make_schedule(template_papers, n=60)
        expected = {}
        for request in schedule.requests:
            expected[request.kind] = expected.get(request.kind, 0) + 1
        summary = LoadRunner(degraded_index, schedule).run()
        assert summary.by_kind == expected

    def test_latency_family_tracks_p95(self, degraded_index, template_papers,
                                       obs_enabled):
        schedule = make_schedule(template_papers)
        summary = LoadRunner(degraded_index, schedule).run()
        registry = obs.get_registry()
        overall = registry.get("loadgen.request.latency")
        assert overall is not None and overall.count == summary.completed
        assert 0.95 in overall.quantiles
        for kind, count in summary.by_kind.items():
            child = registry.get("loadgen.request.latency", kind=kind)
            assert child is not None and child.count == count

    def test_errors_are_caught_and_counted(self, degraded_index,
                                           template_papers, obs_enabled):
        schedule = make_schedule(template_papers, n=60)
        ingests = sum(1 for r in schedule.requests if r.kind == "ingest")
        assert ingests > 0
        LoadRunner(degraded_index, schedule).run()
        # Replaying the same schedule re-ingests the same paper ids:
        # every ingest now raises the duplicate-id guard. The workers
        # must survive and count, not crash.
        summary = LoadRunner(degraded_index, schedule).run()
        assert summary.completed == len(schedule)
        assert summary.errors == ingests
        assert summary.errors_by_kind == {"ingest": ingests}
        assert summary.error_rate == pytest.approx(ingests / len(schedule))
        total = obs.get_registry().family_total("loadgen.request.errors")
        assert total == ingests

    def test_trace_ids_propagate_across_worker_threads(
            self, degraded_index, template_papers, obs_enabled, tmp_path):
        schedule = make_schedule(template_papers, concurrency=4)
        LoadRunner(degraded_index, schedule).run()
        reservoir = obs.get_exemplars()
        exemplars = reservoir.slowest() + reservoir.errored()
        assert exemplars
        # Every exemplar kept a coherent span tree: a trace id of its
        # own, stamped on each retained span.
        ids = [e.trace_id for e in exemplars]
        assert all(ids) and len(set(ids)) == len(ids)
        for exemplar in exemplars:
            assert exemplar.spans
            assert {s["trace_id"] for s in exemplar.spans} == \
                   {exemplar.trace_id}
        # ... and each one joins back to span lines in the JSONL capture.
        path = tmp_path / "load.jsonl"
        obs.write_jsonl(path)
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        span_ids = {l["trace_id"] for l in lines if l.get("type") == "span"}
        for exemplar in exemplars:
            assert exemplar.trace_id in span_ids

    def test_latency_exemplars_join_to_capture(self, degraded_index,
                                               template_papers, obs_enabled,
                                               tmp_path):
        # The p99-tail-to-span-tree join on the *real* serving paths:
        # every latency child touched by the run carries a trace-id
        # exemplar, and each of those ids resolves to span lines in the
        # same JSONL capture.
        schedule = make_schedule(template_papers)
        LoadRunner(degraded_index, schedule).run()
        path = tmp_path / "load.jsonl"
        obs.write_jsonl(path)
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        span_ids = {l["trace_id"] for l in lines if l.get("type") == "span"}
        registry = obs.get_registry()
        for family in ("loadgen.request.latency", "serve.query.latency"):
            children = registry.family(family)
            assert children, f"no children recorded for {family}"
            for child in children:
                assert child.exemplar is not None, (family, child.labels)
                assert child.exemplar["trace_id"] in span_ids

    def test_probe_requests_degrade_and_emit_events(
            self, degraded_index, template_papers, obs_enabled):
        schedule = make_schedule(
            template_papers, n=10,
            mix=WorkloadMix(query=0, ingest=0, probe=1))
        summary = LoadRunner(degraded_index, schedule).run()
        assert summary.by_kind == {"probe": 10}
        assert runner_degraded_total() >= 10
        assert obs_degraded_events() >= 10
        assert LoadRunner(degraded_index, schedule).telemetry.degraded == 0


def runner_degraded_total():
    return obs.get_registry().family_total("serve.degraded")


def obs_degraded_events():
    state = obs.configure()
    return sum(1 for e in state.events if e["name"] == "serve.degraded"
               and e["trace_id"] is not None)


class TestOpenLoop:
    def test_open_loop_completes(self, degraded_index, template_papers,
                                 obs_enabled):
        schedule = make_schedule(template_papers, n=20, mode="open",
                                 qps=400.0)
        summary = LoadRunner(degraded_index, schedule).run()
        assert summary.completed == 20
        assert summary.mode == "open"
        # An open loop cannot finish before its last scheduled arrival.
        assert summary.duration >= schedule.requests[-1].arrival

    def test_open_loop_paces_on_the_injected_clock(self, degraded_index,
                                                   template_papers,
                                                   obs_enabled):
        from repro.obs.testing import FakeClock

        # Arrival delays are computed on the injected clock, so sleeping
        # must happen on the same time source: with FakeClock.advance as
        # the sleep, the run spans exactly the scheduled arrivals on the
        # fake clock — a wall-clock sleep would leave it stuck at zero.
        schedule = make_schedule(template_papers, n=12, mode="open",
                                 qps=50.0)
        clock = FakeClock()
        runner = LoadRunner(degraded_index, schedule, clock=clock,
                            sleep=clock.advance)
        summary = runner.run()
        assert summary.completed == 12
        assert summary.duration >= schedule.requests[-1].arrival

    def test_slos_sampled_while_draining(self, degraded_index,
                                         template_papers, obs_enabled):
        # One submission can contribute at most one in-loop sample, and
        # the post-run sample adds one more; anything beyond two proves
        # the drain loop kept polling while the in-flight tail finished.
        schedule = make_schedule(template_papers, n=1, mode="open",
                                 qps=1000.0,
                                 mix=WorkloadMix(query=1, ingest=0, probe=0))
        runner = LoadRunner(degraded_index, schedule, slo_interval=0.0)
        summary = runner.run()
        assert summary.completed == 1
        assert summary.slo_checks >= 3


class TestReport:
    def test_bench_schema(self, degraded_index, template_papers,
                          obs_enabled, tmp_path):
        schedule = make_schedule(template_papers)
        runner = LoadRunner(degraded_index, schedule)
        summary = runner.run()
        report = build_report(schedule, summary, runner.telemetry,
                              registry=obs.get_registry(),
                              meta={"seed": 0})
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        workload = report["workload"]
        assert workload["schedule_sha256"] == schedule.sha256()
        assert workload["mode"] == "closed" and workload["seed"] == 0
        assert workload["requests"] == len(schedule)
        run = report["run"]
        assert run["completed"] == summary.completed
        assert run["achieved_qps"] == pytest.approx(summary.achieved_qps)
        assert isinstance(run["slo"], list)
        overall = report["latency"]["overall"]
        for key in ("count", "mean", "max", "p50", "p95", "p99"):
            assert key in overall
        assert set(report["latency"]["by_kind"]) == set(summary.by_kind)
        assert report["degraded"]["count"] >= 0
        assert report["timeseries"]["series"]
        assert report["meta"] == {"seed": 0}
        # The document round-trips through JSON unchanged.
        path = write_report(tmp_path / "BENCH_serve_load.json", report)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report))

    def test_report_without_registry(self, degraded_index, template_papers,
                                     obs_enabled):
        schedule = make_schedule(template_papers, n=10)
        runner = LoadRunner(degraded_index, schedule)
        summary = runner.run()
        report = build_report(schedule, summary, runner.telemetry)
        assert "overall" not in report["latency"]
        assert report["degraded"]["count"] == runner.telemetry.degraded
