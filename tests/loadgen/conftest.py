"""Fixtures for the load-generator tests.

The runner tests drive a *degraded* :class:`ServingIndex` (no fitted
model, TF-IDF fallback only): the loop disciplines, telemetry, and
trace plumbing under test are identical to the modelled path, and
skipping the fit keeps the suite inside tier-1 time budgets.
"""

import pytest

from repro import obs
from repro.data import load_acm
from repro.serve.index import ServingIndex

USER_IDS = ("load-user-a", "load-user-b")


@pytest.fixture(scope="session")
def acm_papers():
    corpus = load_acm(scale=0.15, seed=3)
    papers = list(corpus.papers)
    assert len(papers) >= 40
    return papers


@pytest.fixture
def degraded_index(acm_papers):
    index = ServingIndex(None, papers=acm_papers[:25])
    index.register_user(USER_IDS[0], acm_papers[25:28])
    index.register_user(USER_IDS[1], acm_papers[28:31])
    return index


@pytest.fixture
def template_papers(acm_papers):
    """Payload templates for ingest/probe requests."""
    return acm_papers[31:40]


@pytest.fixture
def obs_enabled():
    state = obs.configure(enabled=True, profiling=False, reset=True)
    try:
        yield state
    finally:
        obs.configure(enabled=False, profiling=False, reset=True)
