"""The ops plane under load: concurrent scrapes against live traffic.

Satellite of the ops-plane PR: operators scrape ``/metrics`` and probe
``/healthz`` *while* the serving process is under load, so the contract
is zero 5xx, no torn exposition (every scrape body passes
``lint_exposition``), and bounded scrape latency. The LoadRunner side —
``ops_url`` — is exercised both against a live server and against a
dead port (scrape failures must be counted, never crash the run).
"""

import threading
import urllib.error
import urllib.request

from repro import obs
from repro.loadgen import LoadRunner, build_schedule
from repro.obs.emitters import lint_exposition
from repro.obs.flightrec import FlightRecorder
from repro.obs.server import ObsServer

from tests.loadgen.conftest import USER_IDS


def _schedule(template_papers, n=40, **overrides):
    options = dict(mode="closed", concurrency=3, seed=0)
    options.update(overrides)
    return build_schedule(list(USER_IDS), template_papers, n, **options)


class TestRunnerScrapesOps:
    def test_scrapes_recorded_in_summary_and_registry(
            self, degraded_index, template_papers, obs_enabled):
        with ObsServer(degraded_index, recorder=FlightRecorder()) as srv:
            runner = LoadRunner(degraded_index,
                                _schedule(template_papers),
                                slo_interval=0.05, ops_url=srv.url)
            summary = runner.run()
        assert summary.completed == summary.scheduled
        # At minimum the final post-run sample scraped both endpoints.
        assert summary.ops_scrapes >= 2
        assert summary.ops_scrape_errors == 0
        registry = obs.get_registry()
        scraped = registry.get("loadgen.ops_scrape",
                               endpoint="/metrics", outcome="ok")
        assert scraped is not None and scraped.value >= 1
        latency = registry.get("loadgen.ops_scrape.latency",
                               endpoint="/metrics")
        assert latency is not None and latency.count >= 1
        assert "ops_scrapes" in summary.snapshot()

    def test_dead_ops_url_is_counted_not_fatal(
            self, degraded_index, template_papers, obs_enabled):
        # Bind-then-close: a port that is really dead.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        runner = LoadRunner(degraded_index, _schedule(template_papers, n=10),
                            slo_interval=0.05,
                            ops_url=f"http://127.0.0.1:{dead_port}")
        summary = runner.run()
        assert summary.completed == summary.scheduled  # the run survived
        assert summary.ops_scrape_errors == summary.ops_scrapes >= 2

    def test_no_ops_url_means_no_scrapes(self, degraded_index,
                                         template_papers, obs_enabled):
        summary = LoadRunner(degraded_index,
                             _schedule(template_papers, n=10)).run()
        assert summary.ops_scrapes == 0
        assert obs.get_registry().get("loadgen.ops_scrape",
                                      endpoint="/metrics",
                                      outcome="ok") is None


class TestConcurrentScrapeUnderLoad:
    def test_hammered_endpoints_stay_clean(self, degraded_index,
                                           template_papers, obs_enabled):
        """Scrape threads hammer the ops plane during a seeded run.

        Zero 5xx, every exposition lint-clean (no torn bodies), every
        scrape bounded, and the scraped counters move with the traffic.
        """
        results = []   # (endpoint, status, body, latency)
        failures = []
        stop = threading.Event()

        with ObsServer(degraded_index, recorder=FlightRecorder()) as srv:
            def hammer(endpoint):
                import time
                while not stop.is_set():
                    started = time.perf_counter()
                    try:
                        with urllib.request.urlopen(srv.url + endpoint,
                                                    timeout=10.0) as resp:
                            body = resp.read()
                            status = resp.status
                    except urllib.error.HTTPError as err:
                        body, status = err.read(), err.code
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(f"{endpoint}: {exc!r}")
                        continue
                    results.append((endpoint, status, body,
                                    time.perf_counter() - started))

            threads = [threading.Thread(target=hammer, args=(endpoint,),
                                        daemon=True)
                       for endpoint in ("/metrics", "/metrics", "/healthz")]
            for thread in threads:
                thread.start()
            summary = LoadRunner(degraded_index,
                                 _schedule(template_papers, n=60,
                                           concurrency=4),
                                 slo_interval=0.05, ops_url=srv.url).run()
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

        assert summary.completed == summary.scheduled
        assert failures == []
        assert results, "the hammer threads never completed a scrape"
        statuses = {status for _, status, _, _ in results}
        assert statuses == {200}, f"non-200 under load: {statuses}"
        # No torn expositions: every /metrics body parses structurally.
        metric_bodies = [body for endpoint, _, body, _ in results
                        if endpoint == "/metrics"]
        assert metric_bodies
        for body in metric_bodies:
            assert lint_exposition(body.decode("utf-8")) == []
        # Bounded latency: an embedded stdlib server answering while the
        # index is hammered — generous bound, but it catches a serialized
        # or wedged listener.
        worst = max(latency for _, _, _, latency in results)
        assert worst < 5.0, f"scrape latency blew up: {worst:.2f}s"
        # Live counters made it into the exposition: the last /metrics
        # body reflects the traffic the run just produced.
        final = metric_bodies[-1].decode("utf-8")
        assert "repro_serve_queries" in final
        assert "repro_loadgen_ops_scrape" in final
        assert "repro_process_rss_kb" in final
