"""Windowed per-second telemetry: bucketing, eviction, quantiles."""

import pytest

from repro.loadgen.telemetry import WindowedTelemetry
from repro.obs.testing import FakeClock


def test_records_land_in_their_second():
    clock = FakeClock()
    telemetry = WindowedTelemetry(window=10, clock=clock)
    telemetry.record(0.010)
    telemetry.record(0.020)
    clock.advance(1.2)
    telemetry.record(0.030, error=True)
    series = telemetry.series()
    assert [bin_["second"] for bin_ in series] == [0, 1]
    assert series[0]["count"] == 2 and series[0]["errors"] == 0
    assert series[1]["count"] == 1 and series[1]["errors"] == 1
    assert series[1]["max"] == pytest.approx(0.030)
    assert telemetry.total == 3 and telemetry.errors == 1


def test_bins_sketch_their_own_quantiles():
    telemetry = WindowedTelemetry(clock=FakeClock())
    for latency in (0.010, 0.020, 0.030, 0.040, 0.100):
        telemetry.record(latency)
    [bin_] = telemetry.series()
    assert bin_["p50"] == pytest.approx(0.030)
    assert bin_["p95"] == pytest.approx(0.088, abs=0.02)
    assert bin_["mean"] == pytest.approx(0.040)


def test_window_eviction_counts_dropped_seconds():
    clock = FakeClock()
    telemetry = WindowedTelemetry(window=2, clock=clock)
    for _ in range(4):
        telemetry.record(0.01)
        clock.advance(1.0)
    series = telemetry.series()
    assert [bin_["second"] for bin_ in series] == [2, 3]
    assert telemetry.dropped_seconds == 2
    assert telemetry.total == 4  # totals survive eviction


def test_degraded_tally_and_snapshot_shape():
    clock = FakeClock()
    telemetry = WindowedTelemetry(window=5, clock=clock)
    telemetry.record(0.01, degraded=True)
    telemetry.record(0.02)
    snap = telemetry.snapshot()
    assert snap["window_seconds"] == 5
    assert snap["retained_seconds"] == 1
    assert snap["dropped_seconds"] == 0
    assert snap["total"] == 2 and snap["degraded"] == 1
    assert snap["series"][0]["degraded"] == 1
    clock.advance(2.0)
    assert telemetry.elapsed() == pytest.approx(2.0)


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        WindowedTelemetry(window=0)
