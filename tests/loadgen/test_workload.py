"""Schedule determinism and workload construction invariants."""

import pytest

from repro.loadgen import Request, Schedule, WorkloadMix, build_schedule
from repro.loadgen.workload import KINDS


def build(papers, **overrides):
    options = dict(user_ids=["u1", "u2"], papers=papers, n_requests=64,
                   seed=0)
    options.update(overrides)
    return build_schedule(options.pop("user_ids"), options.pop("papers"),
                          options.pop("n_requests"), **options)


class TestDeterminism:
    def test_same_seed_same_schedule(self, template_papers):
        a = build(template_papers, seed=7)
        b = build(template_papers, seed=7)
        assert [r.signature() for r in a.requests] == \
               [r.signature() for r in b.requests]
        assert a.sha256() == b.sha256()

    def test_same_seed_same_open_loop_arrivals(self, template_papers):
        a = build(template_papers, mode="open", qps=100.0, seed=3)
        b = build(template_papers, mode="open", qps=100.0, seed=3)
        assert a.sha256() == b.sha256()
        assert all(r.arrival is not None for r in a.requests)

    def test_different_seed_different_schedule(self, template_papers):
        assert build(template_papers, seed=0).sha256() != \
               build(template_papers, seed=1).sha256()

    def test_sha_covers_arrivals(self, template_papers):
        closed = build(template_papers, seed=0)
        opened = build(template_papers, mode="open", qps=100.0, seed=0)
        assert closed.sha256() != opened.sha256()


class TestScheduleShape:
    def test_arrivals_increase_monotonically(self, template_papers):
        schedule = build(template_papers, mode="open", qps=250.0)
        arrivals = [r.arrival for r in schedule.requests]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] > 0

    def test_closed_loop_has_no_arrivals(self, template_papers):
        schedule = build(template_papers)
        assert all(r.arrival is None for r in schedule.requests)

    def test_payload_ids_are_unique_and_cold(self, template_papers):
        schedule = build(template_papers, n_requests=200)
        payloads = [r.paper for r in schedule.requests if r.paper is not None]
        assert payloads, "mix should schedule some ingests/probes"
        assert len({p.id for p in payloads}) == len(payloads)
        for paper in payloads:
            assert paper.id.startswith("loadgen-")
            assert paper.references == () and paper.citation_count == 0

    def test_queries_pick_registered_users(self, template_papers):
        schedule = build(template_papers, n_requests=100, k=7)
        queries = [r for r in schedule.requests if r.kind == "query"]
        assert queries
        assert {r.user_id for r in queries} <= {"u1", "u2"}
        assert all(r.k == 7 for r in schedule.requests)

    def test_mix_shifts_kind_frequencies(self, template_papers):
        all_probes = build(template_papers,
                           mix=WorkloadMix(query=0, ingest=0, probe=1))
        assert {r.kind for r in all_probes.requests} == {"probe"}


class TestUserOrder:
    def test_round_robin_cycles_registration_order(self, template_papers):
        schedule = build(template_papers, user_ids=["a", "b", "c"],
                         n_requests=30, user_order="round_robin",
                         mix=WorkloadMix(query=1, ingest=0, probe=0))
        users = [r.user_id for r in schedule.requests]
        assert users == (["a", "b", "c"] * 10)

    def test_round_robin_cursor_skips_non_queries(self, template_papers):
        # The cursor advances only on query requests, so the user cycle
        # stays strict even with ingests/probes interleaved.
        schedule = build(template_papers, user_ids=["a", "b", "c"],
                         n_requests=120, user_order="round_robin",
                         mix=WorkloadMix(query=0.7, ingest=0.1, probe=0.2))
        users = [r.user_id for r in schedule.requests if r.kind == "query"]
        assert users == [["a", "b", "c"][i % 3] for i in range(len(users))]

    def test_round_robin_is_deterministic_and_fingerprinted(
            self, template_papers):
        rr = build(template_papers, user_order="round_robin", seed=5)
        assert rr.sha256() == build(template_papers,
                                    user_order="round_robin",
                                    seed=5).sha256()
        assert rr.sha256() != build(template_papers, seed=5).sha256()

    def test_unknown_order_rejected(self, template_papers):
        with pytest.raises(ValueError, match="user_order"):
            build(template_papers, user_order="zigzag")


class TestValidation:
    def test_bad_args_raise(self, template_papers):
        with pytest.raises(ValueError):
            build(template_papers, mode="sideways")
        with pytest.raises(ValueError):
            build(template_papers, mode="open")  # no qps
        with pytest.raises(ValueError):
            build(template_papers, n_requests=0)
        with pytest.raises(ValueError):
            build(template_papers, concurrency=0)
        with pytest.raises(ValueError):
            build(template_papers, user_ids=[])
        with pytest.raises(ValueError):
            build([])

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(query=-1.0)
        with pytest.raises(ValueError):
            WorkloadMix(query=0, ingest=0, probe=0)
        assert sum(WorkloadMix(query=3, ingest=1,
                               probe=1).probabilities()) == pytest.approx(1.0)

    def test_unknown_request_kind_rejected(self):
        with pytest.raises(ValueError):
            Request(index=0, kind="teapot")

    def test_len_and_fields(self, template_papers):
        schedule = build(template_papers, n_requests=12, concurrency=3)
        assert len(schedule) == 12
        assert isinstance(schedule, Schedule)
        assert schedule.concurrency == 3
        assert set(r.kind for r in schedule.requests) <= set(KINDS)
