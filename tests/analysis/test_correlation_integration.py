"""Integration: the full GMM->LOF->Spearman pipeline on corpus embeddings."""

import numpy as np
import pytest

from repro.analysis import outlier_citation_study
from repro.core.sem import SEMConfig, SubspaceEmbeddingMethod
from repro.data import load_scopus


@pytest.fixture(scope="module")
def sem_and_papers():
    corpus = load_scopus(scale=0.3, seed=20)
    papers = corpus.by_field("computer_science")
    sem = SubspaceEmbeddingMethod(SEMConfig(n_triplets=40, epochs=2, seed=0))
    sem.fit(papers)
    return sem, papers


class TestEndToEndCorrelation:
    def test_method_subspace_positive_trend(self, sem_and_papers):
        sem, papers = sem_and_papers
        study = outlier_citation_study(
            sem.subspace_matrix(papers, 1),
            [p.citation_count for p in papers], seed=0)
        assert study.trend.slope > 0
        assert study.spearman > 0

    def test_study_fields_consistent(self, sem_and_papers):
        sem, papers = sem_and_papers
        study = outlier_citation_study(
            sem.subspace_matrix(papers, 0),
            [p.citation_count for p in papers], seed=0)
        assert study.outlier_scores.shape == (len(papers),)
        assert study.citations.shape == (len(papers),)
        assert 0.0 <= study.outlier_scores.min()
        assert study.outlier_scores.max() <= 1.0

    def test_reference_pool_changes_scores(self, sem_and_papers):
        """Scoring new papers against a historical reference pool gives
        different (and generally better calibrated) scores than scoring
        them against each other only."""
        sem, papers = sem_and_papers
        new = papers[-30:]
        history = papers[:-30]
        alone = sem.outlier_scores(new, 1, seed=0)
        with_ref = sem.outlier_scores(new, 1, reference=history, seed=0)
        assert alone.shape == with_ref.shape == (30,)
        assert not np.allclose(alone, with_ref)
