"""Tests for ranking metrics, correlation study pipeline, and regression."""

import numpy as np
import pytest

from repro.analysis import (
    average_precision,
    clustered_outlier_scores,
    dcg_at_k,
    linear_regression,
    mean_metric,
    ndcg_at_k,
    normalize_scores,
    outlier_citation_study,
    precision_at_k,
    rankdata,
    reciprocal_rank,
    spearman_correlation,
)


class TestRankdata:
    def test_simple(self):
        np.testing.assert_allclose(rankdata([10, 20, 30]), [1, 2, 3])

    def test_ties_average(self):
        np.testing.assert_allclose(rankdata([5, 5, 10]), [1.5, 1.5, 3])

    def test_matches_scipy(self):
        from scipy.stats import rankdata as scipy_rank
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10, size=50).astype(float)
        np.testing.assert_allclose(rankdata(values), scipy_rank(values))


class TestSpearman:
    def test_perfect_positive(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr
        rng = np.random.default_rng(1)
        a = rng.normal(size=80)
        b = a + rng.normal(size=80)
        assert spearman_correlation(a, b) == pytest.approx(spearmanr(a, b).statistic)

    def test_constant_input_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_correlation([1], [1])
        with pytest.raises(ValueError):
            spearman_correlation([1, 2], [1, 2, 3])


class TestRankingMetrics:
    def test_dcg_known_value(self):
        # rel [3, 2] -> 3/log2(2) + 2/log2(3)
        expected = 3.0 + 2.0 / np.log2(3)
        assert dcg_at_k([3, 2], 2) == pytest.approx(expected)

    def test_dcg_validation(self):
        with pytest.raises(ValueError):
            dcg_at_k([1.0], 0)
        assert dcg_at_k([], 3) == 0.0

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_k(["a", "b", "c"], {"a"}, k=3) == pytest.approx(1.0)

    def test_ndcg_worst_position(self):
        perfect = ndcg_at_k(["a", "x", "y"], {"a"}, k=3)
        worst = ndcg_at_k(["x", "y", "a"], {"a"}, k=3)
        assert worst < perfect

    def test_ndcg_decreases_with_k_when_hits_high(self):
        ranked = ["a"] + [f"x{i}" for i in range(49)]
        assert ndcg_at_k(ranked, {"a"}, 20) == ndcg_at_k(ranked, {"a"}, 50)

    def test_ndcg_requires_relevant(self):
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], set(), 5)

    def test_mrr(self):
        assert reciprocal_rank(["x", "a", "y"], {"a"}) == pytest.approx(0.5)
        assert reciprocal_rank(["x", "y"], {"a"}) == 0.0

    def test_map(self):
        # hits at positions 1 and 3: (1/1 + 2/3) / 2
        assert average_precision(["a", "x", "b"], {"a", "b"}) == pytest.approx((1 + 2 / 3) / 2)
        with pytest.raises(ValueError):
            average_precision(["a"], set())

    def test_precision_at_k(self):
        assert precision_at_k(["a", "x", "b", "y"], {"a", "b"}, 2) == 0.5
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)

    def test_mean_metric(self):
        assert mean_metric([0.5, 1.0]) == 0.75
        with pytest.raises(ValueError):
            mean_metric([])


class TestRegression:
    def test_exact_line(self):
        fit = linear_regression([0, 1, 2], [1, 3, 5])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_regression([0, 1], [0, 2])
        np.testing.assert_allclose(fit.predict([2, 3]), [4, 6])

    def test_constant_x(self):
        fit = linear_regression([1, 1, 1], [1, 2, 3])
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_regression([1], [1])
        with pytest.raises(ValueError):
            linear_regression([1, 2], [1, 2, 3])


class TestOutlierStudy:
    def test_outliers_get_high_scores(self):
        rng = np.random.default_rng(0)
        tight = rng.normal(0, 0.5, size=(50, 4))
        spread = rng.normal(0, 4.0, size=(10, 4)) + 6.0
        data = np.vstack([tight, spread])
        scores = clustered_outlier_scores(data, lof_k=8, seed=0)
        assert scores.shape == (60,)

    def test_study_recovers_planted_correlation(self):
        rng = np.random.default_rng(1)
        n = 80
        novelty = rng.beta(1.5, 3.0, size=n)
        centre = rng.normal(size=4)
        # embeddings drift from the centre proportionally to novelty
        emb = centre + rng.normal(size=(n, 4)) * (0.3 + 2.5 * novelty[:, None])
        citations = rng.poisson(2 + 40 * novelty)
        study = outlier_citation_study(emb, citations, lof_k=10, seed=0)
        assert study.spearman > 0.25
        assert study.trend.slope > 0

    def test_study_validation(self):
        with pytest.raises(ValueError):
            outlier_citation_study(np.zeros((5, 2)), [1, 2, 3])
        with pytest.raises(ValueError):
            clustered_outlier_scores(np.zeros((2, 2)))

    def test_normalize_scores(self):
        np.testing.assert_allclose(normalize_scores(np.array([2.0, 4.0])), [0, 1])
        np.testing.assert_array_equal(normalize_scores(np.ones(3)), np.zeros(3))
