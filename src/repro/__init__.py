"""repro — reproduction of "Subspace Embedding Based New Paper
Recommendation" (Xie, Li, Sun, Bertino, Gong — ICDE 2022).

Top-level re-exports cover the typical workflow:

>>> from repro import load_scopus, SubspaceEmbeddingMethod, SEMConfig
>>> corpus = load_scopus(scale=0.5)
>>> sem = SubspaceEmbeddingMethod(SEMConfig(seed=0))
>>> sem.fit(corpus.by_field("computer_science"))

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    ExpertRuleSet,
    NPRecConfig,
    NPRecModel,
    NPRecRecommender,
    SEMConfig,
    SubspaceEmbeddingMethod,
    SubspaceEmbeddingNetwork,
    TwinNetworkTrainer,
    annotate_triplets,
    build_training_pairs,
)
from repro.data import (
    Author,
    Corpus,
    Paper,
    SyntheticCorpusConfig,
    Venue,
    corpus_statistics,
    generate_corpus,
    load_acm,
    load_patents,
    load_pubmed_rct,
    load_scopus,
)
from repro.errors import (
    ConfigError,
    ConvergenceError,
    DataError,
    GraphError,
    InjectedFault,
    NotFittedError,
    NumericalError,
    ReproError,
    RetryExhaustedError,
    ShapeError,
    WALError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SubspaceEmbeddingMethod", "SEMConfig", "SubspaceEmbeddingNetwork",
    "TwinNetworkTrainer", "ExpertRuleSet", "annotate_triplets",
    "NPRecRecommender", "NPRecConfig", "NPRecModel", "build_training_pairs",
    # data
    "Paper", "Author", "Venue", "Corpus",
    "SyntheticCorpusConfig", "generate_corpus", "corpus_statistics",
    "load_acm", "load_scopus", "load_pubmed_rct", "load_patents",
    # errors
    "ReproError", "ConfigError", "ShapeError", "GraphError", "DataError",
    "NotFittedError", "ConvergenceError", "NumericalError", "InjectedFault",
    "RetryExhaustedError", "WALError",
]
