"""Deterministic synthetic scholarly corpora with planted innovation signal.

The paper's experiments run on ACM DL, Scopus, PubMedRCT, and a USPTO
patent set — none of which ship with this reproduction. This module
generates corpora with the same schema and, crucially, the same *causal
structure* the paper's analyses exploit:

* every paper carries a hidden per-subspace novelty ``z_k`` (background /
  method / result);
* abstract sentences for subspace ``k`` mix topic-conventional vocabulary
  with novel "frontier" vocabulary in proportion to ``z_k``, so text-level
  subspace difference genuinely increases with planted novelty;
* citations (in-corpus references *and* external counts) are sampled with
  intensity ``exp(sum_k w_k^field * z_k)`` where the weights ``w_k^field``
  encode the paper's qualitative findings — computer science rewards method
  novelty, medicine rewards result novelty, sociology rewards background /
  method novelty;
* authors have home topics, power-law productivity, and sticky co-author
  groups (needed for the Fig. 5 author-embedding study);
* reference lists are topic-local with preferential attachment, giving the
  citation graph the usual scholarly degree distribution.

Everything is a pure function of :class:`SyntheticCorpusConfig` (including
its seed), so experiments are exactly repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.corpus import Corpus
from repro.data.schema import Author, Paper, Venue
from repro.data.taxonomy import ClassificationTree, acm_ccs_like, discipline_tree
from repro.text.sequence_labeler import CUE_WORDS, SUBSPACE_NAMES
from repro.utils.rng import as_generator

#: Citation-intensity weights per discipline and subspace. These encode the
#: discipline characteristics reported in Tab. I / Fig. 3: bold cells of
#: the paper (CS->method, medicine->result, sociology->background+method).
DISCIPLINE_PROFILES: dict[str, dict[str, float]] = {
    "computer_science": {"background": 0.25, "method": 1.00, "result": 0.60},
    "medicine": {"background": 0.40, "method": 0.20, "result": 1.00},
    "sociology": {"background": 0.95, "method": 0.75, "result": 0.25},
}

#: Fallback profile for fields without an explicit entry (ACM CCS areas all
#: behave like computer science).
DEFAULT_PROFILE: dict[str, float] = DISCIPLINE_PROFILES["computer_science"]

_CONSONANTS = "bcdfghjklmnprstvz"
_VOWELS = "aeiou"


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Configuration of one synthetic corpus.

    Attributes mirror the knobs that differ between the paper's datasets
    (see Tab. III and Sec. III-C): scale, year range, sentence counts,
    and which metadata features exist (patents lack keywords/venues).
    """

    name: str = "synthetic"
    n_papers: int = 600
    n_authors: int = 200
    n_venues: int = 12
    year_min: int = 2008
    year_max: int = 2017
    disciplines: tuple[str, ...] = ("computer_science", "medicine", "sociology")
    taxonomy_kind: str = "discipline"  # "discipline" | "acm"
    topics_per_discipline: int = 4
    avg_sentences: float = 6.0
    refs_mean: float = 9.0
    keywords_min: int = 4
    keywords_max: int = 7
    include_keywords: bool = True
    include_venues: bool = True
    include_affiliations: bool = True
    assign_months: bool = False
    novelty_alpha: float = 1.3
    novelty_beta: float = 3.5
    novelty_text_strength: float = 1.0
    novelty_text_power: float = 1.0
    citation_scale: float = 0.45
    citation_exponent: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_papers < 1 or self.n_authors < 1:
            raise ValueError("n_papers and n_authors must be >= 1")
        if self.year_min > self.year_max:
            raise ValueError(f"year range inverted: {self.year_min} > {self.year_max}")
        if self.taxonomy_kind not in ("discipline", "acm"):
            raise ValueError(f"unknown taxonomy_kind {self.taxonomy_kind!r}")
        if not self.disciplines:
            raise ValueError("at least one discipline required")
        if self.keywords_min > self.keywords_max:
            raise ValueError("keywords_min > keywords_max")
        if self.avg_sentences < 3:
            raise ValueError("avg_sentences must be >= 3 (one per subspace)")

    def scaled(self, factor: float) -> "SyntheticCorpusConfig":
        """Return a copy with paper/author/venue counts scaled by *factor*."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            n_papers=max(1, int(self.n_papers * factor)),
            n_authors=max(1, int(self.n_authors * factor)),
            n_venues=max(1, int(self.n_venues * factor**0.5)),
        )


class _LexiconFactory:
    """Generates deterministic pseudo-word lexicons per discipline/topic."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._seen: set[str] = set()

    def word(self, syllables: int = 3) -> str:
        """A fresh pronounceable pseudo-word, unique within this corpus."""
        for _ in range(64):
            parts = []
            for _ in range(syllables):
                c = _CONSONANTS[int(self._rng.integers(len(_CONSONANTS)))]
                v = _VOWELS[int(self._rng.integers(len(_VOWELS)))]
                parts.append(c + v)
            candidate = "".join(parts)
            if candidate not in self._seen:
                self._seen.add(candidate)
                return candidate
        # Fall back to an indexed suffix if collisions pile up.
        candidate = f"{candidate}x{len(self._seen)}"
        self._seen.add(candidate)
        return candidate

    def pool(self, size: int, syllables: int = 3) -> list[str]:
        """A list of *size* fresh pseudo-words."""
        return [self.word(syllables) for _ in range(size)]


def _topic_discipline(tree: ClassificationTree, leaf: str) -> str:
    """Top-level ancestor of *leaf* — the paper's field label."""
    return tree.path_to_root(leaf)[0]


def generate_corpus(config: SyntheticCorpusConfig) -> Corpus:
    """Generate a corpus according to *config*. Pure and deterministic."""
    rng = as_generator(config.seed)
    lexicon = _LexiconFactory(rng)

    # ------------------------------------------------------------------
    # Taxonomy and per-topic vocabularies
    # ------------------------------------------------------------------
    if config.taxonomy_kind == "acm":
        tree = acm_ccs_like(areas_per_top=2,
                            topics_per_area=max(1, config.topics_per_discipline // 2),
                            seed=int(rng.integers(2**31)))
    else:
        tree = discipline_tree(config.disciplines,
                               topics_per_discipline=config.topics_per_discipline,
                               seed=int(rng.integers(2**31)))
    leaves = list(tree.leaves())
    fields = sorted({_topic_discipline(tree, leaf) for leaf in leaves})

    common_pool = {f: lexicon.pool(120) for f in fields}
    frontier_pool = {
        (f, role): lexicon.pool(140) for f in fields for role in SUBSPACE_NAMES
    }
    topic_vocab: dict[str, dict[str, list[str]]] = {}
    topic_keywords: dict[str, list[str]] = {}
    for leaf in leaves:
        discipline = _topic_discipline(tree, leaf)
        vocab_by_role: dict[str, list[str]] = {}
        for role in SUBSPACE_NAMES:
            # Real research topics inside one discipline share most of
            # their vocabulary; only a minority of terms is truly
            # topic-specific. This keeps pure lexical matching (TF-IDF)
            # honest while the classification/venue/author entities stay
            # perfectly topical.
            shared = [common_pool[discipline][int(rng.integers(120))] for _ in range(16)]
            vocab_by_role[role] = lexicon.pool(10) + shared
        topic_vocab[leaf] = vocab_by_role
        topic_keywords[leaf] = lexicon.pool(14, syllables=2)

    # ------------------------------------------------------------------
    # Venues and authors
    # ------------------------------------------------------------------
    venues: list[Venue] = []
    venue_prestige: dict[str, float] = {}
    venues_by_field: dict[str, list[str]] = {f: [] for f in fields}
    if config.include_venues:
        for i in range(config.n_venues):
            f = fields[i % len(fields)]
            vid = f"{config.name}-v{i:03d}"
            venues.append(Venue(id=vid, name=f"Venue {i} of {f}", field=f))
            venue_prestige[vid] = float(rng.uniform(0.0, 1.0))
            venues_by_field[f].append(vid)

    authors: list[Author] = []
    author_home: dict[str, str] = {}
    author_weight: dict[str, float] = {}
    author_collaborators: dict[str, list[str]] = {}
    authors_by_field: dict[str, list[str]] = {f: [] for f in fields}
    affiliation_pool = [f"institute-{i}" for i in range(max(3, config.n_authors // 12))]
    for i in range(config.n_authors):
        aid = f"{config.name}-a{i:04d}"
        home = leaves[int(rng.integers(len(leaves)))]
        affiliation = (affiliation_pool[int(rng.integers(len(affiliation_pool)))]
                       if config.include_affiliations else None)
        authors.append(Author(id=aid, name=f"Author {i}", affiliation=affiliation))
        author_home[aid] = home
        author_weight[aid] = float((i + 1) ** -0.8)  # power-law productivity
        author_collaborators[aid] = []
        authors_by_field[_topic_discipline(tree, home)].append(aid)

    # ------------------------------------------------------------------
    # Papers
    # ------------------------------------------------------------------
    years = np.sort(rng.integers(config.year_min, config.year_max + 1,
                                 size=config.n_papers))
    papers: list[Paper] = []
    paper_topic: dict[str, str] = {}
    paper_novelty: dict[str, dict[str, float]] = {}
    in_degree = np.zeros(config.n_papers)
    paper_field_idx: list[str] = []
    attractiveness = np.zeros(config.n_papers)
    prestige = np.zeros(config.n_papers)

    all_author_ids = list(author_home)
    author_productivity = np.array([author_weight[a] for a in all_author_ids])
    author_productivity /= author_productivity.sum()
    # Citation habits (Sec. IV-G of the paper): how often each lead author
    # has cited each other author so far; repeatedly-cited teams receive a
    # boost in later reference sampling. This signal lives purely in the
    # academic network (author entities), not in the text.
    citation_habit: dict[str, dict[str, int]] = {a: {} for a in all_author_ids}

    for i in range(config.n_papers):
        pid = f"{config.name}-p{i:05d}"
        # Lead author first; the paper's topic follows the lead's home
        # topic most of the time, so publication histories are topically
        # coherent — the premise of interest modelling in Sec. IV.
        lead = all_author_ids[int(rng.choice(len(all_author_ids),
                                             p=author_productivity))]
        if rng.random() < 0.95:
            leaf = author_home[lead]
        else:
            leaf = leaves[int(rng.integers(len(leaves)))]
        discipline = _topic_discipline(tree, leaf)
        profile = DISCIPLINE_PROFILES.get(discipline, DEFAULT_PROFILE)

        novelty = {role: float(rng.beta(config.novelty_alpha, config.novelty_beta))
                   for role in SUBSPACE_NAMES}
        attract = sum(profile[role] * novelty[role] for role in SUBSPACE_NAMES)

        # --- co-authors: sticky collaborator groups, topic-local ---------
        pool = authors_by_field[discipline] or all_author_ids
        same_home = [a for a in pool if author_home[a] == leaf]
        team = [lead]
        n_coauthors = int(rng.integers(0, 4))
        for _ in range(n_coauthors):
            known = [a for a in author_collaborators[lead] if a not in team]
            if known and rng.random() < 0.6:
                team.append(known[int(rng.integers(len(known)))])
                continue
            source = same_home if same_home and rng.random() < 0.7 else pool
            candidate = source[int(rng.integers(len(source)))]
            if candidate not in team:
                team.append(candidate)
        for a in team:
            for b in team:
                if a != b and b not in author_collaborators[a]:
                    author_collaborators[a].append(b)

        # --- abstract text ------------------------------------------------
        n_sent = max(3, int(rng.poisson(config.avg_sentences)))
        counts = {
            "background": max(1, round(n_sent * 0.30)),
            "method": max(1, round(n_sent * 0.40)),
        }
        counts["result"] = max(1, n_sent - counts["background"] - counts["method"])
        sentences: list[str] = []
        labels: list[int] = []
        own_words = lexicon.pool(4)
        for role_id, role in enumerate(SUBSPACE_NAMES):
            vocab = topic_vocab[leaf][role]
            frontier = frontier_pool[(discipline, role)]
            # Zipf-weighted conventional vocabulary: a few core topic words
            # dominate, so within-topic text variance stays low and the
            # novelty-driven drift remains detectable by LOF downstream.
            zipf = 1.0 / np.arange(1, len(vocab) + 1) ** 1.6
            zipf /= zipf.sum()
            novel_fraction = (config.novelty_text_strength
                              * novelty[role] ** config.novelty_text_power)
            for sentence_index in range(counts[role]):
                cues = [str(w) for w in rng.choice(sorted(CUE_WORDS[role]),
                                                   size=int(rng.integers(1, 3)), replace=False)]
                body_len = int(rng.integers(7, 13))
                # A deterministic core of top topic words anchors every
                # conventional sentence, keeping within-topic variance low;
                # novel displacement is carried mostly by paper-unique
                # words so innovative papers become genuine LOF outliers
                # rather than clustering with other innovators.
                body: list[str] = [vocab[(sentence_index + j) % 3] for j in range(2)]
                # Deterministic novel-word count (instead of Bernoulli per
                # word) removes binomial noise from the novelty channel.
                n_novel = int(round(novel_fraction * (body_len - 2)))
                for _ in range(n_novel):
                    if rng.random() < 0.95:
                        body.append(own_words[int(rng.integers(len(own_words)))])
                    else:
                        body.append(frontier[int(rng.integers(len(frontier)))])
                for _ in range(body_len - 2 - n_novel):
                    if rng.random() < 0.7:
                        body.append(vocab[int(rng.choice(len(vocab), p=zipf))])
                    else:
                        pool_c = common_pool[discipline]
                        body.append(pool_c[int(rng.integers(len(pool_c)))])
                interior = body[1:]
                rng.shuffle(interior)
                body[1:] = interior
                words = cues + body
                sentences.append(words[0].capitalize() + " " + " ".join(words[1:]) + ".")
                labels.append(role_id)
        abstract = " ".join(sentences)
        title_words = [str(w) for w in rng.choice(topic_vocab[leaf]["method"], size=5, replace=False)]
        title = " ".join(title_words).capitalize()

        # --- keywords -------------------------------------------------------
        keywords: tuple[str, ...] = ()
        if config.include_keywords:
            k = int(rng.integers(config.keywords_min, config.keywords_max + 1))
            chosen = [str(w) for w in rng.choice(topic_keywords[leaf],
                                                 size=min(k, len(topic_keywords[leaf])),
                                                 replace=False)]
            novel_kw = int(round(np.mean(list(novelty.values())) * 3))
            for j in range(min(novel_kw, len(chosen))):
                chosen[j] = lexicon.word(syllables=2)
            keywords = tuple(chosen)

        # --- venue & academic authority --------------------------------------
        venue_id = None
        if config.include_venues and venues_by_field[discipline]:
            options = venues_by_field[discipline]
            venue_id = options[int(rng.integers(len(options)))]
        authority = 0.0
        if venue_id is not None:
            authority += 0.5 * venue_prestige[venue_id]
        authority += 0.4 * min(1.0, max(author_weight[a] for a in team) * 3)
        prestige[i] = authority

        # --- references (topic-local, authority- and novelty-driven) --------
        references: tuple[str, ...] = ()
        if i > 0:
            earlier = np.arange(i)
            same_topic = np.array([paper_topic[papers[j].id] == leaf for j in earlier])
            same_field = np.array([paper_field_idx[j] == discipline for j in earlier])
            base = np.where(same_topic, 150.0, np.where(same_field, 1.0, 0.1))
            # Novel papers read more broadly across topics.
            cross_boost = 1.0 + 1.5 * float(np.mean(list(novelty.values())))
            base = np.where(~same_topic & same_field, base * cross_boost, base)
            # Preferential attachment is sub-linear so that the visible
            # signals — text attractiveness and academic authority (venue
            # prestige, author productivity), both recoverable by models —
            # dominate citation choice over the invisible in-degree.
            habits = citation_habit[lead]
            affinity = np.array([
                min(5, sum(habits.get(a, 0) for a in papers[j].authors))
                for j in earlier
            ], dtype=float)
            weight = (base * np.sqrt(1.0 + in_degree[:i])
                      * (1.0 + 0.8 * affinity)
                      * np.exp(2.0 * attractiveness[:i] + 1.5 * prestige[:i]))
            weight = weight / weight.sum()
            n_refs = int(min(i, max(1, rng.poisson(config.refs_mean))))
            picked = rng.choice(i, size=n_refs, replace=False, p=weight)
            references = tuple(papers[j].id for j in sorted(picked))
            for j in picked:
                in_degree[j] += 1
                for cited_author in papers[j].authors:
                    habits[cited_author] = habits.get(cited_author, 0) + 1

        month = int(rng.integers(1, 13)) if config.assign_months else None

        papers.append(Paper(
            id=pid,
            title=title,
            abstract=abstract,
            year=int(years[i]),
            month=month,
            field=discipline,
            category_path=tree.path_to_root(leaf),
            keywords=keywords,
            references=references,
            authors=tuple(team),
            venue=venue_id,
            citation_count=0,  # filled in below
            sentence_labels=tuple(labels),
            novelty=dict(novelty),
        ))
        paper_topic[pid] = leaf
        paper_novelty[pid] = novelty
        paper_field_idx.append(discipline)
        attractiveness[i] = attract

    # ------------------------------------------------------------------
    # External citations: age-accrued Poisson driven by attractiveness
    # ------------------------------------------------------------------
    horizon = config.year_max
    finalised: list[Paper] = []
    for i, paper in enumerate(papers):
        age = max(1, horizon - paper.year + 1)
        # sub-linear age accrual: citations saturate, keeping a genuine
        # low-cited stratum even for older papers (needed by Tab. II)
        rate = (config.citation_scale * np.sqrt(age)
                * np.exp(config.citation_exponent * attractiveness[i] + prestige[i]))
        external = int(rng.poisson(rate))
        finalised.append(replace(paper, citation_count=int(in_degree[i]) + external))

    return Corpus(config.name, finalised, authors=authors, venues=venues,
                  taxonomy=tree, strict=True)
