"""Corpus persistence: JSON round-trips for generated corpora.

Generated corpora are cheap to regenerate, but persisting them makes
experiment artefacts shareable and lets downstream users load real data
dumped into the same schema from their own sources.
"""

from __future__ import annotations

import json
import os

from repro.data.corpus import Corpus
from repro.data.schema import Author, Paper, Venue
from repro.errors import DataError, InjectedFault
from repro.resilience import faults
from repro.resilience.retry import Backoff, retry


def paper_to_dict(paper: Paper) -> dict:
    """Plain-dict representation of one paper (novelty ground truth is a
    generator artefact and is deliberately not persisted)."""
    return {
        "id": paper.id, "title": paper.title, "abstract": paper.abstract,
        "year": paper.year, "month": paper.month, "field": paper.field,
        "category_path": list(paper.category_path),
        "keywords": list(paper.keywords),
        "references": list(paper.references),
        "authors": list(paper.authors),
        "venue": paper.venue,
        "citation_count": paper.citation_count,
        "sentence_labels": list(paper.sentence_labels),
    }


def paper_from_dict(entry: dict) -> Paper:
    """Inverse of :func:`paper_to_dict`."""
    return Paper(
        id=entry["id"], title=entry["title"], abstract=entry["abstract"],
        year=entry["year"], month=entry.get("month"), field=entry["field"],
        category_path=tuple(entry.get("category_path", ())),
        keywords=tuple(entry.get("keywords", ())),
        references=tuple(entry.get("references", ())),
        authors=tuple(entry.get("authors", ())),
        venue=entry.get("venue"),
        citation_count=entry.get("citation_count", 0),
        sentence_labels=tuple(entry.get("sentence_labels", ())),
    )


def corpus_to_dict(corpus: Corpus) -> dict:
    """Plain-dict representation of a corpus (taxonomy is not included —
    it is a generator artefact; category paths live on the papers)."""
    return {
        "name": corpus.name,
        "papers": [paper_to_dict(p) for p in corpus.papers],
        "authors": [
            {"id": a.id, "name": a.name, "affiliation": a.affiliation}
            for a in corpus.authors
        ],
        "venues": [
            {"id": v.id, "name": v.name, "field": v.field}
            for v in corpus.venues
        ],
    }


def corpus_from_dict(payload: dict, strict: bool = True) -> Corpus:
    """Inverse of :func:`corpus_to_dict`.

    Raises
    ------
    DataError
        When the payload is missing a required key (naming the key and,
        for per-record failures, the offending entry) instead of leaking
        a raw ``KeyError``/``TypeError`` from deep inside the schema.
    """
    try:
        name = payload["name"]
        entries = payload["papers"]
    except KeyError as exc:
        raise DataError(
            f"corpus payload missing required key {exc.args[0]!r}") from exc
    papers = []
    for i, entry in enumerate(entries):
        try:
            papers.append(paper_from_dict(entry))
        except KeyError as exc:
            raise DataError(
                f"paper entry #{i} (id={entry.get('id', '<missing>')!r}) "
                f"missing required key {exc.args[0]!r}") from exc
    try:
        authors = [Author(**entry) for entry in payload.get("authors", [])]
        venues = [Venue(**entry) for entry in payload.get("venues", [])]
    except TypeError as exc:
        raise DataError(f"malformed author/venue entry: {exc}") from exc
    return Corpus(name, papers, authors=authors, venues=venues,
                  strict=strict)


def save_corpus(corpus: Corpus, path: str | os.PathLike) -> None:
    """Write *corpus* to a JSON file, atomically.

    The payload goes to a same-directory temp file which is fsynced and
    then renamed over *path* (``os.replace``), so a crash mid-dump never
    leaves a truncated file — an existing corpus at *path* survives
    intact until the new bytes are durably complete.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(corpus_to_dict(corpus), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


@retry(attempts=3, backoff=Backoff(base=0.01), retry_on=(InjectedFault,),
       name="data.load_corpus")
def _read_corpus_payload(path: str) -> dict:
    faults.maybe_fail("data.load_corpus")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def load_corpus(path: str | os.PathLike, strict: bool = True) -> Corpus:
    """Read a corpus previously written by :func:`save_corpus` (or dumped
    into the same schema from external data).

    Raises
    ------
    DataError
        When the file is not valid JSON or the payload violates the
        corpus schema; the message names *path* and the offending key.
    """
    path = os.fspath(path)
    try:
        payload = _read_corpus_payload(path)
    except json.JSONDecodeError as exc:
        raise DataError(f"corrupt corpus JSON at {path}: {exc}") from exc
    try:
        return corpus_from_dict(payload, strict=strict)
    except DataError as exc:
        raise DataError(f"{path}: {exc}") from exc
