"""Corpus persistence: JSON round-trips for generated corpora.

Generated corpora are cheap to regenerate, but persisting them makes
experiment artefacts shareable and lets downstream users load real data
dumped into the same schema from their own sources.
"""

from __future__ import annotations

import json
import os

from repro.data.corpus import Corpus
from repro.data.schema import Author, Paper, Venue


def paper_to_dict(paper: Paper) -> dict:
    """Plain-dict representation of one paper (novelty ground truth is a
    generator artefact and is deliberately not persisted)."""
    return {
        "id": paper.id, "title": paper.title, "abstract": paper.abstract,
        "year": paper.year, "month": paper.month, "field": paper.field,
        "category_path": list(paper.category_path),
        "keywords": list(paper.keywords),
        "references": list(paper.references),
        "authors": list(paper.authors),
        "venue": paper.venue,
        "citation_count": paper.citation_count,
        "sentence_labels": list(paper.sentence_labels),
    }


def paper_from_dict(entry: dict) -> Paper:
    """Inverse of :func:`paper_to_dict`."""
    return Paper(
        id=entry["id"], title=entry["title"], abstract=entry["abstract"],
        year=entry["year"], month=entry.get("month"), field=entry["field"],
        category_path=tuple(entry.get("category_path", ())),
        keywords=tuple(entry.get("keywords", ())),
        references=tuple(entry.get("references", ())),
        authors=tuple(entry.get("authors", ())),
        venue=entry.get("venue"),
        citation_count=entry.get("citation_count", 0),
        sentence_labels=tuple(entry.get("sentence_labels", ())),
    )


def corpus_to_dict(corpus: Corpus) -> dict:
    """Plain-dict representation of a corpus (taxonomy is not included —
    it is a generator artefact; category paths live on the papers)."""
    return {
        "name": corpus.name,
        "papers": [paper_to_dict(p) for p in corpus.papers],
        "authors": [
            {"id": a.id, "name": a.name, "affiliation": a.affiliation}
            for a in corpus.authors
        ],
        "venues": [
            {"id": v.id, "name": v.name, "field": v.field}
            for v in corpus.venues
        ],
    }


def corpus_from_dict(payload: dict, strict: bool = True) -> Corpus:
    """Inverse of :func:`corpus_to_dict`."""
    papers = [paper_from_dict(entry) for entry in payload["papers"]]
    authors = [Author(**entry) for entry in payload.get("authors", [])]
    venues = [Venue(**entry) for entry in payload.get("venues", [])]
    return Corpus(payload["name"], papers, authors=authors, venues=venues,
                  strict=strict)


def save_corpus(corpus: Corpus, path: str | os.PathLike) -> None:
    """Write *corpus* to a JSON file."""
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(corpus_to_dict(corpus), handle)


def load_corpus(path: str | os.PathLike, strict: bool = True) -> Corpus:
    """Read a corpus previously written by :func:`save_corpus` (or dumped
    into the same schema from external data)."""
    with open(os.fspath(path), encoding="utf-8") as handle:
        return corpus_from_dict(json.load(handle), strict=strict)
