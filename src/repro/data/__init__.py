"""Scholarly data substrate: schema, taxonomy, corpus, synthetic generators."""

from repro.data.corpus import Corpus
from repro.data.io import (
    corpus_from_dict,
    corpus_to_dict,
    load_corpus,
    save_corpus,
)
from repro.data.loaders import (
    ACM_CONFIG,
    PT_CONFIG,
    PUBMED_CONFIG,
    SCOPUS_CONFIG,
    corpus_statistics,
    load_acm,
    load_patents,
    load_pubmed_rct,
    load_scopus,
)
from repro.data.schema import Author, Paper, Venue
from repro.data.synthetic import (
    DEFAULT_PROFILE,
    DISCIPLINE_PROFILES,
    SyntheticCorpusConfig,
    generate_corpus,
)
from repro.data.taxonomy import (
    ACM_CCS_TOP_LEVEL,
    CategoryNode,
    ClassificationTree,
    acm_ccs_like,
    discipline_tree,
)

__all__ = [
    "Paper", "Author", "Venue", "Corpus",
    "ClassificationTree", "CategoryNode", "acm_ccs_like", "discipline_tree",
    "ACM_CCS_TOP_LEVEL",
    "SyntheticCorpusConfig", "generate_corpus",
    "DISCIPLINE_PROFILES", "DEFAULT_PROFILE",
    "load_acm", "load_scopus", "load_pubmed_rct", "load_patents",
    "corpus_statistics",
    "save_corpus", "load_corpus", "corpus_to_dict", "corpus_from_dict",
    "ACM_CONFIG", "SCOPUS_CONFIG", "PUBMED_CONFIG", "PT_CONFIG",
]
