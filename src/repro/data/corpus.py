"""The :class:`Corpus` container: papers + authors + venues + taxonomy.

A corpus owns the id indexes every other subsystem needs — reference
resolution, reverse citation lookup, per-author publication lists, and the
train/test year splits used throughout Sec. IV.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.data.schema import Author, Paper, Venue
from repro.data.taxonomy import ClassificationTree
from repro.errors import DataError


class Corpus:
    """An immutable-after-construction collection of scholarly records.

    Parameters
    ----------
    name:
        Corpus label (e.g. ``"acm"``, ``"scopus"``, ``"pt"``).
    papers, authors, venues:
        The records. Papers may reference ids outside the corpus only if
        ``strict=False`` (real bibliographies always have dangling refs).
    taxonomy:
        The classification tree papers' ``category_path`` entries live in.
    strict:
        When True, every reference/author/venue id must resolve.
    """

    def __init__(self, name: str, papers: Iterable[Paper],
                 authors: Iterable[Author] = (), venues: Iterable[Venue] = (),
                 taxonomy: ClassificationTree | None = None,
                 strict: bool = True) -> None:
        self.name = name
        self.taxonomy = taxonomy
        self._papers: dict[str, Paper] = {}
        for paper in papers:
            if paper.id in self._papers:
                raise DataError(f"duplicate paper id {paper.id!r}")
            self._papers[paper.id] = paper
        self._authors = {a.id: a for a in authors}
        self._venues = {v.id: v for v in venues}
        self._by_author: dict[str, list[str]] = defaultdict(list)
        self._cited_by: dict[str, list[str]] = defaultdict(list)
        for paper in self._papers.values():
            for author_id in paper.authors:
                self._by_author[author_id].append(paper.id)
            for ref in paper.references:
                self._cited_by[ref].append(paper.id)
        if strict:
            self.validate()

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    @property
    def papers(self) -> list[Paper]:
        """All papers, in insertion order."""
        return list(self._papers.values())

    @property
    def paper_ids(self) -> list[str]:
        """All paper ids, in insertion order."""
        return list(self._papers)

    @property
    def authors(self) -> list[Author]:
        """All authors."""
        return list(self._authors.values())

    @property
    def venues(self) -> list[Venue]:
        """All venues."""
        return list(self._venues.values())

    def __len__(self) -> int:
        return len(self._papers)

    def __iter__(self) -> Iterator[Paper]:
        return iter(self._papers.values())

    def __contains__(self, paper_id: str) -> bool:
        return paper_id in self._papers

    def get_paper(self, paper_id: str) -> Paper:
        """Paper by id, raising :class:`DataError` when absent."""
        paper = self._papers.get(paper_id)
        if paper is None:
            raise DataError(f"unknown paper id {paper_id!r} in corpus {self.name!r}")
        return paper

    def get_author(self, author_id: str) -> Author:
        """Author by id, raising :class:`DataError` when absent."""
        author = self._authors.get(author_id)
        if author is None:
            raise DataError(f"unknown author id {author_id!r} in corpus {self.name!r}")
        return author

    def get_venue(self, venue_id: str) -> Venue:
        """Venue by id, raising :class:`DataError` when absent."""
        venue = self._venues.get(venue_id)
        if venue is None:
            raise DataError(f"unknown venue id {venue_id!r} in corpus {self.name!r}")
        return venue

    # ------------------------------------------------------------------
    # Derived indexes
    # ------------------------------------------------------------------
    def papers_of_author(self, author_id: str) -> list[Paper]:
        """Publications of *author_id*, corpus order."""
        return [self._papers[pid] for pid in self._by_author.get(author_id, [])]

    def citers_of(self, paper_id: str) -> list[Paper]:
        """Papers in the corpus that cite *paper_id* (in-edges)."""
        return [self._papers[pid] for pid in self._cited_by.get(paper_id, [])]

    def in_degree(self, paper_id: str) -> int:
        """Number of in-corpus citations received by *paper_id*."""
        return len(self._cited_by.get(paper_id, []))

    def by_field(self, field: str) -> list[Paper]:
        """Papers whose discipline label equals *field*."""
        return [p for p in self._papers.values() if p.field == field]

    def by_year(self, year_min: int | None = None, year_max: int | None = None) -> list[Paper]:
        """Papers published within the (inclusive) year window."""
        return [p for p in self._papers.values()
                if (year_min is None or p.year >= year_min)
                and (year_max is None or p.year <= year_max)]

    def fields(self) -> list[str]:
        """Distinct discipline labels, sorted."""
        return sorted({p.field for p in self._papers.values()})

    def split_by_year(self, year: int) -> tuple[list[Paper], list[Paper]]:
        """(papers published before *year*, papers published in/after *year*).

        This is the paper's Sec. IV-E protocol: train on pre-Y, test on the
        "new" papers from Y onward.
        """
        before = [p for p in self._papers.values() if p.year < year]
        after = [p for p in self._papers.values() if p.year >= year]
        return before, after

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity; raise :class:`DataError` on failure."""
        for paper in self._papers.values():
            for ref in paper.references:
                if ref not in self._papers:
                    raise DataError(f"paper {paper.id!r} references unknown id {ref!r}")
                cited = self._papers[ref]
                if cited.year > paper.year:
                    raise DataError(
                        f"paper {paper.id!r} ({paper.year}) cites {ref!r} "
                        f"from the future ({cited.year})"
                    )
            for author_id in paper.authors:
                if self._authors and author_id not in self._authors:
                    raise DataError(f"paper {paper.id!r} lists unknown author {author_id!r}")
            if paper.venue is not None and self._venues and paper.venue not in self._venues:
                raise DataError(f"paper {paper.id!r} lists unknown venue {paper.venue!r}")
