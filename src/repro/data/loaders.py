"""Dataset presets mirroring the paper's four corpora (Tab. III).

Each ``load_*`` function returns a synthetic :class:`~repro.data.corpus.
Corpus` whose schema and feature coverage match the corresponding real
dataset; ``scale`` multiplies record counts for heavier benchmark runs.

============  =========================================================
Loader        Mirrors
============  =========================================================
load_acm      ACM Digital Library: computer-science only, ACM-CCS tree,
              venues/keywords/affiliations present, 6.34 sentences/abs.
load_scopus   Scopus: multi-disciplinary (CS, medicine, sociology),
              no affiliations, 5.92 sentences/abstract.
load_pubmed   PubMedRCT: biomedical, long abstracts (11.5 sentences),
              gold sentence-function labels (all our corpora carry them).
load_patents  USPTO PT set: authors + references only (no venues,
              keywords, or affiliations), one year with months.
============  =========================================================
"""

from __future__ import annotations

from dataclasses import replace

from repro.data.corpus import Corpus
from repro.data.synthetic import SyntheticCorpusConfig, generate_corpus

ACM_CONFIG = SyntheticCorpusConfig(
    name="acm",
    n_papers=900,
    n_authors=260,
    n_venues=12,
    year_min=2000,
    year_max=2019,
    disciplines=("computer_science",),
    taxonomy_kind="acm",
    topics_per_discipline=4,
    avg_sentences=6.34,
    refs_mean=10.0,
    seed=101,
)

SCOPUS_CONFIG = SyntheticCorpusConfig(
    name="scopus",
    n_papers=720,
    n_authors=220,
    n_venues=9,
    year_min=2008,
    year_max=2017,
    disciplines=("computer_science", "medicine", "sociology"),
    taxonomy_kind="discipline",
    topics_per_discipline=4,
    avg_sentences=5.92,
    refs_mean=8.0,
    include_affiliations=False,
    seed=202,
)

PUBMED_CONFIG = SyntheticCorpusConfig(
    name="pubmed_rct",
    n_papers=500,
    n_authors=160,
    n_venues=6,
    year_min=2008,
    year_max=2017,
    disciplines=("medicine",),
    taxonomy_kind="discipline",
    topics_per_discipline=5,
    avg_sentences=11.5,
    refs_mean=9.0,
    seed=303,
)

PT_CONFIG = SyntheticCorpusConfig(
    name="pt",
    n_papers=420,
    n_authors=140,
    n_venues=1,
    year_min=2017,
    year_max=2017,
    disciplines=("computer_science",),
    taxonomy_kind="discipline",
    topics_per_discipline=5,
    avg_sentences=5.0,
    refs_mean=7.0,
    include_keywords=False,
    include_venues=False,
    include_affiliations=False,
    assign_months=True,
    seed=404,
)


def _load(config: SyntheticCorpusConfig, scale: float, seed: int | None) -> Corpus:
    if scale != 1.0:
        config = config.scaled(scale)
    if seed is not None:
        config = replace(config, seed=seed)
    return generate_corpus(config)


def load_acm(scale: float = 1.0, seed: int | None = None) -> Corpus:
    """ACM-DL-like corpus (computer science, ACM CCS taxonomy)."""
    return _load(ACM_CONFIG, scale, seed)


def load_scopus(scale: float = 1.0, seed: int | None = None) -> Corpus:
    """Scopus-like multi-disciplinary corpus."""
    return _load(SCOPUS_CONFIG, scale, seed)


def load_pubmed_rct(scale: float = 1.0, seed: int | None = None) -> Corpus:
    """PubMedRCT-like biomedical corpus with long, labelled abstracts."""
    return _load(PUBMED_CONFIG, scale, seed)


def load_patents(scale: float = 1.0, seed: int | None = None) -> Corpus:
    """USPTO-patent-like low-resource corpus (authors + references only)."""
    return _load(PT_CONFIG, scale, seed)


def corpus_statistics(corpus: Corpus) -> dict[str, object]:
    """Summary row in the spirit of the paper's Tab. III."""
    keywords = {kw for p in corpus for kw in p.keywords}
    venues = {p.venue for p in corpus if p.venue is not None}
    classes = {p.field for p in corpus}
    affiliations = {a.affiliation for a in corpus.authors if a.affiliation}
    years = [p.year for p in corpus]
    return {
        "corpus": corpus.name,
        "papers": len(corpus),
        "authors": len(corpus.authors),
        "publication_years": f"{min(years)}-{max(years)}" if years else "-",
        "keywords": len(keywords) or "-",
        "venues": len(venues) or "-",
        "classes": len(classes),
        "affiliations": len(affiliations) or "-",
    }
