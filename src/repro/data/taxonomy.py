"""Hierarchical classification system (HCS) — an ACM-CCS-like category tree.

Expert rule f_c (paper Eq. 1) measures the difference of two papers as a
level-weighted edit distance between their root-paths in the tree. This
module supplies the tree structure: named nodes with parent links and
levels, root-path extraction, and deterministic synthetic tree factories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class CategoryNode:
    """One node of the classification tree."""

    name: str
    parent: str | None
    level: int  # root has level 0


class ClassificationTree:
    """A rooted tree of category tags with level-indexed weights.

    Nodes are identified by unique string names. The root is created
    automatically as ``"root"`` at level 0.
    """

    ROOT = "root"

    def __init__(self) -> None:
        self._nodes: dict[str, CategoryNode] = {
            self.ROOT: CategoryNode(self.ROOT, None, 0)
        }
        self._children: dict[str, list[str]] = {self.ROOT: []}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, name: str, parent: str = ROOT) -> None:
        """Insert a category *name* under *parent*."""
        if not name or name == self.ROOT:
            raise ValueError(f"invalid category name {name!r}")
        if name in self._nodes:
            raise DataError(f"duplicate category {name!r}")
        parent_node = self._nodes.get(parent)
        if parent_node is None:
            raise DataError(f"unknown parent category {parent!r}")
        self._nodes[name] = CategoryNode(name, parent, parent_node.level + 1)
        self._children[name] = []
        self._children[parent].append(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def level(self, name: str) -> int:
        """Depth of *name* (root = 0)."""
        return self._require(name).level

    def children(self, name: str) -> tuple[str, ...]:
        """Immediate children of *name*."""
        self._require(name)
        return tuple(self._children[name])

    def leaves(self) -> tuple[str, ...]:
        """All leaf categories, in insertion order."""
        return tuple(name for name, kids in self._children.items()
                     if not kids and name != self.ROOT)

    def path_to_root(self, name: str) -> tuple[str, ...]:
        """Tags on the path root -> *name*, excluding the root itself.

        This is the paper's ``r_p`` set for a paper tagged *name*.
        """
        node = self._require(name)
        path: list[str] = []
        while node.parent is not None:
            path.append(node.name)
            node = self._nodes[node.parent]
        return tuple(reversed(path))

    def depth(self) -> int:
        """Maximum node level."""
        return max(node.level for node in self._nodes.values())

    def _require(self, name: str) -> CategoryNode:
        node = self._nodes.get(name)
        if node is None:
            raise DataError(f"unknown category {name!r}")
        return node


#: Top-level ACM-CCS-style research areas used by the experiments
#: (Tables II and the Fig. 3 clustering study name four of them).
ACM_CCS_TOP_LEVEL = (
    "Information Systems",
    "Theory of Computation",
    "General Literature",
    "Hardware",
    "Software",
    "Computing Methodologies",
)


def acm_ccs_like(areas_per_top: int = 3, topics_per_area: int = 4,
                 seed: int | None = 0) -> ClassificationTree:
    """Build a three-level ACM-CCS-like tree.

    Level 1: the :data:`ACM_CCS_TOP_LEVEL` research areas.
    Level 2: ``areas_per_top`` sub-areas each.
    Level 3: ``topics_per_area`` topics per sub-area (the paper leaves).
    """
    if areas_per_top < 1 or topics_per_area < 1:
        raise ValueError("areas_per_top and topics_per_area must be >= 1")
    rng = as_generator(seed)
    tree = ClassificationTree()
    for top in ACM_CCS_TOP_LEVEL:
        tree.add(top)
        for a in range(areas_per_top):
            area = f"{top} / Area {a + 1}"
            tree.add(area, parent=top)
            for t in range(topics_per_area):
                # The trailing random suffix makes leaves look like real
                # topic codes and keeps names unique across regenerations.
                suffix = int(rng.integers(100, 999))
                tree.add(f"{area} / Topic {t + 1}-{suffix}", parent=area)
    return tree


def discipline_tree(disciplines: tuple[str, ...], topics_per_discipline: int = 5,
                    seed: int | None = 0) -> ClassificationTree:
    """Two-level tree: discipline -> topics (used for Scopus-like corpora)."""
    if topics_per_discipline < 1:
        raise ValueError("topics_per_discipline must be >= 1")
    _ = as_generator(seed)  # reserved for future stochastic naming
    tree = ClassificationTree()
    for discipline in disciplines:
        tree.add(discipline)
        for t in range(topics_per_discipline):
            tree.add(f"{discipline} / topic-{t + 1}", parent=discipline)
    return tree
