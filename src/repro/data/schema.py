"""Record types for scholarly corpora: papers, authors, venues, patents.

The three real datasets in the paper (ACM DL, Scopus, PubMedRCT) share the
metadata schema "title, abstract, citation, field label" plus authors,
venues, keywords, and references; the patent dataset (PT) has only
ownership and references. One :class:`Paper` dataclass covers all of them —
low-resource records simply leave the optional fields empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Author:
    """A researcher (or patent owner)."""

    id: str
    name: str
    affiliation: str | None = None

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("Author.id must be non-empty")


@dataclass(frozen=True)
class Venue:
    """A publication venue (conference or journal)."""

    id: str
    name: str
    field: str | None = None

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("Venue.id must be non-empty")


@dataclass(frozen=True)
class Paper:
    """A paper or patent record.

    Attributes
    ----------
    id:
        Unique identifier within its corpus.
    title, abstract:
        Text content. The abstract is a sequence of sentences.
    year:
        Publication year.
    month:
        Publication month 1..12 when known (patent corpora use it for the
        Jan-Oct / Nov-Dec split of Fig. 6); ``None`` otherwise.
    field:
        Discipline label (e.g. ``"computer_science"``).
    category_path:
        Path of tags from the classification-tree root to the paper's leaf
        category (excluding the root itself), used by expert rule f_c.
    keywords:
        Author-chosen keywords, used by expert rule f_w.
    references:
        Ids of cited papers, used by expert rule f_r and the citation graph.
    authors:
        Author ids.
    venue:
        Venue id (``None`` for low-resource records such as patents).
    citation_count:
        Citations received within the evaluation horizon — the ground-truth
        influence signal for the correlation studies.
    sentence_labels:
        Gold per-sentence function tags (0=background, 1=method, 2=result),
        available on PubMedRCT-style records and on all synthetic corpora.
    novelty:
        *Generator-planted* ground-truth novelty per subspace name. Hidden
        from models (they never read it); used by data generation to drive
        citations and by tests to validate recovered correlations.
    """

    id: str
    title: str
    abstract: str
    year: int
    field: str
    month: int | None = None
    category_path: tuple[str, ...] = ()
    keywords: tuple[str, ...] = ()
    references: tuple[str, ...] = ()
    authors: tuple[str, ...] = ()
    venue: str | None = None
    citation_count: int = 0
    sentence_labels: tuple[int, ...] = ()
    novelty: dict[str, float] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("Paper.id must be non-empty")
        if self.citation_count < 0:
            raise ValueError(f"citation_count must be >= 0, got {self.citation_count}")
        if self.month is not None and not 1 <= self.month <= 12:
            raise ValueError(f"month must be in 1..12 or None, got {self.month}")
        if self.id in self.references:
            raise ValueError(f"paper {self.id!r} cannot reference itself")

    @property
    def is_low_resource(self) -> bool:
        """True for patent-style records lacking venue and keywords."""
        return self.venue is None and not self.keywords
