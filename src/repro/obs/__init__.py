"""repro.obs — tracing, metrics, and training telemetry.

Observability for the SEM -> NPRec pipeline. Off by default; when off,
every helper here is a cheap no-op (one attribute read, no allocation),
so the instrumented hot paths in the trainers, the de-fuzzing sampler,
the graph builder, and the recommender cost nothing measurable.

Typical capture::

    from repro import obs

    obs.configure(enabled=True, reset=True)
    recommender.fit(corpus, train, new)          # instrumented internally
    print(obs.console_summary())                 # human summary
    obs.write_jsonl("results/obs/run.jsonl")     # machine-readable capture

and later ``python -m repro.obs report results/obs/run.jsonl``.

Instrumenting code::

    with obs.trace("my.stage", size=len(items)) as span:
        ...
        span.set("hits", hits)
    obs.count("my.dropped", n_dropped, reason="threshold")
    obs.gauge("my.queue_depth", depth)
    obs.observe("my.latency_seconds", seconds)

The metric/span name vocabulary used by the library itself is documented
in ``docs/API.md`` (section "repro.obs").
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

from repro.obs import config as _config
from repro.obs import profiling as _profiling
from repro.obs import runs, slo
from repro.obs.config import (
    ObsState,
    configure,
    get_registry,
    get_tracer,
    is_enabled,
    is_profiling,
)
from repro.obs.emitters import (
    console_summary,
    events,
    prometheus_text,
    read_jsonl,
    render_multi_report,
    render_report,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, Quantile
from repro.obs.tracing import SpanRecord, SpanStats, Tracer

__all__ = [
    "configure", "is_enabled", "is_profiling", "get_registry", "get_tracer",
    "ObsState",
    "trace", "traced", "count", "gauge", "observe", "observe_quantile",
    "profile",
    "Counter", "Gauge", "Histogram", "Quantile", "P2Quantile",
    "MetricsRegistry", "DEFAULT_BUCKETS", "DEFAULT_QUANTILES",
    "Tracer", "SpanRecord", "SpanStats",
    "write_jsonl", "read_jsonl", "events", "prometheus_text",
    "console_summary", "render_report", "render_multi_report",
    "runs", "slo",
]


class _NoopSpan:
    """Inert span handed out while observability is disabled."""

    __slots__ = ()
    name = "<disabled>"
    duration = 0.0
    attrs: dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        """No-op."""


class _NoopContext:
    """Inert, reentrant context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Shared singletons: ``trace`` returns the *same* object on every
#: disabled call, so the fast path allocates nothing.
NOOP_SPAN = _NoopSpan()
NOOP_CONTEXT = _NoopContext()


class _SpanContext:
    """Live context manager binding one span to the global tracer."""

    __slots__ = ("_name", "_attrs", "_record")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self._record = _config._STATE.tracer.start(self._name, self._attrs)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._record is not None
        if exc_type is not None:
            # Error exits must always finish the span (tagged, and with
            # any leaked child spans unwound) so tracer open_depth never
            # leaks and the failed region stays visible in reports.
            self._record.set("error", exc_type.__name__)
            _config._STATE.tracer.unwind_to(self._record)
        else:
            _config._STATE.tracer.finish(self._record)
        return False


def trace(name: str, **attrs: object) -> _SpanContext | _NoopContext:
    """Context manager timing one named region (a *span*).

    Spans nest: a ``trace`` opened inside another becomes its child in
    the capture. The yielded span supports ``.set(key, value)`` for
    attaching attributes mid-flight. When observability is disabled this
    returns a shared no-op context and records nothing.
    """
    if not _config._STATE.enabled:
        return NOOP_CONTEXT
    return _SpanContext(name, attrs)


_F = TypeVar("_F", bound=Callable)


def traced(name: str | None = None, **attrs: object) -> Callable[[_F], _F]:
    """Decorator form of :func:`trace`; defaults to the function's qualname."""

    def deco(fn: _F) -> _F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _config._STATE.enabled:
                return fn(*args, **kwargs)
            with trace(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


def count(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment the counter *name* (+labels) by *amount*; no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: str) -> None:
    """Set the gauge *name* (+labels) to *value*; no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: str) -> None:
    """Record *value* into the histogram *name* (+labels); no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.histogram(name, **labels).observe(value)


def observe_quantile(name: str, value: float, **labels: str) -> None:
    """Record *value* into the streaming-quantile family *name* (+labels).

    The P² sketch behind each child keeps p50/p90/p99 estimates in O(1)
    memory (see :mod:`repro.obs.quantiles`); no-op when observability is
    off. Latency call sites record into both a bucket histogram (for
    Prometheus-style aggregation) and a quantile family (for exact-ish
    tail percentiles in run snapshots and SLO checks).
    """
    state = _config._STATE
    if state.enabled:
        state.registry.quantile(name, **labels).observe(value)


def profile(stage: str, top_n: int = 5, **attrs: object):
    """Allocation-profiling span: ``trace`` plus tracemalloc deltas.

    Opens a span named ``profile.<stage>`` carrying ``alloc_net_kb``,
    ``alloc_peak_kb``, and the top-*top_n* allocation sites as span
    attributes, and records the same numbers into the
    ``profile.net_alloc_kb``/``profile.peak_alloc_kb`` histograms
    (labelled ``stage=...``). Requires *both* ``configure(enabled=True)``
    and ``configure(profiling=True)``; otherwise this is the same shared
    no-op context as a disabled :func:`trace`.
    """
    if not (_config._STATE.enabled and _config._STATE.profiling):
        return NOOP_CONTEXT
    return _profiling.ProfileContext(stage, top_n, attrs)
