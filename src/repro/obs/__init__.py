"""repro.obs — tracing, metrics, and training telemetry.

Observability for the SEM -> NPRec pipeline. Off by default; when off,
every helper here is a cheap no-op (one attribute read, no allocation),
so the instrumented hot paths in the trainers, the de-fuzzing sampler,
the graph builder, and the recommender cost nothing measurable.

Typical capture::

    from repro import obs

    obs.configure(enabled=True, reset=True)
    recommender.fit(corpus, train, new)          # instrumented internally
    print(obs.console_summary())                 # human summary
    obs.write_jsonl("results/obs/run.jsonl")     # machine-readable capture

and later ``python -m repro.obs report results/obs/run.jsonl``.

Instrumenting code::

    with obs.trace("my.stage", size=len(items)) as span:
        ...
        span.set("hits", hits)
    obs.count("my.dropped", n_dropped, reason="threshold")
    obs.gauge("my.queue_depth", depth)
    obs.observe("my.latency_seconds", seconds)

The metric/span name vocabulary used by the library itself is documented
in ``docs/API.md`` (section "repro.obs").
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

from repro.obs import config as _config
from repro.obs.config import (
    ObsState,
    configure,
    get_registry,
    get_tracer,
    is_enabled,
)
from repro.obs.emitters import (
    console_summary,
    events,
    prometheus_text,
    read_jsonl,
    render_report,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import SpanRecord, SpanStats, Tracer

__all__ = [
    "configure", "is_enabled", "get_registry", "get_tracer", "ObsState",
    "trace", "traced", "count", "gauge", "observe",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "Tracer", "SpanRecord", "SpanStats",
    "write_jsonl", "read_jsonl", "events", "prometheus_text",
    "console_summary", "render_report",
]


class _NoopSpan:
    """Inert span handed out while observability is disabled."""

    __slots__ = ()
    name = "<disabled>"
    duration = 0.0
    attrs: dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        """No-op."""


class _NoopContext:
    """Inert, reentrant context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Shared singletons: ``trace`` returns the *same* object on every
#: disabled call, so the fast path allocates nothing.
NOOP_SPAN = _NoopSpan()
NOOP_CONTEXT = _NoopContext()


class _SpanContext:
    """Live context manager binding one span to the global tracer."""

    __slots__ = ("_name", "_attrs", "_record")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self._record = _config._STATE.tracer.start(self._name, self._attrs)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._record is not None
        if exc_type is not None:
            self._record.attrs["error"] = exc_type.__name__
        _config._STATE.tracer.finish(self._record)
        return False


def trace(name: str, **attrs: object) -> _SpanContext | _NoopContext:
    """Context manager timing one named region (a *span*).

    Spans nest: a ``trace`` opened inside another becomes its child in
    the capture. The yielded span supports ``.set(key, value)`` for
    attaching attributes mid-flight. When observability is disabled this
    returns a shared no-op context and records nothing.
    """
    if not _config._STATE.enabled:
        return NOOP_CONTEXT
    return _SpanContext(name, attrs)


_F = TypeVar("_F", bound=Callable)


def traced(name: str | None = None, **attrs: object) -> Callable[[_F], _F]:
    """Decorator form of :func:`trace`; defaults to the function's qualname."""

    def deco(fn: _F) -> _F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _config._STATE.enabled:
                return fn(*args, **kwargs)
            with trace(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


def count(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment the counter *name* (+labels) by *amount*; no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: str) -> None:
    """Set the gauge *name* (+labels) to *value*; no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: str) -> None:
    """Record *value* into the histogram *name* (+labels); no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.histogram(name, **labels).observe(value)
