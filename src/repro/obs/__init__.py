"""repro.obs — tracing, metrics, and training telemetry.

Observability for the SEM -> NPRec pipeline. Off by default; when off,
every helper here is a cheap no-op (one attribute read, no allocation),
so the instrumented hot paths in the trainers, the de-fuzzing sampler,
the graph builder, and the recommender cost nothing measurable.

Typical capture::

    from repro import obs

    obs.configure(enabled=True, reset=True)
    recommender.fit(corpus, train, new)          # instrumented internally
    print(obs.console_summary())                 # human summary
    obs.write_jsonl("results/obs/run.jsonl")     # machine-readable capture

and later ``python -m repro.obs report results/obs/run.jsonl``.

Instrumenting code::

    with obs.trace("my.stage", size=len(items)) as span:
        ...
        span.set("hits", hits)
    obs.count("my.dropped", n_dropped, reason="threshold")
    obs.gauge("my.queue_depth", depth)
    obs.observe("my.latency_seconds", seconds)

The metric/span name vocabulary used by the library itself is documented
in ``docs/API.md`` (section "repro.obs").
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

import time as _time

from repro.obs import config as _config
from repro.obs import profiling as _profiling
from repro.obs import flightrec, runs, server, slo, tracing
from repro.obs.config import (
    ObsState,
    configure,
    get_exemplars,
    get_registry,
    get_tracer,
    is_enabled,
    is_profiling,
)
from repro.obs.exemplars import Exemplar, ExemplarReservoir
from repro.obs.emitters import (
    console_summary,
    events,
    lint_exposition,
    prometheus_text,
    read_jsonl,
    render_exemplars,
    render_multi_report,
    render_report,
    set_metric_help,
    write_jsonl,
)
from repro.obs.flightrec import (
    FlightRecorder,
    get_flight_recorder,
    process_snapshot,
)
from repro.obs.server import ObsServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, Quantile
from repro.obs.tracing import (
    SpanRecord,
    SpanStats,
    Tracer,
    current_trace_id,
    new_trace_id,
)

__all__ = [
    "configure", "is_enabled", "is_profiling", "get_registry", "get_tracer",
    "get_exemplars", "ObsState",
    "trace", "traced", "request", "count", "gauge", "observe",
    "observe_quantile", "event", "profile",
    "current_trace_id", "new_trace_id",
    "Counter", "Gauge", "Histogram", "Quantile", "P2Quantile",
    "MetricsRegistry", "DEFAULT_BUCKETS", "DEFAULT_QUANTILES",
    "Tracer", "SpanRecord", "SpanStats",
    "Exemplar", "ExemplarReservoir",
    "write_jsonl", "read_jsonl", "events", "prometheus_text",
    "lint_exposition", "set_metric_help",
    "console_summary", "render_report", "render_multi_report",
    "render_exemplars",
    "FlightRecorder", "get_flight_recorder", "process_snapshot",
    "ObsServer",
    "runs", "slo", "flightrec", "server",
]


class _NoopSpan:
    """Inert span handed out while observability is disabled."""

    __slots__ = ()
    name = "<disabled>"
    duration = 0.0
    trace_id = None
    attrs: dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        """No-op."""


class _NoopContext:
    """Inert, reentrant context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Shared singletons: ``trace`` returns the *same* object on every
#: disabled call, so the fast path allocates nothing.
NOOP_SPAN = _NoopSpan()
NOOP_CONTEXT = _NoopContext()


class _SpanContext:
    """Live context manager binding one span to the global tracer."""

    __slots__ = ("_name", "_attrs", "_record")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self._record = _config._STATE.tracer.start(self._name, self._attrs)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._record is not None
        if exc_type is not None:
            # Error exits must always finish the span (tagged, and with
            # any leaked child spans unwound) so tracer open_depth never
            # leaks and the failed region stays visible in reports.
            self._record.set("error", exc_type.__name__)
            _config._STATE.tracer.unwind_to(self._record)
        else:
            _config._STATE.tracer.finish(self._record)
        return False


def trace(name: str, **attrs: object) -> _SpanContext | _NoopContext:
    """Context manager timing one named region (a *span*).

    Spans nest: a ``trace`` opened inside another becomes its child in
    the capture. The yielded span supports ``.set(key, value)`` for
    attaching attributes mid-flight. When observability is disabled this
    returns a shared no-op context and records nothing.
    """
    if not _config._STATE.enabled:
        return NOOP_CONTEXT
    return _SpanContext(name, attrs)


class _RequestContext:
    """Root span of one request: allocates and propagates a trace ID.

    Entering the context allocates a fresh ``trace_id``, binds it to the
    current execution context (:mod:`contextvars`, so every span, event,
    and metric exemplar recorded underneath inherits it — across the
    whole call stack, but never across threads), and asks the tracer to
    buffer the request's finished spans. On exit the collected span tree
    is offered to the exemplar reservoir, which keeps it if the request
    was among the slowest seen or errored.

    Nested requests *join* the enclosing trace instead of allocating a
    second ID: a ``serve.query`` request opened inside a
    ``loadgen.request`` records its spans under the load generator's
    trace, and only the outermost context offers the (single, coherent)
    span tree to the reservoir.
    """

    __slots__ = ("_name", "_attrs", "_token", "_record", "_owns")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self._name = name
        self._attrs = attrs
        self._token = None
        self._record: SpanRecord | None = None
        self._owns = True

    def __enter__(self) -> SpanRecord:
        state = _config._STATE
        enclosing = tracing.current_trace_id()
        self._owns = enclosing is None
        trace_id = new_trace_id() if self._owns else enclosing
        self._token = tracing.bind_trace_id(trace_id)
        if self._owns:
            state.tracer.watch(trace_id)
        self._record = state.tracer.start(self._name, self._attrs)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._record is not None and self._token is not None
        state = _config._STATE
        record = self._record
        if exc_type is not None:
            record.set("error", exc_type.__name__)
            state.tracer.unwind_to(record)
        else:
            state.tracer.finish(record)
        tracing.unbind_trace_id(self._token)
        if not self._owns:
            # A joined (nested) request leaves the watch buffer and the
            # exemplar offer to the context that allocated the trace.
            return False
        spans = state.tracer.unwatch(record.trace_id)
        error = record.attrs.get("error")
        flightrec.get_flight_recorder().note_request(
            record.name, record.duration,
            str(error) if error is not None else None, record.trace_id)
        state.exemplars.offer(Exemplar(
            trace_id=record.trace_id, name=record.name,
            duration=record.duration,
            error=str(error) if error is not None else None,
            spans=tuple(s.snapshot() for s in sorted(spans,
                                                     key=lambda s: s.index)),
            attrs=dict(record.attrs)))
        return False


def request(name: str, **attrs: object) -> _RequestContext | _NoopContext:
    """Open a *request* span: a trace-ID-carrying root for one query.

    Like :func:`trace`, but additionally allocates a request trace ID,
    propagates it to everything recorded inside (spans, :func:`event`
    lines, histogram/quantile exemplars), and offers the request's full
    span tree to the exemplar reservoir on exit. The yielded span's
    ``trace_id`` attribute is the allocated ID. A ``request`` opened
    inside another request joins the enclosing trace (same ID, one
    reservoir offer by the outermost context). No-op when disabled.
    """
    if not _config._STATE.enabled:
        return NOOP_CONTEXT
    return _RequestContext(name, attrs)


def event(name: str, **fields: object) -> None:
    """Append one structured event to the bounded in-process event log.

    Events are the high-cardinality companion to counters: where
    ``count("serve.degraded", reason=...)`` aggregates, an event records
    the *individual occurrence* stamped with wall time and the current
    request's trace ID, so a degraded answer in a capture can be joined
    back to the exact request that produced it. No-op when disabled.
    """
    state = _config._STATE
    if state.enabled:
        state.events.append({
            "type": "event", "name": name, "time": _time.time(),
            "trace_id": tracing.current_trace_id(), **fields,
        })
        flightrec.get_flight_recorder().note_event(name, fields)


_F = TypeVar("_F", bound=Callable)


def traced(name: str | None = None, **attrs: object) -> Callable[[_F], _F]:
    """Decorator form of :func:`trace`; defaults to the function's qualname."""

    def deco(fn: _F) -> _F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _config._STATE.enabled:
                return fn(*args, **kwargs)
            with trace(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


def count(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment the counter *name* (+labels) by *amount*; no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: str) -> None:
    """Set the gauge *name* (+labels) to *value*; no-op when off."""
    state = _config._STATE
    if state.enabled:
        state.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, *, trace_id: str | None = None,
            **labels: str) -> None:
    """Record *value* into the histogram *name* (+labels); no-op when off.

    ``trace_id`` pins the max-observation exemplar to a specific request
    instead of the ambient context — needed when the sample (e.g. a
    request span's ``duration``) is only known *after* the request
    context has exited and unbound the ambient ID.
    """
    state = _config._STATE
    if state.enabled:
        state.registry.histogram(name, **labels).observe(
            value, trace_id=trace_id)


def observe_quantile(name: str, value: float, *,
                     trace_id: str | None = None, **labels: str) -> None:
    """Record *value* into the streaming-quantile family *name* (+labels).

    The P² sketch behind each child keeps p50/p90/p99 estimates in O(1)
    memory (see :mod:`repro.obs.quantiles`); no-op when observability is
    off. Latency call sites record into both a bucket histogram (for
    Prometheus-style aggregation) and a quantile family (for exact-ish
    tail percentiles in run snapshots and SLO checks). ``trace_id`` pins
    the exemplar to a specific request (see :func:`observe`).
    """
    state = _config._STATE
    if state.enabled:
        state.registry.quantile(name, **labels).observe(
            value, trace_id=trace_id)


def profile(stage: str, top_n: int = 5, **attrs: object):
    """Allocation-profiling span: ``trace`` plus tracemalloc deltas.

    Opens a span named ``profile.<stage>`` carrying ``alloc_net_kb``,
    ``alloc_peak_kb``, and the top-*top_n* allocation sites as span
    attributes, and records the same numbers into the
    ``profile.net_alloc_kb``/``profile.peak_alloc_kb`` histograms
    (labelled ``stage=...``). Requires *both* ``configure(enabled=True)``
    and ``configure(profiling=True)``; otherwise this is the same shared
    no-op context as a disabled :func:`trace`.
    """
    if not (_config._STATE.enabled and _config._STATE.profiling):
        return NOOP_CONTEXT
    return _profiling.ProfileContext(stage, top_n, attrs)
