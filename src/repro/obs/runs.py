"""Run registry: schema-versioned capture snapshots plus regression gating.

Every benchmark or training capture can be frozen into one JSON snapshot
(``results/obs/runs/<run_id>.json``) carrying the git SHA, free-form
metadata (seed, scale, ...), per-metric summaries, and per-span-name
duration aggregates. Two snapshots are comparable field by field:

- ``python -m repro.obs diff A B`` renders every shared metric's delta;
- ``python -m repro.obs check RUN --baseline FILE --tolerance T`` exits
  nonzero when a *gated* metric regressed beyond tolerance — the CI perf
  gate.

What gates: a metric key's direction is classified from its name.
Latency/duration/memory keys, ANN scan fractions, and failure-ish
counters (degraded, dropped, faults, guard trips, ...) regress upward;
accuracy/agreement/recall@K regress downward — the ANN recall gate
rides on this; everything else (structural gauges, throughput
counters whose "good" direction is ambiguous) is compared in ``diff``
but never fails ``check``. Timing keys get their own (far looser)
tolerance since wall-clock varies across machines; counter/gauge keys
are deterministic for a fixed seed and use the tight tolerance.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import time
import uuid
from dataclasses import dataclass

from repro.obs import config
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

#: Bump on any incompatible snapshot layout change.
SCHEMA_VERSION = 1

#: Metric-key fragments whose growth is a regression (latency, memory,
#: failures) vs whose shrinkage is one (quality scores).
_LOWER_IS_BETTER = re.compile(
    r"latency|duration|seconds|alloc|degraded|dropped|skipped|underfilled|"
    r"failures|faults|guard\.trips|retries_exhausted|corrupt|rollbacks|"
    r"errors|error_rate|scan_fraction|[._]shed|torn_records|rolled_back|"
    r"wal\.lag")
_HIGHER_IS_BETTER = re.compile(r"accuracy|agreement|recall|achieved_qps|"
                               r"throughput")
#: Keys that measure wall-clock, memory, or machine-dependent rates and
#: therefore gate with the looser tolerance.
_TIMING = re.compile(r"latency|duration|seconds|alloc|qps|throughput")


def git_sha() -> str | None:
    """Current commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=pathlib.Path(__file__).resolve().parent)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def capture_run(run_id: str | None = None,
                meta: dict[str, object] | None = None,
                registry: MetricsRegistry | None = None,
                tracer: Tracer | None = None) -> dict[str, object]:
    """Freeze the live capture into one JSON-ready run snapshot."""
    registry = registry if registry is not None else config.get_registry()
    tracer = tracer if tracer is not None else config.get_tracer()
    if run_id is None:
        run_id = (time.strftime("run-%Y%m%d-%H%M%S")
                  + "-" + uuid.uuid4().hex[:8])
    spans = {
        name: {"calls": stats.calls, "total": stats.total,
               "mean": stats.mean, "max": stats.max}
        for name, stats in tracer.aggregate().items()
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "created": time.time(),
        "git_sha": git_sha(),
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
        "spans": spans,
    }


def write_run(directory: "str | pathlib.Path",
              run_id: str | None = None,
              meta: dict[str, object] | None = None,
              registry: MetricsRegistry | None = None,
              tracer: Tracer | None = None) -> pathlib.Path:
    """Capture and persist a snapshot under ``<directory>/<run_id>.json``."""
    snapshot = capture_run(run_id, meta, registry, tracer)
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{snapshot['run_id']}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_run(path: "str | pathlib.Path") -> dict[str, object]:
    """Parse and schema-check a snapshot written by :func:`write_run`."""
    path = pathlib.Path(path)
    try:
        snapshot = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a valid run snapshot: {exc}") from None
    if not isinstance(snapshot, dict) or "schema_version" not in snapshot:
        raise ValueError(f"{path}: missing schema_version — not a run snapshot")
    version = snapshot["schema_version"]
    if version != SCHEMA_VERSION:
        raise ValueError(f"{path}: snapshot schema v{version} is not "
                         f"supported (expected v{SCHEMA_VERSION})")
    return snapshot


# ----------------------------------------------------------------------
# Flattening and comparison
# ----------------------------------------------------------------------
def _metric_key(event: dict[str, object], fld: str) -> str:
    labels = event.get("labels") or {}
    label_str = ("{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                 + "}") if labels else ""
    return f"{event['name']}{label_str}:{fld}"


def flatten(snapshot: dict[str, object]) -> dict[str, float]:
    """One scalar per comparable quantity in a run snapshot.

    Counters/gauges contribute ``name{labels}:value``; histograms and
    quantiles contribute ``:count``, ``:mean``, and (quantiles only)
    ``:p50``-style estimate keys; span aggregates contribute
    ``span.<name>:calls|total|mean``.
    """
    flat: dict[str, float] = {}
    for event in snapshot.get("metrics", []):
        kind = event.get("kind")
        if kind in ("counter", "gauge"):
            flat[_metric_key(event, "value")] = float(event["value"])
        elif kind == "histogram":
            count = int(event["count"])
            flat[_metric_key(event, "count")] = float(count)
            if count:
                flat[_metric_key(event, "mean")] = float(event["sum"]) / count
        elif kind == "quantile":
            count = int(event["count"])
            flat[_metric_key(event, "count")] = float(count)
            if count:
                flat[_metric_key(event, "mean")] = float(event["sum"]) / count
                for q, estimate in (event.get("quantiles") or {}).items():
                    if estimate is not None:
                        key = _metric_key(event,
                                          f"p{format(float(q) * 100, 'g')}")
                        flat[key] = float(estimate)
    for name, stats in (snapshot.get("spans") or {}).items():
        flat[f"span.{name}:calls"] = float(stats["calls"])
        flat[f"span.{name}:total"] = float(stats["total"])
        flat[f"span.{name}:mean"] = float(stats["mean"])
    return flat


def classify(key: str) -> str | None:
    """``"lower"``/``"higher"``-is-better, or ``None`` (not gated)."""
    if key.endswith((":count", ":calls")):
        # Observation/call volume is workload, not quality — a run that
        # answered more queries did not regress.
        return None
    if _LOWER_IS_BETTER.search(key):
        return "lower"
    if _HIGHER_IS_BETTER.search(key):
        return "higher"
    return None


def is_timing(key: str) -> bool:
    """Whether *key* measures wall-clock/memory (loose-tolerance gated)."""
    return bool(_TIMING.search(key))


@dataclass(frozen=True)
class Delta:
    """One metric key compared across two snapshots."""

    key: str
    baseline: float | None
    current: float | None
    direction: str | None  # "lower"/"higher"-is-better, None = ungated

    @property
    def change(self) -> float | None:
        """Relative change vs baseline (None when not computable)."""
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return None if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    def regression(self, tolerance: float, timing_tolerance: float) -> bool:
        """Did this key get *worse* beyond its applicable tolerance?"""
        if self.direction is None or self.baseline is None \
                or self.current is None:
            return False
        budget = timing_tolerance if is_timing(self.key) else tolerance
        worse = (self.current - self.baseline if self.direction == "lower"
                 else self.baseline - self.current)
        if worse <= 0:
            return False
        if self.baseline == 0:
            # From exactly zero any worsening is real (counters of
            # failures); timing keys never have an exact-zero baseline.
            return True
        return worse / abs(self.baseline) > budget


def diff_runs(baseline: dict[str, object],
              current: dict[str, object]) -> list[Delta]:
    """Per-key deltas over the union of both snapshots' flattened keys."""
    flat_base = flatten(baseline)
    flat_cur = flatten(current)
    return [
        Delta(key, flat_base.get(key), flat_cur.get(key), classify(key))
        for key in sorted(set(flat_base) | set(flat_cur))
    ]


def check_runs(baseline: dict[str, object], current: dict[str, object],
               tolerance: float = 0.1,
               timing_tolerance: float = 5.0) -> list[Delta]:
    """The deltas that regressed beyond tolerance (empty == gate passes)."""
    return [d for d in diff_runs(baseline, current)
            if d.regression(tolerance, timing_tolerance)]


def render_diff(deltas: list[Delta], only_changed: bool = False) -> str:
    """Fixed-width table of per-key deltas (``diff`` CLI output)."""
    rows: list[tuple[str, str, str, str, str]] = []
    for delta in deltas:
        if only_changed and delta.baseline == delta.current:
            continue
        fmt = lambda v: "-" if v is None else f"{v:.6g}"
        change = delta.change
        if change is None:
            change_str = "-" if delta.baseline is not None else "new"
        else:
            change_str = f"{change * 100:+.1f}%"
        marker = {"lower": "v", "higher": "^"}.get(delta.direction, " ")
        rows.append((delta.key, fmt(delta.baseline), fmt(delta.current),
                     change_str, marker))
    if not rows:
        return "(no metrics to compare)"
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    header = (f"{'metric'.ljust(widths[0])}  {'baseline'.rjust(widths[1])}  "
              f"{'current'.rjust(widths[2])}  {'change'.rjust(widths[3])}")
    lines = [header, "-" * len(header)]
    for key, base, cur, change, marker in rows:
        lines.append(f"{key.ljust(widths[0])}  {base.rjust(widths[1])}  "
                     f"{cur.rjust(widths[2])}  {change.rjust(widths[3])}  "
                     f"{marker}")
    lines.append("")
    lines.append("(v = lower is better, ^ = higher is better, "
                 "blank = informational)")
    return "\n".join(lines)
