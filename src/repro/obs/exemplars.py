"""Bounded reservoir of request exemplars (full span trees).

Aggregates answer "how slow is p99" but not "what did the slow request
*do*". The :class:`ExemplarReservoir` closes that gap: every finished
request context (:func:`repro.obs.request`) offers its complete span
tree here, and the reservoir retains

- the **slowest N** successful requests (min-heap keyed by root
  duration, so a new offer evicts the fastest of the current keepers in
  O(log N)), and
- the **most recent M errored** requests (bounded deque — errors are
  rare enough that recency beats duration as the retention key, and a
  bound still holds under an error storm).

Everything retained is JSON-ready: exemplars ride along in the JSONL
capture (``{"type": "exemplar", ...}`` lines) and render as span trees
via ``python -m repro.obs report --exemplars``. Each exemplar carries
the ``trace_id`` of its originating request, joining it back to the
span/metric/event lines of the same capture.

Thread-safe: request contexts finish on loadgen worker threads.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass, field

#: Defaults sized for a load run: enough exemplars to see the shape of
#: the tail without the capture ballooning.
DEFAULT_SLOW_CAPACITY = 8
DEFAULT_ERROR_CAPACITY = 16


@dataclass(frozen=True)
class Exemplar:
    """One retained request: identity, outcome, and its full span tree."""

    trace_id: str
    name: str
    duration: float
    error: str | None = None
    #: JSON-ready span snapshots (finish order), the request root included.
    spans: tuple[dict, ...] = ()
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def reason(self) -> str:
        """Why the reservoir kept this exemplar: ``slow`` or ``error``."""
        return "error" if self.error is not None else "slow"

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump, shaped like the other capture event lines."""
        return {
            "type": "exemplar", "reason": self.reason,
            "trace_id": self.trace_id, "name": self.name,
            "duration": self.duration, "error": self.error,
            "attrs": dict(self.attrs),
            "spans": [dict(s) for s in self.spans],
        }


class ExemplarReservoir:
    """Retains the slowest-N and latest-M-errored request exemplars."""

    def __init__(self, slow_capacity: int = DEFAULT_SLOW_CAPACITY,
                 error_capacity: int = DEFAULT_ERROR_CAPACITY) -> None:
        if slow_capacity < 1:
            raise ValueError(f"slow_capacity must be >= 1, got {slow_capacity}")
        if error_capacity < 1:
            raise ValueError(
                f"error_capacity must be >= 1, got {error_capacity}")
        self.slow_capacity = slow_capacity
        self.error_capacity = error_capacity
        self.offered = 0
        self._lock = threading.Lock()
        #: (duration, tiebreak, exemplar) min-heap — root holds the
        #: fastest keeper, i.e. the next eviction candidate.
        self._slow: list[tuple[float, int, Exemplar]] = []
        self._errors: deque[Exemplar] = deque(maxlen=error_capacity)
        self._tiebreak = 0

    def offer(self, exemplar: Exemplar) -> bool:
        """Consider *exemplar* for retention; True when it was kept."""
        with self._lock:
            self.offered += 1
            if exemplar.error is not None:
                self._errors.append(exemplar)  # deque evicts the oldest
                return True
            self._tiebreak += 1
            entry = (exemplar.duration, self._tiebreak, exemplar)
            if len(self._slow) < self.slow_capacity:
                heapq.heappush(self._slow, entry)
                return True
            if exemplar.duration > self._slow[0][0]:
                heapq.heapreplace(self._slow, entry)
                return True
            return False

    # ------------------------------------------------------------------
    def slowest(self) -> list[Exemplar]:
        """Retained slow exemplars, slowest first."""
        with self._lock:
            return [e for _, _, e in sorted(self._slow, reverse=True)]

    def errored(self) -> list[Exemplar]:
        """Retained errored exemplars, most recent first."""
        with self._lock:
            return list(reversed(self._errors))

    def __len__(self) -> int:
        with self._lock:
            return len(self._slow) + len(self._errors)

    def snapshot(self) -> list[dict[str, object]]:
        """JSON-ready dump: errors first (most recent first), then slow."""
        return ([e.snapshot() for e in self.errored()]
                + [e.snapshot() for e in self.slowest()])

    def reset(self) -> None:
        """Drop every retained exemplar (used between captured runs)."""
        with self._lock:
            self._slow.clear()
            self._errors.clear()
            self.offered = 0
            self._tiebreak = 0
