"""Declarative service-level objectives over the metrics registry.

Two SLO shapes cover the serving stack:

- :class:`LatencySLO` — "p99 of ``serve.query.latency`` stays under
  250ms". Evaluated against the :class:`~repro.obs.quantiles.Quantile`
  family of the same name; with several label sets the *worst* child is
  the one judged (an SLO met only on average is not met).
- :class:`ErrorRateSLO` — "``serve.degraded`` stays under 5% of
  ``serve.queries``". Counter families are summed across label sets
  (every degradation reason burns the same budget). Lifetime totals are
  judged by :meth:`ErrorRateSLO.evaluate`; :class:`SLOMonitor` instead
  samples the counters over a rolling window and reports the **burn
  rate** (observed windowed error rate / budget — 1.0 means the budget
  is being consumed exactly as fast as allowed).

SLOs with no data (metric never recorded, denominator still zero)
evaluate as ``ok`` with ``no_data=True`` — an idle service is not a
breached one.

Breaches route through :class:`AlertSink` implementations
(console/JSONL/callback); :class:`SLOMonitor` dispatches one alert per
breached evaluation. A process-wide SLO registry (:func:`register_slo`)
lets the serving layer publish its objectives once and have
``ServingIndex.health()`` / ``python -m repro.serve health`` evaluate
them without plumbing objects through every call site.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.obs import config
from repro.obs.metrics import Gauge, MetricsRegistry
from repro.obs.quantiles import Quantile


@dataclass(frozen=True)
class SLOStatus:
    """Outcome of evaluating one SLO once."""

    slo: str
    kind: str
    ok: bool
    observed: float | None
    target: float
    no_data: bool = False
    burn_rate: float | None = None
    detail: str = ""

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump (health reports, JSONL alert sink)."""
        return {
            "slo": self.slo, "kind": self.kind, "ok": self.ok,
            "observed": self.observed, "target": self.target,
            "no_data": self.no_data, "burn_rate": self.burn_rate,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class LatencySLO:
    """Quantile-of-latency objective over one Quantile metric family."""

    name: str
    metric: str
    quantile: float = 0.99
    threshold: float = 0.25
    description: str = ""
    kind = "latency"

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")

    def evaluate(self, registry: MetricsRegistry | None = None) -> SLOStatus:
        """Judge the worst label-set child of the tracked quantile family."""
        registry = registry if registry is not None else config.get_registry()
        worst: float | None = None
        for child in registry.family(self.metric):
            if not isinstance(child, Quantile) or child.count == 0:
                continue
            if self.quantile in child.quantiles:
                estimate = child.estimate(self.quantile)
            else:
                # Fall back to the nearest tracked quantile at or above
                # the objective (conservative: never under-reports).
                higher = [q for q in child.quantiles if q >= self.quantile]
                estimate = child.estimate(min(higher) if higher
                                          else child.quantiles[-1])
            if estimate is not None and (worst is None or estimate > worst):
                worst = estimate
        if worst is None:
            return SLOStatus(self.name, self.kind, ok=True, observed=None,
                             target=self.threshold, no_data=True,
                             detail=f"no samples in {self.metric!r}")
        return SLOStatus(
            self.name, self.kind, ok=worst <= self.threshold, observed=worst,
            target=self.threshold,
            detail=(f"p{format(self.quantile * 100, 'g')} of {self.metric} = "
                    f"{worst:.4g}s vs target {self.threshold:.4g}s"))


@dataclass(frozen=True)
class ErrorRateSLO:
    """Error-budget objective: numerator/denominator counter families."""

    name: str
    numerator: str
    denominator: str
    budget: float = 0.05
    window: float = 300.0
    description: str = ""
    kind = "error_rate"

    def __post_init__(self) -> None:
        if not 0.0 < self.budget < 1.0:
            raise ValueError(f"budget must be in (0, 1), got {self.budget}")
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")

    def totals(self, registry: MetricsRegistry | None = None) -> tuple[float, float]:
        """Current lifetime (numerator, denominator) family totals."""
        registry = registry if registry is not None else config.get_registry()
        return (registry.family_total(self.numerator),
                registry.family_total(self.denominator))

    def judge(self, errors: float, total: float) -> SLOStatus:
        """Status for an (errors, total) pair — windowed or lifetime."""
        if total <= 0:
            return SLOStatus(self.name, self.kind, ok=True, observed=None,
                             target=self.budget, no_data=True,
                             detail=f"no traffic in {self.denominator!r}")
        rate = errors / total
        return SLOStatus(
            self.name, self.kind, ok=rate <= self.budget, observed=rate,
            target=self.budget, burn_rate=rate / self.budget,
            detail=(f"{self.numerator}/{self.denominator} = "
                    f"{errors:g}/{total:g} = {rate:.4f} vs budget "
                    f"{self.budget:g} (burn rate {rate / self.budget:.2f})"))

    def evaluate(self, registry: MetricsRegistry | None = None) -> SLOStatus:
        """Judge the lifetime totals (no window; see :class:`SLOMonitor`)."""
        return self.judge(*self.totals(registry))


@dataclass(frozen=True)
class GaugeBoundSLO:
    """Upper-bound objective over one gauge metric family.

    "``serve.wal.lag`` stays under 10,000 records" — judged against the
    *largest* label-set child of the tracked gauge family (a bound met
    only on average is not met, matching :class:`LatencySLO`). A gauge
    that has never been set evaluates as ``ok`` with ``no_data=True``.
    """

    name: str
    metric: str
    bound: float
    description: str = ""
    kind = "gauge_bound"

    def __post_init__(self) -> None:
        if self.bound <= 0:
            raise ValueError(f"bound must be > 0, got {self.bound}")

    def evaluate(self, registry: MetricsRegistry | None = None) -> SLOStatus:
        """Judge the worst (largest) child of the tracked gauge family."""
        registry = registry if registry is not None else config.get_registry()
        worst: float | None = None
        for child in registry.family(self.metric):
            if not isinstance(child, Gauge):
                continue
            if worst is None or child.value > worst:
                worst = child.value
        if worst is None:
            return SLOStatus(self.name, self.kind, ok=True, observed=None,
                             target=self.bound, no_data=True,
                             detail=f"gauge {self.metric!r} never set")
        return SLOStatus(
            self.name, self.kind, ok=worst <= self.bound, observed=worst,
            target=self.bound, burn_rate=worst / self.bound,
            detail=(f"{self.metric} = {worst:g} vs bound {self.bound:g} "
                    f"(burn rate {worst / self.bound:.2f})"))


#: Anything evaluable as an SLO.
SLO = LatencySLO | ErrorRateSLO | GaugeBoundSLO


class AlertSink(Protocol):
    """Destination for SLO breach notifications."""

    def emit(self, status: SLOStatus) -> None:
        """Deliver one breached :class:`SLOStatus`."""
        ...


class ConsoleAlertSink:
    """Writes one ``SLO BREACH`` line per alert (stderr by default)."""

    def __init__(self, stream=None) -> None:
        self._stream = stream

    def emit(self, status: SLOStatus) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(f"SLO BREACH [{status.slo}] {status.detail}", file=stream)


class JsonlAlertSink:
    """Appends one JSON object per alert to a file."""

    def __init__(self, path: "str | pathlib.Path") -> None:
        self.path = pathlib.Path(path)

    def emit(self, status: SLOStatus) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        event = {"type": "slo_alert", "time": time.time(), **status.snapshot()}
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


class CallbackAlertSink:
    """Hands each alert to an arbitrary callable (tests, pagers, ...)."""

    def __init__(self, callback: Callable[[SLOStatus], None]) -> None:
        self._callback = callback

    def emit(self, status: SLOStatus) -> None:
        self._callback(status)


@dataclass
class _Sample:
    time: float
    errors: float
    total: float


class SLOMonitor:
    """Rolling-window evaluation plus alert dispatch for a set of SLOs.

    Each :meth:`check` call samples the registry once; error-rate SLOs
    are judged on the delta between the oldest in-window sample and now
    (true burn rate over the window), latency SLOs on the current sketch
    state. Breached statuses are fanned out to every sink. The clock is
    injectable so windowed behaviour is deterministically testable.
    """

    def __init__(self, slos: "list[SLO] | None" = None,
                 sinks: "list[AlertSink] | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.slos: list[SLO] = list(slos) if slos is not None else []
        self.sinks: list[AlertSink] = list(sinks or [])
        self._clock = clock
        self._history: dict[str, deque[_Sample]] = {}

    def check(self, registry: MetricsRegistry | None = None) -> list[SLOStatus]:
        """Evaluate every SLO once; dispatch alerts; return all statuses."""
        now = self._clock()
        statuses: list[SLOStatus] = []
        for slo in self.slos:
            if isinstance(slo, ErrorRateSLO):
                errors, total = slo.totals(registry)
                window = self._history.setdefault(slo.name, deque())
                window.append(_Sample(now, errors, total))
                while window and window[0].time < now - slo.window:
                    window.popleft()
                oldest = window[0]
                status = slo.judge(errors - oldest.errors,
                                   total - oldest.total)
            else:
                status = slo.evaluate(registry)
            statuses.append(status)
            if not status.ok:
                for sink in self.sinks:
                    sink.emit(status)
        return statuses


# ----------------------------------------------------------------------
# Process-wide SLO registry
# ----------------------------------------------------------------------
_REGISTERED: dict[str, SLO] = {}


def register_slo(slo: SLO, replace: bool = True) -> SLO:
    """Publish *slo* under its name; returns the registered instance.

    With ``replace=False`` an existing registration under the same name
    wins (used by library defaults so operator overrides stick).
    """
    if not replace and slo.name in _REGISTERED:
        return _REGISTERED[slo.name]
    _REGISTERED[slo.name] = slo
    return slo


def unregister_slo(name: str) -> None:
    """Remove one registration (missing names are ignored)."""
    _REGISTERED.pop(name, None)


def clear_slos() -> None:
    """Drop every registered SLO (test isolation)."""
    _REGISTERED.clear()


def registered_slos() -> list[SLO]:
    """Registered SLOs in name order."""
    return [_REGISTERED[name] for name in sorted(_REGISTERED)]


def evaluate_registered(registry: MetricsRegistry | None = None) -> list[SLOStatus]:
    """Evaluate every registered SLO against *registry* (default global)."""
    return [slo.evaluate(registry) for slo in registered_slos()]


def default_serving_slos() -> tuple[SLO, ...]:
    """The serving stack's built-in objectives.

    Registered (non-destructively) by :class:`repro.serve.index.ServingIndex`
    so ``health()`` and the ``serve health`` CLI always have something to
    report; thresholds are deliberately generous for laptop-scale runs.
    """
    return (
        LatencySLO("serve.query.p99", metric="serve.query.latency",
                   quantile=0.99, threshold=0.25,
                   description="top-K query p99 under 250ms"),
        LatencySLO("serve.ingest.p99", metric="serve.ingest.latency",
                   quantile=0.99, threshold=5.0,
                   description="cold-start ingestion p99 under 5s"),
        ErrorRateSLO("serve.error_budget", numerator="serve.degraded",
                     denominator="serve.queries", budget=0.05,
                     description="under 5% of queries degraded"),
    )


def wal_lag_slo(bound: int = 10_000) -> GaugeBoundSLO:
    """Compaction-lag objective for the serving write-ahead log.

    Registered (non-destructively) by
    :meth:`repro.serve.index.ServingIndex.attach_wal`: once the
    ``serve.wal.lag`` gauge crosses *bound* records, ``health()`` and
    ``python -m repro.serve health`` report a breach — the log has grown
    past the point where replay-on-restart is cheap, and the operator
    should run ``python -m repro.serve compact``.
    """
    return GaugeBoundSLO("serve.wal.lag", metric="serve.wal.lag",
                         bound=float(bound),
                         description=f"WAL under {bound} records "
                                     "since last compaction")
