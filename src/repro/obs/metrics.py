"""Label-aware metric primitives: counters, gauges, histograms.

The registry follows the Prometheus data model in miniature: a metric
*family* is identified by name and kind, and each distinct label set under
a family owns one child metric. Everything is plain Python with no
dependencies so the module imports in microseconds and can be pulled into
any layer of the library without cycles.

Metric names are dotted (``nprec.train.grad_steps``); the Prometheus
renderer in :mod:`repro.obs.emitters` maps dots to underscores.

Thread-safe: serving and load-generator worker threads update metrics
concurrently, so get-or-create in the registry holds a registry lock and
every child metric serialises its own read-modify-write updates (counter
increments, P² marker adjustments, histogram buckets) behind a per-child
lock. Snapshots take the same locks, so a capture written mid-run is
internally consistent per child.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator

from repro.obs.quantiles import DEFAULT_QUANTILES, Quantile
from repro.obs.tracing import current_trace_id

#: Default histogram bucket upper bounds (seconds-flavoured, works for
#: latencies and for small unit-less values alike).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Canonical key for one label set: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (e.g. gradient steps, dropped pairs)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, object]:
        """JSON-ready state of this child metric."""
        return {"value": self.value}


class Gauge:
    """Point-in-time value that can move both ways (e.g. node counts)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the current value by *amount* (may be negative)."""
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, object]:
        """JSON-ready state of this child metric."""
        return {"value": self.value}


class Histogram:
    """Streaming distribution summary with Prometheus-style buckets.

    Tracks count, sum, min, max and per-bucket counts; ``bucket_counts``
    are *cumulative* (each bucket includes everything below its bound),
    matching the ``le`` semantics of the Prometheus text format.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "exemplar", "_lock")

    def __init__(self, name: str, labels: dict[str, str] | None = None,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Trace-ID exemplar of the worst (max) observation recorded
        #: inside a request context — joins the p99 tail back to one
        #: concrete request's span tree in the same capture.
        self.exemplar: dict[str, object] | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, *, trace_id: str | None = None) -> None:
        """Record one sample.

        ``trace_id`` overrides the ambient request context for the
        max-observation exemplar — call sites that record a request
        span's duration *after* its context has exited (and unbound the
        ambient ID) pass the span's own ``trace_id`` here.
        """
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            if value >= self.max:
                self.max = value
                tid = trace_id if trace_id is not None else current_trace_id()
                if tid is not None:
                    self.exemplar = {"trace_id": tid, "value": value}
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        """JSON-ready state of this child metric."""
        with self._lock:
            snap: dict[str, object] = {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": [list(pair) for pair in zip(self.buckets,
                                                       self.bucket_counts)],
            }
            if self.exemplar is not None:
                snap["exemplar"] = dict(self.exemplar)
            return snap


#: Any concrete metric child.
Metric = Counter | Gauge | Histogram | Quantile


class _Family:
    """All children of one (name, kind) pair, keyed by label set."""

    __slots__ = ("name", "kind", "children")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.children: dict[LabelKey, Metric] = {}


class MetricsRegistry:
    """Owner of every metric family; one per observability session.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    with a given name fixes the kind, and later calls with a conflicting
    kind raise so a name can never silently mean two things.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        # Guards family/child get-or-create and structural reads: two
        # threads racing the first observation of one (name, labels)
        # must receive the *same* child, never two (one of which would
        # silently swallow a thread's observations).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _child(self, kind: str, name: str, labels: dict[str, str],
               factory) -> Metric:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}, "
                    f"cannot re-register as a {kind}"
                )
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = factory()
                family.children[key] = child
            return child

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter child for *name* + *labels*."""
        return self._child("counter", name, labels,
                           lambda: Counter(name, labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge child for *name* + *labels*."""
        return self._child("gauge", name, labels,
                           lambda: Gauge(name, labels))

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        """Get or create the histogram child for *name* + *labels*."""
        return self._child("histogram", name, labels,
                           lambda: Histogram(name, labels, buckets))

    def quantile(self, name: str,
                 quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
                 **labels: str) -> Quantile:
        """Get or create the streaming-quantile child for *name* + *labels*."""
        return self._child("quantile", name, labels,
                           lambda: Quantile(name, labels, quantiles))

    # ------------------------------------------------------------------
    def get(self, name: str, **labels: str) -> Metric | None:
        """Look up an existing child without creating it."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def family(self, name: str) -> list[Metric]:
        """Every child of family *name* (empty when unregistered)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            return [family.children[key] for key in sorted(family.children)]

    def family_total(self, name: str) -> float:
        """Sum of a counter/gauge family's values across all label sets.

        SLO error budgets are defined over *families* (every
        ``serve.degraded`` reason counts against the budget), so the
        label breakdown is summed away here. Histogram/quantile families
        have no single value and raise.
        """
        total = 0.0
        for child in self.family(name):
            if not isinstance(child, (Counter, Gauge)):
                raise ValueError(
                    f"family_total over {name!r} needs counters/gauges, "
                    f"found a {child.kind}")
            total += child.value
        return total

    def collect(self) -> Iterator[Metric]:
        """All children, grouped by family, families in name order."""
        # Materialised under the lock so iteration never races a
        # concurrent registration (dict-changed-during-iteration).
        with self._lock:
            children = [self._families[name].children[key]
                        for name in sorted(self._families)
                        for key in sorted(self._families[name].children)]
        yield from children

    def snapshot(self) -> list[dict[str, object]]:
        """JSON-ready dump of every child metric."""
        return [
            {"type": "metric", "kind": metric.kind, "name": metric.name,
             "labels": dict(metric.labels), **metric.snapshot()}
            for metric in self.collect()
        ]

    def reset(self) -> None:
        """Drop every family (used between captured runs)."""
        with self._lock:
            self._families.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.children) for f in self._families.values())
