"""Allocation-profiling spans backed by :mod:`tracemalloc`.

``obs.profile("stage")`` behaves like ``obs.trace`` — it opens a span
named ``profile.<stage>`` — but additionally captures the net allocation
delta, the allocation peak, and the top-N allocation sites across the
region. It shares the off-by-default no-op guarantee of the rest of the
obs layer *and* adds a second gate: tracemalloc snapshots cost real time
and memory, so profiling spans only arm when **both**
``configure(enabled=True)`` and ``configure(profiling=True)`` are set;
otherwise the shared inert context from :mod:`repro.obs` is returned and
nothing is measured.

Captured per span (as span attributes, so reports show them inline):

- ``alloc_net_kb`` — net bytes allocated and still live at span exit;
- ``alloc_peak_kb`` — the tracemalloc peak inside the span (note: the
  peak counter is process-global, so nested profile spans share it);
- ``top_allocations`` — ``file:lineno +size_kb (count blocks)`` strings
  for the *top_n* largest net-positive allocation sites.

The same numbers feed two metric families (``profile.net_alloc_kb`` and
``profile.peak_alloc_kb`` histograms, labelled ``stage=<name>``) so run
snapshots and the regression gate can track memory per stage.
"""

from __future__ import annotations

import tracemalloc

from repro.obs import config

#: Span-name prefix for every profiling span.
SPAN_PREFIX = "profile."


class ProfileContext:
    """Live context manager: one profiled region, span + allocation data."""

    __slots__ = ("_name", "_top_n", "_attrs", "_record", "_started_tracing",
                 "_before")

    def __init__(self, name: str, top_n: int, attrs: dict[str, object]) -> None:
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        self._name = name
        self._top_n = top_n
        self._attrs = attrs
        self._record = None
        self._started_tracing = False
        self._before: tracemalloc.Snapshot | None = None

    def __enter__(self):
        self._started_tracing = not tracemalloc.is_tracing()
        if self._started_tracing:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        self._before = tracemalloc.take_snapshot()
        self._record = config._STATE.tracer.start(
            SPAN_PREFIX + self._name, dict(self._attrs))
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        assert record is not None
        try:
            _, peak = tracemalloc.get_traced_memory()
            after = tracemalloc.take_snapshot()
            diff = after.compare_to(self._before, "lineno")
            net_bytes = sum(stat.size_diff for stat in diff)
            top = sorted(diff, key=lambda s: s.size_diff, reverse=True)
            sites = [
                f"{stat.traceback[0].filename}:{stat.traceback[0].lineno} "
                f"+{stat.size_diff / 1024:.1f}kB ({stat.count_diff} blocks)"
                for stat in top[: self._top_n] if stat.size_diff > 0
            ]
            record.set("alloc_net_kb", round(net_bytes / 1024, 2))
            record.set("alloc_peak_kb", round(peak / 1024, 2))
            record.set("top_allocations", sites)
            registry = config._STATE.registry
            registry.histogram("profile.net_alloc_kb", stage=self._name) \
                .observe(net_bytes / 1024)
            registry.histogram("profile.peak_alloc_kb", stage=self._name) \
                .observe(peak / 1024)
        finally:
            if exc_type is not None:
                record.set("error", exc_type.__name__)
                config._STATE.tracer.unwind_to(record)
            else:
                config._STATE.tracer.finish(record)
            if self._started_tracing:
                tracemalloc.stop()
        return False
