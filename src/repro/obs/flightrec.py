"""Always-on flight recorder: bounded black-box state for postmortems.

Every telemetry surface before this module is either *pull* (the ops
server, ``health()``) or *post-hoc batch* (JSONL captures): a crash
leaves nothing but whatever happened to be flushed. The
:class:`FlightRecorder` is the black box in between — a bounded ring
buffer of recent happenings (structured events, finished request
summaries, SLO state transitions, injected faults with the open span
stack at fire time, periodic counter deltas) that costs one deque
append per entry and never grows.

``dump_postmortem(dir, reason)`` freezes everything into one JSON
bundle: the ring, every thread's open span stack, a full metric
snapshot, registered-SLO verdicts, the live thread list, and process
stats. Bundles are written by:

- the :func:`arm`-installed ``sys.excepthook`` / ``threading.excepthook``
  chain, on any unhandled exception;
- explicit :meth:`FlightRecorder.trip` calls on the failure edges the
  serving stack already knows about — ``WALError`` during replay,
  failed/rolled-back hot swaps, numeric guard trips, SLO page-level
  burn (rate-limited so a flapping SLO cannot fill the disk);
- the operator, via the ops daemon's shutdown path.

The process-wide recorder (:func:`get_flight_recorder`) records
whenever its tap sites fire — the tap sites themselves are gated on
``obs.configure(enabled=True)``, except fault injections and trips,
which are rare enough to record unconditionally.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import sys
import threading
import time
import traceback
from collections import deque

from repro.obs import config, tracing

#: Wall-clock time this module was imported — the process birth proxy
#: behind ``uptime_seconds`` (close enough: repro is import-heavy).
_PROCESS_START = time.time()


def process_snapshot(wal_path: "str | os.PathLike | None" = None,
                     start_time: float | None = None) -> dict[str, object]:
    """Point-in-time process stats (the ``process.*`` gauge sources).

    ``rss_kb`` reads ``/proc/self/statm`` where available and falls back
    to the peak (``ru_maxrss``) elsewhere; ``peak_rss_kb`` is always
    ``ru_maxrss``. ``wal_position_bytes`` is the open WAL file's size
    when *wal_path* names an existing file, else ``None``.
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    peak_kb = int(usage.ru_maxrss)  # KiB on Linux, bytes on macOS — close enough
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        rss_kb = int(pages * os.sysconf("SC_PAGE_SIZE") / 1024)
    except (OSError, ValueError, IndexError):
        rss_kb = peak_kb
    wal_bytes: int | None = None
    if wal_path is not None:
        try:
            wal_bytes = os.path.getsize(wal_path)
        except OSError:
            wal_bytes = None
    return {
        "pid": os.getpid(),
        "rss_kb": rss_kb,
        "peak_rss_kb": peak_kb,
        "threads": threading.active_count(),
        "uptime_seconds": time.time() - (start_time if start_time is not None
                                         else _PROCESS_START),
        "wal_position_bytes": wal_bytes,
    }


def _exception_snapshot(exc: BaseException | None) -> dict[str, object] | None:
    if exc is None:
        return None
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
        "thread": threading.current_thread().name,
    }


class FlightRecorder:
    """Bounded in-memory black box with one-call postmortem dumps.

    Parameters
    ----------
    capacity:
        Ring size in entries; the oldest entries fall off the front.
    min_dump_interval:
        Seconds between *automatic* dumps (:meth:`trip` while armed with
        a directory). Explicit :meth:`dump_postmortem` calls are never
        rate-limited.
    """

    def __init__(self, capacity: int = 512,
                 min_dump_interval: float = 5.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.min_dump_interval = float(min_dump_interval)
        self._ring: deque[dict[str, object]] = deque(maxlen=self.capacity)
        self._lock = threading.RLock()
        self._armed = False
        self._dump_dir: pathlib.Path | None = None
        self._prev_sys_hook = None
        self._prev_threading_hook = None
        self._slo_states: dict[str, bool] = {}
        self._counter_sample: dict[str, float] = {}
        self._last_auto_dump: float | None = None
        self._dump_seq = 0
        #: Total entries ever recorded (``len(ring)`` after eviction).
        self.recorded = 0
        #: Paths of every bundle written by this recorder.
        self.dumps: list[pathlib.Path] = []

    # ------------------------------------------------------------------
    # Recording taps
    # ------------------------------------------------------------------
    def record(self, kind: str, name: str, **fields: object) -> None:
        """Append one ring entry stamped with wall time and trace ID."""
        entry = {"kind": kind, "name": name, "time": time.time(),
                 "trace_id": tracing.current_trace_id(), **fields}
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1

    def note_event(self, name: str, fields: dict[str, object]) -> None:
        """Tap for :func:`repro.obs.event` (called when obs is enabled)."""
        self.record("event", name, **fields)

    def note_request(self, name: str, duration: float,
                     error: str | None, trace_id: str | None) -> None:
        """Tap for finished outermost request spans (summaries only)."""
        self.record("request", name, duration=duration, error=error,
                    trace_id_override=trace_id)

    def note_fault(self, site: str, draw: int) -> None:
        """Tap for :func:`repro.resilience.faults.maybe_fail` firings.

        Captures the calling thread's open span stack *at fire time* —
        by the time the injected fault is caught the spans have been
        unwound, so this is the only record of where the crash hit.
        """
        try:
            stack = [span.name for span in config.get_tracer()._stack]
        except Exception:  # pragma: no cover - tracer misbehaving
            stack = []
        self.record("fault", site, draw=draw, open_spans=stack,
                    thread=threading.current_thread().name)

    def note_slo(self, statuses) -> None:
        """Record SLO *transitions* (ok -> breached and back) only."""
        for status in statuses:
            with self._lock:
                previous = self._slo_states.get(status.slo)
                self._slo_states[status.slo] = status.ok
            if previous is not None and previous == status.ok:
                continue
            if previous is None and status.ok:
                continue  # steady-healthy from birth is not a transition
            self.record("slo", status.slo, ok=status.ok,
                        observed=status.observed, target=status.target,
                        burn_rate=status.burn_rate, detail=status.detail)

    def sample_metrics(self) -> dict[str, float]:
        """Record counter deltas since the previous sample; returns them.

        Called periodically (the ops server samples on scrape); only
        counters that moved make it into the ring entry, so an idle
        process records nothing.
        """
        registry = config.get_registry()
        current: dict[str, float] = {}
        for metric in registry.collect():
            if metric.kind != "counter":
                continue
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(metric.labels.items()))
            current[f"{metric.name}{{{labels}}}" if labels
                    else metric.name] = metric.value
        with self._lock:
            previous, self._counter_sample = self._counter_sample, current
        deltas = {key: value - previous.get(key, 0.0)
                  for key, value in current.items()
                  if value != previous.get(key, 0.0)}
        if deltas:
            self.record("metrics", "counter_deltas", deltas=deltas)
        return deltas

    def entries(self) -> list[dict[str, object]]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Reset recorded state: ring, SLO/counter baselines, dump
        history, and the auto-dump rate limiter (bundles already on disk
        are untouched). The isolation point for tests sharing the
        process-wide recorder."""
        with self._lock:
            self._ring.clear()
            self._slo_states.clear()
            self._counter_sample.clear()
            self.dumps = []
            self._last_auto_dump = None

    # ------------------------------------------------------------------
    # Arming (crash hooks) and tripping
    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True while the excepthook chain is installed."""
        return self._armed

    @property
    def dump_dir(self) -> pathlib.Path | None:
        """Where automatic postmortems land (None: trips only record)."""
        return self._dump_dir

    def arm(self, dump_dir: "str | os.PathLike | None" = None) -> "FlightRecorder":
        """Install crash hooks; auto-dump into *dump_dir* when given.

        Chains — the previous ``sys.excepthook`` and
        ``threading.excepthook`` still run after the recorder dumps, so
        arming never swallows tracebacks. Re-arming just updates the
        dump directory.
        """
        with self._lock:
            self._dump_dir = (pathlib.Path(dump_dir)
                              if dump_dir is not None else None)
            if self._armed:
                return self
            self._armed = True
            self._prev_sys_hook = sys.excepthook
            self._prev_threading_hook = threading.excepthook
            sys.excepthook = self._sys_hook
            threading.excepthook = self._threading_hook
        return self

    def disarm(self) -> None:
        """Remove the crash hooks installed by :meth:`arm`."""
        with self._lock:
            if not self._armed:
                return
            self._armed = False
            sys.excepthook = self._prev_sys_hook or sys.__excepthook__
            threading.excepthook = (self._prev_threading_hook
                                    or threading.__excepthook__)
            self._prev_sys_hook = None
            self._prev_threading_hook = None
            self._dump_dir = None

    def _sys_hook(self, exc_type, exc, tb) -> None:
        try:
            self.trip("unhandled_exception", exc=exc)
        finally:
            (self._prev_sys_hook or sys.__excepthook__)(exc_type, exc, tb)

    def _threading_hook(self, args) -> None:
        try:
            thread = args.thread.name if args.thread else "?"
            self.trip(f"unhandled_thread_exception[{thread}]",
                      exc=args.exc_value)
        finally:
            (self._prev_threading_hook or threading.__excepthook__)(args)

    def trip(self, reason: str, exc: BaseException | None = None) -> "pathlib.Path | None":
        """One failure-edge firing: record it; dump if armed with a dir.

        Automatic dumps are rate-limited to one per
        ``min_dump_interval`` seconds so a flapping trigger (page-level
        SLO burn evaluated every few seconds) cannot fill the disk; the
        trip itself is always recorded. Returns the bundle path when one
        was written.
        """
        self.record("trip", reason,
                    exception=type(exc).__name__ if exc else None)
        state = config._STATE
        if state.enabled:
            state.registry.counter("obs.flightrec.trips", reason=reason).inc()
        with self._lock:
            dump_dir = self._dump_dir
            now = time.monotonic()
            if dump_dir is None:
                return None
            if (self._last_auto_dump is not None
                    and now - self._last_auto_dump < self.min_dump_interval):
                return None
            self._last_auto_dump = now
        return self.dump_postmortem(dump_dir, reason, exc=exc)

    # ------------------------------------------------------------------
    # Postmortem bundles
    # ------------------------------------------------------------------
    def dump_postmortem(self, dump_dir: "str | os.PathLike", reason: str,
                        exc: BaseException | None = None) -> pathlib.Path:
        """Write one JSON postmortem bundle; returns its path.

        Bundle schema (one JSON object)::

            {"type": "postmortem", "reason": ..., "time": ...,
             "uptime_seconds": ...,
             "exception": {"type", "message", "traceback", "thread"} | null,
             "entries": [<ring entries, oldest first>],
             "open_spans": {"<thread ident>": [<span snapshots>]},
             "metrics": [<registry snapshot>],
             "slos": [<registered-SLO statuses>],
             "threads": [{"name", "ident", "daemon"}],
             "process": {<process_snapshot()>},
             "python": ..., "argv": [...]}

        Never raises on partially-broken telemetry state: each section
        degrades to an ``"error: ..."`` marker independently, because a
        postmortem writer that crashes is worse than a thin bundle.
        """
        from repro.obs import slo as slo_mod

        dump_dir = pathlib.Path(dump_dir)
        dump_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._dump_seq += 1
            seq = self._dump_seq
        bundle: dict[str, object] = {
            "type": "postmortem",
            "reason": reason,
            "time": time.time(),
            "uptime_seconds": time.time() - _PROCESS_START,
            "exception": _exception_snapshot(exc),
            "entries": self.entries(),
            "python": sys.version,
            "argv": list(sys.argv),
        }
        for key, build in (
                ("open_spans", lambda: {
                    str(tid): spans
                    for tid, spans in config.get_tracer().open_spans().items()}),
                ("metrics", lambda: config.get_registry().snapshot()),
                ("slos", lambda: [s.snapshot() for s in
                                  slo_mod.evaluate_registered()]),
                ("threads", lambda: [
                    {"name": t.name, "ident": t.ident, "daemon": t.daemon}
                    for t in threading.enumerate()]),
                ("process", process_snapshot),
        ):
            try:
                bundle[key] = build()
            except Exception as build_exc:  # pragma: no cover - degraded
                bundle[key] = f"error: {build_exc}"
        path = dump_dir / f"postmortem-{os.getpid()}-{seq:03d}.json"
        path.write_text(json.dumps(bundle, sort_keys=True, default=str) + "\n",
                        encoding="utf-8")
        with self._lock:
            self.dumps.append(path)
        state = config._STATE
        if state.enabled:
            state.registry.counter("obs.flightrec.dumps").inc()
        self.record("dump", reason, path=str(path))
        return path


#: The process-wide recorder every library tap feeds.
_RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide :class:`FlightRecorder` singleton."""
    return _RECORDER
