"""Test doubles for time-dependent observability code.

:class:`FakeClock` replaces ``time.monotonic`` wherever a component
takes an injectable ``clock`` callable (:class:`repro.obs.slo.SLOMonitor`,
:class:`repro.loadgen.telemetry.WindowedTelemetry`, ...), making
windowed behaviour — burn-rate windows, per-second telemetry buckets,
ring eviction — deterministic. It used to be copy-pasted per test
module; this is the one shared implementation.
"""

from __future__ import annotations

import threading


class FakeClock:
    """A manually-advanced monotonic clock.

    Thread-safe, because the code it stands in for is threaded: loadgen
    worker threads read the clock while the coordinator advances it
    (``advance`` doubles as the injectable ``sleep`` of
    :class:`repro.loadgen.runner.LoadRunner`, keeping pacing and timing
    on one time source).

    Parameters
    ----------
    start:
        Initial reading.
    tick:
        Seconds the clock auto-advances *after* each call — a cheap way
        to simulate time passing "by itself" in code that polls the
        clock in a loop. Defaults to 0.0 (fully manual).
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        self.now = float(start)
        self.tick = float(tick)
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            self.calls += 1
            reading = self.now
            self.now += self.tick
            return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward by *seconds* (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} (negative)")
        with self._lock:
            self.now += seconds
