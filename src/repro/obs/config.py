"""Process-wide observability state.

A single :class:`ObsState` holds the enabled flag, the metrics registry,
and the tracer. Observability is **off by default**: every instrumented
call site checks ``state.enabled`` first and returns immediately when it
is false, so the instrumentation costs one attribute read on the cold
path. :func:`configure` flips the flag and optionally resets the stores
between captured runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@dataclass
class ObsState:
    """The mutable observability singleton (one per process)."""

    enabled: bool
    registry: MetricsRegistry
    tracer: Tracer
    #: Allocation profiling (`obs.profile`) is a second opt-in on top of
    #: `enabled` — tracemalloc snapshots are far too heavy to ride along
    #: with every ordinary capture.
    profiling: bool = False


_STATE = ObsState(enabled=False, registry=MetricsRegistry(), tracer=Tracer())


def configure(enabled: bool | None = None, *, profiling: bool | None = None,
              reset: bool = False) -> ObsState:
    """Adjust the global observability state; returns it.

    Parameters
    ----------
    enabled:
        ``True`` turns instrumentation on, ``False`` off; ``None`` leaves
        the flag unchanged (useful with ``reset=True``).
    profiling:
        ``True`` additionally arms :func:`repro.obs.profile` spans
        (tracemalloc allocation deltas); requires ``enabled``. ``None``
        leaves the flag unchanged.
    reset:
        Clear all recorded metrics and spans first (fails if a span is
        still open — that indicates a leaked ``trace`` context).
    """
    if reset:
        _STATE.tracer.reset()
        _STATE.registry.reset()
    if enabled is not None:
        _STATE.enabled = bool(enabled)
    if profiling is not None:
        _STATE.profiling = bool(profiling)
    return _STATE


def is_enabled() -> bool:
    """Whether instrumented call sites currently record anything."""
    return _STATE.enabled


def is_profiling() -> bool:
    """Whether :func:`repro.obs.profile` spans capture allocation data."""
    return _STATE.enabled and _STATE.profiling


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _STATE.registry


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _STATE.tracer
