"""Process-wide observability state.

A single :class:`ObsState` holds the enabled flag, the metrics registry,
and the tracer. Observability is **off by default**: every instrumented
call site checks ``state.enabled`` first and returns immediately when it
is false, so the instrumentation costs one attribute read on the cold
path. :func:`configure` flips the flag and optionally resets the stores
between captured runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@dataclass
class ObsState:
    """The mutable observability singleton (one per process)."""

    enabled: bool
    registry: MetricsRegistry
    tracer: Tracer


_STATE = ObsState(enabled=False, registry=MetricsRegistry(), tracer=Tracer())


def configure(enabled: bool | None = None, *, reset: bool = False) -> ObsState:
    """Adjust the global observability state; returns it.

    Parameters
    ----------
    enabled:
        ``True`` turns instrumentation on, ``False`` off; ``None`` leaves
        the flag unchanged (useful with ``reset=True``).
    reset:
        Clear all recorded metrics and spans first (fails if a span is
        still open — that indicates a leaked ``trace`` context).
    """
    if reset:
        _STATE.tracer.reset()
        _STATE.registry.reset()
    if enabled is not None:
        _STATE.enabled = bool(enabled)
    return _STATE


def is_enabled() -> bool:
    """Whether instrumented call sites currently record anything."""
    return _STATE.enabled


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _STATE.registry


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _STATE.tracer
