"""Process-wide observability state.

A single :class:`ObsState` holds the enabled flag, the metrics registry,
and the tracer. Observability is **off by default**: every instrumented
call site checks ``state.enabled`` first and returns immediately when it
is false, so the instrumentation costs one attribute read on the cold
path. :func:`configure` flips the flag and optionally resets the stores
between captured runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.exemplars import ExemplarReservoir
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

#: Bound on the structured event log (degradation events and the like);
#: old events fall off the front under sustained load.
MAX_EVENTS = 4096


@dataclass
class ObsState:
    """The mutable observability singleton (one per process)."""

    enabled: bool
    registry: MetricsRegistry
    tracer: Tracer
    #: Allocation profiling (`obs.profile`) is a second opt-in on top of
    #: `enabled` — tracemalloc snapshots are far too heavy to ride along
    #: with every ordinary capture.
    profiling: bool = False
    #: Request exemplars: span trees of the slowest / errored requests.
    exemplars: ExemplarReservoir = field(default_factory=ExemplarReservoir)
    #: Structured event log (`obs.event`): bounded, trace-ID-stamped.
    events: deque = field(default_factory=lambda: deque(maxlen=MAX_EVENTS))


_STATE = ObsState(enabled=False, registry=MetricsRegistry(), tracer=Tracer())


def configure(enabled: bool | None = None, *, profiling: bool | None = None,
              max_spans: int | None = None, reset: bool = False) -> ObsState:
    """Adjust the global observability state; returns it.

    Parameters
    ----------
    enabled:
        ``True`` turns instrumentation on, ``False`` off; ``None`` leaves
        the flag unchanged (useful with ``reset=True``).
    profiling:
        ``True`` additionally arms :func:`repro.obs.profile` spans
        (tracemalloc allocation deltas); requires ``enabled``. ``None``
        leaves the flag unchanged.
    max_spans:
        Bound the tracer's retained finished-span list (load runs would
        otherwise grow it without limit; span *aggregates* keep counting
        evicted spans). ``None`` leaves the current bound unchanged.
    reset:
        Clear all recorded metrics, spans, events, and exemplars first
        (fails if a span is still open — that indicates a leaked
        ``trace`` context).
    """
    if reset:
        _STATE.tracer.reset()
        _STATE.registry.reset()
        _STATE.exemplars.reset()
        _STATE.events.clear()
    if max_spans is not None:
        _STATE.tracer.max_spans = max_spans
    if enabled is not None:
        _STATE.enabled = bool(enabled)
    if profiling is not None:
        _STATE.profiling = bool(profiling)
    return _STATE


def is_enabled() -> bool:
    """Whether instrumented call sites currently record anything."""
    return _STATE.enabled


def is_profiling() -> bool:
    """Whether :func:`repro.obs.profile` spans capture allocation data."""
    return _STATE.enabled and _STATE.profiling


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _STATE.registry


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _STATE.tracer


def get_exemplars() -> ExemplarReservoir:
    """The process-wide request-exemplar reservoir."""
    return _STATE.exemplars
