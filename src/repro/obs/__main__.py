"""CLI: inspect captures and gate runs against baselines.

Commands
--------
``report <capture.jsonl> [...]``
    Pretty-print captures written by :func:`repro.obs.write_jsonl`.
    Several paths merge into **one** report: per-source trace trees and
    metric lists (each section labelled with its file), plus span
    totals aggregated across every capture.
``diff <baseline.json> <current.json>``
    Render per-metric deltas between two run snapshots written by
    :func:`repro.obs.runs.write_run`.
``check <run.json> --baseline <file> [--tolerance T] [--timing-tolerance T]``
    Exit 1 when any gated metric regressed beyond tolerance — the CI
    perf gate. Counters/gauges use ``--tolerance`` (default 10%); wall
    clock and allocation keys use the looser ``--timing-tolerance``
    (default 500%, machines differ).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.obs import runs
from repro.obs.emitters import read_jsonl, render_exemplars, render_multi_report


def cmd_report(args: argparse.Namespace) -> int:
    captures = []
    status = 0
    for path in args.files:
        try:
            captures.append((str(path), read_jsonl(path)))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
    if not captures:
        return status
    if args.exemplars:
        for i, (label, captured) in enumerate(captures):
            if i:
                print()
            if len(captures) > 1:
                print(f"== {label} ==")
            print(render_exemplars(captured))
    else:
        print(render_multi_report(captures))
    return status


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        baseline = runs.load_run(args.baseline)
        current = runs.load_run(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {baseline['run_id']} "
          f"(git {baseline.get('git_sha') or '?'})")
    print(f"current:  {current['run_id']} "
          f"(git {current.get('git_sha') or '?'})")
    print()
    print(runs.render_diff(runs.diff_runs(baseline, current),
                           only_changed=args.only_changed))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    try:
        baseline = runs.load_run(args.baseline)
        current = runs.load_run(args.run)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    regressions = runs.check_runs(baseline, current,
                                  tolerance=args.tolerance,
                                  timing_tolerance=args.timing_tolerance)
    compared = sum(1 for d in runs.diff_runs(baseline, current)
                   if d.direction is not None and d.baseline is not None
                   and d.current is not None)
    if regressions:
        print(f"REGRESSION: {len(regressions)} gated metric(s) worsened "
              f"beyond tolerance (of {compared} compared):")
        print(runs.render_diff(regressions))
        return 1
    print(f"ok: {compared} gated metric(s) within tolerance "
          f"(tolerance={args.tolerance:g}, "
          f"timing-tolerance={args.timing_tolerance:g})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect observability captures and gate run snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="pretty-print captures (several merge into one report)")
    report.add_argument("files", nargs="+", type=pathlib.Path,
                        help="capture file(s) written by repro.obs.write_jsonl")
    report.add_argument("--exemplars", action="store_true",
                        help="render retained request exemplars (slowest / "
                             "errored) as full span trees instead of the "
                             "aggregate report")
    report.set_defaults(fn=cmd_report)

    diff = sub.add_parser("diff", help="per-metric deltas of two run snapshots")
    diff.add_argument("baseline", type=pathlib.Path,
                      help="baseline run snapshot (repro.obs.runs.write_run)")
    diff.add_argument("current", type=pathlib.Path,
                      help="run snapshot to compare against the baseline")
    diff.add_argument("--only-changed", action="store_true",
                      help="hide keys whose value is identical")
    diff.set_defaults(fn=cmd_diff)

    check = sub.add_parser(
        "check", help="exit 1 when a gated metric regressed vs the baseline")
    check.add_argument("run", type=pathlib.Path, help="run snapshot to gate")
    check.add_argument("--baseline", type=pathlib.Path, required=True,
                       help="committed baseline snapshot")
    check.add_argument("--tolerance", type=float, default=0.1,
                       help="relative budget for deterministic metrics "
                            "(default 0.1 = 10%%)")
    check.add_argument("--timing-tolerance", type=float, default=5.0,
                       help="relative budget for wall-clock/memory metrics "
                            "(default 5.0 = 500%%)")
    check.set_defaults(fn=cmd_check)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
