"""CLI: ``python -m repro.obs report <capture.jsonl> [...]``.

Pretty-prints captures written by :func:`repro.obs.write_jsonl` (directly
or through the benchmark suite's ``REPRO_OBS=1`` hook).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.obs.emitters import read_jsonl, render_report


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and render the requested capture(s)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect observability captures (JSON lines).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="pretty-print one or more captures")
    report.add_argument("files", nargs="+", type=pathlib.Path,
                        help="capture file(s) written by repro.obs.write_jsonl")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        if len(args.files) > 1:
            print(f"== {path} ==")
        try:
            print(render_report(read_jsonl(path)))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
        if len(args.files) > 1:
            print()
    return status


if __name__ == "__main__":
    sys.exit(main())
