"""Embedded HTTP ops plane: scrape, probe, and debug a live server.

Stdlib-only (``http.server``): a :class:`ObsServer` wraps a
``ThreadingHTTPServer`` on its own daemon threads, so a long-running
serving process (``python -m repro.serve serve``) answers operators
concurrently with traffic. Endpoints:

=================  ====================================================
``GET /metrics``   Prometheus text exposition of the live registry
                   (process gauges refreshed per scrape).
``GET /healthz``   Liveness: 200 while the process serves — even
                   degraded; a degraded answer beats a dead one.
``GET /readyz``    Readiness: ``ServingIndex.health()`` — 200 only
                   when healthy (artifact, embeddings, fallback,
                   scheduler saturation, WAL lag, SLO breaches);
                   503 otherwise, body carries the full JSON report.
                   ``?probe=1`` forces the self-test query.
``GET /slo``       Per-SLO burn rates from a rolling
                   :class:`~repro.obs.slo.SLOMonitor` over the
                   registered SLOs, as JSON.
``GET /debug/vars``Scheduler queue/in-flight/shed state, WAL
                   seq/lag/torn counts, ANN strategy, pool size and
                   version, process stats, flight-recorder state.
``GET /exemplars`` Retained slowest/errored request span trees.
=================  ====================================================

Readiness uses 503 (not 500) so k8s-style probes distinguish "not
ready" from "broken handler"; the concurrent-scrape tests hold every
endpoint to *zero* 5xx under load.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import config, flightrec
from repro.obs import slo as slo_mod
from repro.obs.emitters import prometheus_text, set_metric_help

#: Help texts for the scrape-time process gauges (satellite of the ops
#: plane: the same numbers back /debug/vars and postmortem bundles).
for _name, _help in (
        ("process.rss_kb", "resident set size in KiB, sampled on scrape"),
        ("process.peak_rss_kb", "peak resident set size in KiB (ru_maxrss)"),
        ("process.threads", "live Python threads"),
        ("process.uptime_seconds", "seconds since process start"),
        ("process.wal_position_bytes", "open WAL file size in bytes"),
):
    set_metric_help(_name, _help)


class _OpsHandler(BaseHTTPRequestHandler):
    """Routes GETs to the owning :class:`ObsServer`; never logs."""

    server_version = "repro-ops/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        ops: "ObsServer" = self.server.ops  # type: ignore[attr-defined]
        try:
            status, content_type, body = ops.dispatch(self.path)
        except Exception as exc:  # pragma: no cover - handler safety net
            status = 500
            content_type = "text/plain; charset=utf-8"
            body = f"internal error: {exc}\n".encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ObsServer:
    """The embedded ops plane for one process.

    Parameters
    ----------
    index:
        The live :class:`~repro.serve.index.ServingIndex`, when there is
        one — readiness, ``/debug/vars`` and the WAL gauges come from
        it. ``None`` serves the obs-only subset (metrics, exemplars).
    scheduler:
        Explicit :class:`~repro.serve.scheduler.BatchScheduler`
        override; defaults to ``index.scheduler``.
    recorder:
        Flight recorder surfaced in ``/debug/vars``; defaults to the
        process-wide one.
    host / port:
        Bind address. Port 0 (default) picks an ephemeral port —
        read it back from :attr:`port` / :attr:`url`.
    page_burn:
        ``/slo`` burn-rate level treated as page-worthy: any SLO
        burning at or above it trips the flight recorder.
    """

    def __init__(self, index=None, scheduler=None, recorder=None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 page_burn: float = 10.0) -> None:
        self._index = index
        self._explicit_scheduler = scheduler
        self.recorder = (recorder if recorder is not None
                         else flightrec.get_flight_recorder())
        self.page_burn = float(page_burn)
        self.started = time.time()
        self.monitor = slo_mod.SLOMonitor()
        self._httpd = ThreadingHTTPServer((host, port), _OpsHandler)
        self._httpd.daemon_threads = True
        self._httpd.ops = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running (or startable) server."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
                name="repro-ops-server", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Shared accessors
    # ------------------------------------------------------------------
    @property
    def scheduler(self):
        if self._explicit_scheduler is not None:
            return self._explicit_scheduler
        return getattr(self._index, "scheduler", None)

    def _wal(self):
        return getattr(self._index, "wal", None)

    def sample_process_gauges(self) -> dict[str, object]:
        """Refresh the ``process.*`` gauges; returns the raw snapshot.

        Runs on every ``/metrics`` scrape (pull-model process metrics:
        fresh exactly when someone is looking) and feeds the same
        numbers to ``/debug/vars``. Gauges are only written while obs
        is enabled; the snapshot is returned either way.
        """
        wal = self._wal()
        snap = flightrec.process_snapshot(
            wal_path=getattr(wal, "path", None), start_time=self.started)
        state = config._STATE
        if state.enabled:
            for key in ("rss_kb", "peak_rss_kb", "threads",
                        "uptime_seconds", "wal_position_bytes"):
                value = snap[key]
                if value is not None:
                    state.registry.gauge(f"process.{key}").set(float(value))
        return snap

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def dispatch(self, path: str) -> tuple[int, str, bytes]:
        """Answer one GET *path*; returns (status, content-type, body)."""
        parsed = urllib.parse.urlsplit(path)
        query = urllib.parse.parse_qs(parsed.query)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            return self._metrics()
        if route == "/healthz":
            return self._healthz()
        if route == "/readyz":
            return self._readyz(probe="probe" in query)
        if route == "/slo":
            return self._slo()
        if route == "/debug/vars":
            return self._debug_vars()
        if route == "/exemplars":
            return self._exemplars()
        return (404, "text/plain; charset=utf-8",
                f"no such endpoint: {parsed.path}\n".encode("utf-8"))

    @staticmethod
    def _json(status: int, payload: object) -> tuple[int, str, bytes]:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        return status, "application/json; charset=utf-8", body + b"\n"

    def _metrics(self) -> tuple[int, str, bytes]:
        self.sample_process_gauges()
        self.recorder.sample_metrics()
        text = prometheus_text(config.get_registry())
        return (200, "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"))

    def _healthz(self) -> tuple[int, str, bytes]:
        # Liveness only: the handler answering *is* the signal. A
        # degraded index still serves (TF-IDF fallback), so it is alive.
        payload = {
            "status": "alive",
            "uptime_seconds": time.time() - self.started,
            "index": self._index is not None,
            "degraded": bool(getattr(self._index, "degraded", False)),
        }
        return self._json(200, payload)

    def _readyz(self, probe: bool) -> tuple[int, str, bytes]:
        if self._index is None:
            return self._json(503, {"healthy": False,
                                    "reason": "no serving index attached"})
        report = self._index.health(probe=probe)
        return self._json(200 if report.get("healthy") else 503, report)

    def _slo(self) -> tuple[int, str, bytes]:
        self.monitor.slos = slo_mod.registered_slos()
        statuses = self.monitor.check(config.get_registry())
        self.recorder.note_slo(statuses)
        for status in statuses:
            if (not status.ok and status.burn_rate is not None
                    and status.burn_rate >= self.page_burn):
                self.recorder.trip(f"slo_page_burn[{status.slo}]")
        payload = {
            "page_burn_threshold": self.page_burn,
            "slos": [status.snapshot() for status in statuses],
            "breaches": [status.slo for status in statuses if not status.ok],
        }
        return self._json(200, payload)

    def _debug_vars(self) -> tuple[int, str, bytes]:
        scheduler = self.scheduler
        wal = self._wal()
        # Lazy import: repro.serve depends on repro.obs, not vice versa.
        try:
            from repro.serve.swap import last_swap_report
            report = last_swap_report()
            swap = report.snapshot() if report is not None else None
        except ImportError:  # pragma: no cover - serve layer absent
            swap = None
        payload: dict[str, object] = {
            "process": self.sample_process_gauges(),
            "scheduler": scheduler.stats() if scheduler is not None else None,
            "wal": None if wal is None else {
                "path": str(wal.path),
                "lag": wal.lag,
                "torn_records": wal.torn_records,
            },
            "index": None if self._index is None else {
                "degraded": self._index.degraded,
                "pool_size": self._index.num_papers,
                "pool_version": self._index.pool_version,
                "index_kind": self._index.index_kind,
                "nprobe": self._index.nprobe,
            },
            "swap": swap,
            "flightrec": {
                "armed": self.recorder.armed,
                "dump_dir": (str(self.recorder.dump_dir)
                             if self.recorder.dump_dir else None),
                "recorded": self.recorder.recorded,
                "retained": len(self.recorder.entries()),
                "dumps": [str(p) for p in self.recorder.dumps],
            },
            "obs_enabled": config.is_enabled(),
        }
        return self._json(200, payload)

    def _exemplars(self) -> tuple[int, str, bytes]:
        return self._json(200, {"exemplars": config.get_exemplars().snapshot()})
