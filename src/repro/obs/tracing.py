"""Span-based wall-clock tracer with request-level trace IDs.

A :class:`Tracer` records finished :class:`SpanRecord` objects, each
carrying its start offset (relative to the tracer's epoch), duration,
nesting depth, the index of its parent span, and — when the span was
opened inside a request context — the request's ``trace_id``, so
emitters can rebuild per-request call trees without the tracer holding
them. Spans nest through an explicit per-thread stack, so concurrent
serving threads (the ``repro.loadgen`` closed loop) each keep their own
well-formed span tree while appending into one shared, lock-protected
capture.

Trace IDs propagate through :data:`contextvars`: entering a request
context (:func:`repro.obs.request`) allocates an ID and binds it to the
current context, and every span, degradation event, and metric exemplar
recorded underneath — through ``recommend.rank``, the batch scorer, the
TF-IDF fallback — picks it up without any explicit plumbing. Context
variables are per-thread, so worker threads never see each other's IDs.

Call sites normally go through :func:`repro.obs.trace`, which routes to
the tracer only when observability is enabled.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from dataclasses import dataclass, field

#: The trace ID bound to the current execution context (``None`` outside
#: any request). Context variables are copied per thread-of-control, so
#: concurrent requests never observe each other's IDs.
_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_trace_id", default=None)

#: Process-lifetime allocator behind :func:`new_trace_id` — never reset,
#: so IDs stay unique across tracer resets within one process.
_TRACE_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """Allocate a fresh, process-unique request trace ID."""
    # itertools.count.__next__ is atomic under the GIL, so concurrent
    # request entries never collide.
    return f"req-{next(_TRACE_COUNTER):08d}"


def current_trace_id() -> str | None:
    """The trace ID of the enclosing request context, if any."""
    return _TRACE_ID.get()


def bind_trace_id(trace_id: str | None) -> contextvars.Token:
    """Bind *trace_id* to the current context; returns the reset token."""
    return _TRACE_ID.set(trace_id)


def unbind_trace_id(token: contextvars.Token) -> None:
    """Restore the trace-ID binding captured by :func:`bind_trace_id`."""
    _TRACE_ID.reset(token)


@dataclass
class SpanRecord:
    """One finished (or in-flight) traced region.

    ``start`` is seconds since the owning tracer's epoch; ``duration`` is
    0.0 until the span finishes. ``parent`` is the ``index`` of the
    enclosing span, or ``None`` for roots. ``trace_id`` is the request
    the span belongs to (``None`` for spans outside any request).
    """

    name: str
    start: float
    index: int
    depth: int = 0
    parent: int | None = None
    duration: float = 0.0
    trace_id: str | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (e.g. ``span.set("epoch", 3)``)."""
        self.attrs[key] = value

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump of this span."""
        return {
            "type": "span", "name": self.name, "index": self.index,
            "parent": self.parent, "depth": self.depth,
            "start": self.start, "duration": self.duration,
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class SpanStats:
    """Aggregate over every span sharing one name."""

    name: str
    calls: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        """Mean duration in seconds."""
        return self.total / self.calls if self.calls else 0.0


class Tracer:
    """Collects spans for one observability session.

    Thread-safe: each thread nests spans on its own stack (a span's
    parent is always in the same thread), while the finished-span list,
    the index counter, and the per-name aggregates share one lock.

    ``max_spans`` bounds the retained finished-span list — a sustained
    load run would otherwise grow it without limit. Aggregates
    (:meth:`aggregate`) are maintained incrementally and keep counting
    evicted spans; ``dropped_spans`` says how many fell off the front.
    """

    def __init__(self, max_spans: int | None = None) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0
        #: Spans started but not yet finished, across *all* threads —
        #: the per-thread stacks are thread-local, so reset() needs this
        #: global count to refuse while any thread is mid-span.
        self._open_total = 0
        #: thread ident -> that thread's open-span stack. The stacks are
        #: mutated lock-free by their owning threads; this registry only
        #: lets the flight recorder take a best-effort crash snapshot.
        self._open_stacks: dict[int, list[SpanRecord]] = {}
        #: name -> [calls, total, min, max], survives span eviction.
        self._agg: dict[str, list[float]] = {}
        #: trace_id -> finished spans, for traces someone is watching
        #: (request contexts collecting exemplar span trees).
        self._watched: dict[str, list[SpanRecord]] = {}

    @property
    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._open_stacks[threading.get_ident()] = stack
        return stack

    # ------------------------------------------------------------------
    def start(self, name: str, attrs: dict[str, object] | None = None) -> SpanRecord:
        """Open a span nested under the current thread's innermost one."""
        stack = self._stack
        with self._lock:
            index = self._counter
            self._counter += 1
            self._open_total += 1
        record = SpanRecord(
            name=name,
            start=time.perf_counter() - self._epoch_perf,
            index=index,
            depth=len(stack),
            parent=stack[-1].index if stack else None,
            trace_id=_TRACE_ID.get(),
            attrs=dict(attrs or {}),
        )
        stack.append(record)
        return record

    def finish(self, record: SpanRecord) -> SpanRecord:
        """Close *record*; it must be this thread's innermost open span."""
        stack = self._stack
        if not stack or stack[-1] is not record:
            raise RuntimeError(
                f"span nesting violated: finishing {record.name!r} but the "
                f"innermost open span is "
                f"{stack[-1].name if stack else None!r}"
            )
        stack.pop()
        record.duration = time.perf_counter() - self._epoch_perf - record.start
        with self._lock:
            self._open_total -= 1
            self.spans.append(record)
            if (self.max_spans is not None
                    and len(self.spans) > self.max_spans):
                excess = len(self.spans) - self.max_spans
                del self.spans[:excess]
                self.dropped_spans += excess
            agg = self._agg.get(record.name)
            if agg is None:
                self._agg[record.name] = [1, record.duration,
                                          record.duration, record.duration]
            else:
                agg[0] += 1
                agg[1] += record.duration
                agg[2] = min(agg[2], record.duration)
                agg[3] = max(agg[3], record.duration)
            if record.trace_id is not None:
                buffer = self._watched.get(record.trace_id)
                if buffer is not None:
                    buffer.append(record)
        return record

    def unwind_to(self, record: SpanRecord) -> SpanRecord:
        """Finish *record* even if descendants were left open.

        The error-path companion of :meth:`finish`: when an exception
        propagates out of a span whose children were opened with a bare
        :meth:`start` and never finished (an instrumented function that
        raised mid-flight), strict :meth:`finish` would itself raise and
        mask the original exception — and leave ``open_depth`` leaked,
        poisoning every later capture. Here the still-open descendants
        are closed innermost-first (tagged ``leaked=True``) before
        *record* is finished normally.
        """
        stack = self._stack
        if record not in stack:
            raise RuntimeError(
                f"cannot unwind to {record.name!r}: span is not open")
        while stack[-1] is not record:
            leaked = stack[-1]
            leaked.set("leaked", True)
            self.finish(leaked)
        return self.finish(record)

    # ------------------------------------------------------------------
    # Per-trace watch buffers (exemplar capture)
    # ------------------------------------------------------------------
    def watch(self, trace_id: str) -> None:
        """Start collecting the finished spans of *trace_id*."""
        with self._lock:
            self._watched.setdefault(trace_id, [])

    def unwatch(self, trace_id: str) -> list[SpanRecord]:
        """Stop watching *trace_id*; returns its spans in finish order."""
        with self._lock:
            return self._watched.pop(trace_id, [])

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        """How many spans the *current thread* has open."""
        return len(self._stack)

    def open_spans(self) -> dict[int, list[dict[str, object]]]:
        """Best-effort snapshot of every thread's open span stack.

        Maps thread ident to outermost-first span snapshots for every
        thread with at least one span currently open. The owning threads
        mutate their stacks without the lock, so a stack caught
        mid-mutation may be one span stale — acceptable for the flight
        recorder's postmortem bundles, which only need to say *where*
        each thread was when the process died.
        """
        with self._lock:
            stacks = {tid: list(stack)
                      for tid, stack in self._open_stacks.items() if stack}
        return {tid: [span.snapshot() for span in stack]
                for tid, stack in stacks.items()}

    def ordered(self) -> list[SpanRecord]:
        """Finished spans in start order (``spans`` is finish order)."""
        with self._lock:
            return sorted(self.spans, key=lambda s: s.index)

    def aggregate(self) -> dict[str, SpanStats]:
        """Per-name call counts and duration statistics, name-sorted.

        Incremental: includes spans evicted under ``max_spans``.
        """
        with self._lock:
            return {
                name: SpanStats(name=name, calls=int(agg[0]), total=agg[1],
                                min=agg[2], max=agg[3])
                for name, agg in sorted(self._agg.items())
            }

    def reset(self) -> None:
        """Drop all finished spans and restart the epoch.

        Refuses while *any* thread — not just the caller's — has open
        spans: those would otherwise finish into the cleared list with
        stale parent indexes and the new epoch, corrupting the capture.
        """
        with self._lock:
            if self._open_total:
                raise RuntimeError(
                    f"cannot reset tracer with {self._open_total} "
                    "open span(s)")
            self.spans.clear()
            self._agg.clear()
            self._watched.clear()
            self._counter = 0
            self.dropped_spans = 0
            self.epoch_wall = time.time()
            self._epoch_perf = time.perf_counter()
