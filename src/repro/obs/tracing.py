"""Span-based wall-clock tracer.

A :class:`Tracer` records a flat list of finished :class:`SpanRecord`
objects, each carrying its start offset (relative to the tracer's epoch),
duration, nesting depth, and the index of its parent span, so emitters can
rebuild the call tree without the tracer holding one. Spans nest through
an explicit stack; the module is deliberately single-threaded — the whole
pipeline is — which keeps ``start``/``finish`` to a few attribute writes.

Call sites normally go through :func:`repro.obs.trace`, which routes to
the tracer only when observability is enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One finished (or in-flight) traced region.

    ``start`` is seconds since the owning tracer's epoch; ``duration`` is
    0.0 until the span finishes. ``parent`` is the ``index`` of the
    enclosing span, or ``None`` for roots.
    """

    name: str
    start: float
    index: int
    depth: int = 0
    parent: int | None = None
    duration: float = 0.0
    attrs: dict[str, object] = field(default_factory=dict)

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (e.g. ``span.set("epoch", 3)``)."""
        self.attrs[key] = value

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump of this span."""
        return {
            "type": "span", "name": self.name, "index": self.index,
            "parent": self.parent, "depth": self.depth,
            "start": self.start, "duration": self.duration,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class SpanStats:
    """Aggregate over every span sharing one name."""

    name: str
    calls: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        """Mean duration in seconds."""
        return self.total / self.calls if self.calls else 0.0


class Tracer:
    """Collects spans for one observability session."""

    def __init__(self) -> None:
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []
        self._counter = 0

    # ------------------------------------------------------------------
    def start(self, name: str, attrs: dict[str, object] | None = None) -> SpanRecord:
        """Open a span nested under the currently open one (if any)."""
        record = SpanRecord(
            name=name,
            start=time.perf_counter() - self._epoch_perf,
            index=self._counter,
            depth=len(self._stack),
            parent=self._stack[-1].index if self._stack else None,
            attrs=dict(attrs or {}),
        )
        self._counter += 1
        self._stack.append(record)
        return record

    def finish(self, record: SpanRecord) -> SpanRecord:
        """Close *record*; it must be the innermost open span."""
        if not self._stack or self._stack[-1] is not record:
            raise RuntimeError(
                f"span nesting violated: finishing {record.name!r} but the "
                f"innermost open span is "
                f"{self._stack[-1].name if self._stack else None!r}"
            )
        self._stack.pop()
        record.duration = time.perf_counter() - self._epoch_perf - record.start
        self.spans.append(record)
        return record

    def unwind_to(self, record: SpanRecord) -> SpanRecord:
        """Finish *record* even if descendants were left open.

        The error-path companion of :meth:`finish`: when an exception
        propagates out of a span whose children were opened with a bare
        :meth:`start` and never finished (an instrumented function that
        raised mid-flight), strict :meth:`finish` would itself raise and
        mask the original exception — and leave ``open_depth`` leaked,
        poisoning every later capture. Here the still-open descendants
        are closed innermost-first (tagged ``leaked=True``) before
        *record* is finished normally.
        """
        if record not in self._stack:
            raise RuntimeError(
                f"cannot unwind to {record.name!r}: span is not open")
        while self._stack[-1] is not record:
            leaked = self._stack[-1]
            leaked.set("leaked", True)
            self.finish(leaked)
        return self.finish(record)

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def ordered(self) -> list[SpanRecord]:
        """Finished spans in start order (``spans`` is finish order)."""
        return sorted(self.spans, key=lambda s: s.index)

    def aggregate(self) -> dict[str, SpanStats]:
        """Per-name call counts and duration statistics, name-sorted."""
        grouped: dict[str, list[SpanRecord]] = {}
        for span in self.spans:
            grouped.setdefault(span.name, []).append(span)
        return {
            name: SpanStats(
                name=name,
                calls=len(records),
                total=sum(r.duration for r in records),
                min=min(r.duration for r in records),
                max=max(r.duration for r in records),
            )
            for name, records in sorted(grouped.items())
        }

    def reset(self) -> None:
        """Drop all finished spans and restart the epoch."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset tracer with {len(self._stack)} open span(s)")
        self.spans.clear()
        self._counter = 0
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
