"""Streaming quantile estimation: the P² sketch and the Quantile metric.

The P² algorithm (Jain & Chlamtac, 1985) tracks one quantile of a stream
with five *markers* — estimated heights at the 0, p/2, p, (1+p)/2 and 1
quantiles — adjusted after every observation with a piecewise-parabolic
interpolation. Memory is O(1) per tracked quantile, updates are a few
float comparisons, and the result is deterministic in the input order
(no sampling, no randomness), which keeps captured runs comparable.

:class:`Quantile` packages several P² estimators (p50/p90/p99 by
default) behind the same child-metric interface as
:class:`~repro.obs.metrics.Histogram`, so the registry, the JSONL
capture, and the Prometheus renderer treat latency quantiles as a
first-class metric family (rendered as a Prometheus *summary*).
"""

from __future__ import annotations

import math
import threading

from repro.obs.tracing import current_trace_id

#: Quantiles every latency family tracks unless told otherwise.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted list.

    Matches ``numpy.quantile``'s default (linear) method; used by the P²
    sketch while it holds fewer than five observations, and by the tests
    as the ground truth the sketch is bounded against.
    """
    if not sorted_values:
        raise ValueError("cannot take the quantile of an empty sequence")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class P2Quantile:
    """One P² marker bank estimating a single quantile ``q``.

    The first five observations are kept exactly; from the sixth on the
    five marker heights are nudged toward their desired positions with
    the P² parabolic rule (falling back to linear interpolation whenever
    the parabola would break marker monotonicity).
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        """Fold one sample into the sketch."""
        value = float(value)
        self.count += 1
        if self.count <= 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions

        # 1. Locate the marker cell the observation falls into.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and heights[cell + 1] <= value:
                cell += 1

        # 2. Shift actual positions above the cell; advance desired ones.
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # 3. Adjust the three interior markers toward their targets.
        for i in (1, 2, 3):
            drift = self._desired[i] - positions[i]
            if ((drift >= 1.0 and positions[i + 1] - positions[i] > 1.0)
                    or (drift <= -1.0 and positions[i - 1] - positions[i] < -1.0)):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def estimate(self) -> float | None:
        """Current quantile estimate (``None`` before any observation)."""
        if self.count == 0:
            return None
        if self.count <= 5:
            return exact_quantile(self._heights, self.q)
        return self._heights[2]


class Quantile:
    """Child metric tracking several stream quantiles plus count/sum.

    The Prometheus renderer emits this family as a *summary*: one sample
    per tracked quantile (``{quantile="0.99"}``) plus ``_sum`` and
    ``_count``. See :class:`~repro.obs.metrics.MetricsRegistry.quantile`.
    """

    kind = "quantile"
    __slots__ = ("name", "labels", "quantiles", "count", "sum", "min",
                 "max", "exemplar", "_estimators", "_lock")

    def __init__(self, name: str, labels: dict[str, str] | None = None,
                 quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ValueError("quantiles must be a non-empty sequence")
        if list(quantiles) != sorted(set(quantiles)):
            raise ValueError(
                f"quantiles must be strictly ascending, got {quantiles!r}")
        self.name = name
        self.labels = dict(labels or {})
        self.quantiles = tuple(float(q) for q in quantiles)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Trace-ID exemplar of the worst (max) observation recorded
        #: inside a request context (see :class:`Histogram.exemplar`).
        self.exemplar: dict[str, object] | None = None
        self._estimators = [P2Quantile(q) for q in self.quantiles]
        # Serialises concurrent observations: the P² marker arrays are
        # multi-step read-modify-write and would corrupt under races.
        self._lock = threading.Lock()

    def observe(self, value: float, *, trace_id: str | None = None) -> None:
        """Record one sample into every tracked quantile.

        ``trace_id`` overrides the ambient request context for the
        max-observation exemplar (see
        :meth:`repro.obs.metrics.Histogram.observe`).
        """
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            if value >= self.max:
                self.max = value
                tid = trace_id if trace_id is not None else current_trace_id()
                if tid is not None:
                    self.exemplar = {"trace_id": tid, "value": value}
            for estimator in self._estimators:
                estimator.observe(value)

    def estimate(self, q: float) -> float | None:
        """Current estimate for tracked quantile *q* (``None`` when empty)."""
        for estimator in self._estimators:
            if estimator.q == q:
                return estimator.estimate
        raise KeyError(f"quantile {q} is not tracked by {self.name!r} "
                       f"(tracked: {self.quantiles})")

    def estimates(self) -> dict[float, float | None]:
        """All tracked ``quantile -> estimate`` pairs, ascending."""
        return {e.q: e.estimate for e in self._estimators}

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        """JSON-ready state of this child metric."""
        with self._lock:
            snap: dict[str, object] = {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "quantiles": {format(e.q, "g"): e.estimate
                              for e in self._estimators},
            }
            if self.exemplar is not None:
                snap["exemplar"] = dict(self.exemplar)
            return snap
