"""Exporters for captured observability data.

Three output formats, all derived from the same registry + tracer pair:

- :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per line
  (a ``meta`` header, then spans in start order, then metric snapshots);
  the capture format consumed by ``python -m repro.obs report``.
- :func:`prometheus_text` — the Prometheus text exposition format, for
  scraping or diffing against a golden file.
- :func:`console_summary` — a fixed-width human summary (span aggregates
  plus metric values).
"""

from __future__ import annotations

import json
import math
import pathlib
import re

from repro.obs import config
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.quantiles import Quantile
from repro.obs.tracing import Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Map a dotted metric name to a legal Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _escape_label(value: object) -> str:
    # Prometheus label values escape backslash, double quote, and (per
    # the exposition-format spec) line feeds — a value containing a raw
    # newline would otherwise split the sample line in two.
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{_NAME_RE.sub("_", k)}="{_escape_label(v)}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if value % 1 else str(int(value))


#: Operator-facing help text for dotted metric names; families without
#: an entry get a generated default naming the source metric and kind.
_HELP_TEXTS: dict[str, str] = {}


def set_metric_help(name: str, text: str) -> None:
    """Register the ``# HELP`` text emitted for the dotted metric *name*."""
    _HELP_TEXTS[name] = text


def _prom_help(dotted: str, kind: str) -> str:
    # HELP text escapes backslash and line feed (but NOT double quote —
    # help lines are unquoted in the exposition format).
    text = _HELP_TEXTS.get(dotted) or f"repro metric {dotted} ({kind})"
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """Render every metric in the Prometheus text exposition format.

    Each family is announced by exactly one ``# HELP`` line (registered
    via :func:`set_metric_help`, or a generated default) followed by
    exactly one ``# TYPE`` line, then its samples — the structure
    :func:`lint_exposition` verifies.
    """
    registry = registry if registry is not None else config.get_registry()
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.collect():
        name = _prom_name(metric.name)
        if name not in seen_types:
            # Prometheus has no native "quantile" kind; the Quantile
            # family maps onto its summary type.
            kind = "summary" if metric.kind == "quantile" else metric.kind
            lines.append(f"# HELP {name} {_prom_help(metric.name, kind)}")
            lines.append(f"# TYPE {name} {kind}")
            seen_types.add(name)
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{name}{_prom_labels(metric.labels)} "
                         f"{_prom_value(metric.value)}")
        elif isinstance(metric, Quantile):
            for q, estimate in metric.estimates().items():
                value = "NaN" if estimate is None else _prom_value(estimate)
                lines.append(
                    f"{name}"
                    f"{_prom_labels(metric.labels, {'quantile': format(q, 'g')})}"
                    f" {value}")
            lines.append(f"{name}_sum{_prom_labels(metric.labels)} "
                         f"{_prom_value(metric.sum)}")
            lines.append(f"{name}_count{_prom_labels(metric.labels)} "
                         f"{metric.count}")
        elif isinstance(metric, Histogram):
            # bucket_counts are already cumulative (Prometheus `le` style).
            for bound, count in zip(metric.buckets, metric.bucket_counts):
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(metric.labels, {'le': _prom_value(bound)})}"
                    f" {count}")
            lines.append(f"{name}_bucket"
                         f"{_prom_labels(metric.labels, {'le': '+Inf'})}"
                         f" {metric.count}")
            lines.append(f"{name}_sum{_prom_labels(metric.labels)} "
                         f"{_prom_value(metric.sum)}")
            lines.append(f"{name}_count{_prom_labels(metric.labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


#: One sample line: name, optional {labels}, one space, value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\",?)*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\.)*)"')
_VALUE_RE = re.compile(r"^(NaN|[+-]Inf|[+-]?\d+(\.\d+)?([eE][+-]?\d+)?)$")


def _parse_le(raw: str) -> float:
    return math.inf if raw == "+Inf" else float(raw)


def lint_exposition(text: str) -> list[str]:
    """Structural lint of a Prometheus text exposition; returns problems.

    Checks the invariants a scraper relies on: every family announced by
    exactly one ``# HELP`` then exactly one ``# TYPE`` before any of its
    samples; sample lines well-formed (legal metric/label names, quoted
    and escape-valid label values, parseable value); samples grouped
    under their family (``_bucket``/``_sum``/``_count`` suffixes allowed
    for histograms and summaries); histogram buckets in increasing
    ``le`` order with cumulative counts, a ``+Inf`` bucket, and a
    ``_count`` equal to it. An empty list means the text is scrape-clean
    — the contract ``GET /metrics`` and the golden-file test hold
    :func:`prometheus_text` to.
    """
    problems: list[str] = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    sampled: set[str] = set()
    current: str | None = None
    # Per-histogram-child bucket state, keyed by the sorted label string
    # (minus ``le``): [last_le, last_count, saw_inf, inf_count].
    buckets: dict[str, list] = {}

    def _family_of(name: str) -> str:
        kind_of = typed.get(current or "", "")
        if kind_of in ("histogram", "summary"):
            for suffix in ("_bucket", "_sum", "_count"):
                if name == (current or "") + suffix:
                    return current  # type: ignore[return-value]
        return name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {lineno}: blank line in exposition")
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                problems.append(f"line {lineno}: HELP without text")
                continue
            name = parts[2]
            if name in helped:
                problems.append(f"line {lineno}: duplicate HELP for {name}")
            if name in typed or name in sampled:
                problems.append(
                    f"line {lineno}: HELP for {name} after its TYPE/samples")
            helped.add(name)
            current = name
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                problems.append(f"line {lineno}: unknown kind {kind!r}")
            if name in typed:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if name not in helped:
                problems.append(f"line {lineno}: TYPE for {name} without HELP")
            if name in sampled:
                problems.append(
                    f"line {lineno}: TYPE for {name} after its samples")
            typed[name] = kind
            current = name
        elif line.startswith("#"):
            problems.append(f"line {lineno}: unexpected comment {line!r}")
        else:
            match = _SAMPLE_RE.match(line)
            if match is None:
                problems.append(f"line {lineno}: malformed sample {line!r}")
                continue
            name = match.group("name")
            raw_labels = match.group("labels") or ""
            labels = dict(_LABEL_RE.findall(raw_labels))
            if not _VALUE_RE.match(match.group("value")):
                problems.append(
                    f"line {lineno}: unparseable value {match.group('value')!r}")
            family = _family_of(name)
            if family not in typed:
                problems.append(f"line {lineno}: sample {name} without TYPE")
            elif family != current:
                problems.append(
                    f"line {lineno}: sample {name} outside its family block")
            sampled.add(family)
            if (typed.get(family) == "histogram"
                    and name == family + "_bucket"):
                if "le" not in labels:
                    problems.append(f"line {lineno}: bucket without le label")
                    continue
                child = ",".join(f"{k}={v}" for k, v in sorted(labels.items())
                                 if k != "le")
                le = _parse_le(labels["le"])
                count = float(match.group("value"))
                state = buckets.setdefault(family + "{" + child + "}",
                                           [-math.inf, 0.0, False, 0.0])
                if le <= state[0]:
                    problems.append(
                        f"line {lineno}: bucket le={labels['le']} out of order")
                if count < state[1]:
                    problems.append(
                        f"line {lineno}: bucket counts not cumulative")
                state[0], state[1] = le, count
                if le == math.inf:
                    state[2], state[3] = True, count
            elif (typed.get(family) == "histogram"
                    and name == family + "_count"):
                child = ",".join(f"{k}={v}"
                                 for k, v in sorted(labels.items()))
                state = buckets.get(family + "{" + child + "}")
                if state is None or not state[2]:
                    problems.append(
                        f"line {lineno}: histogram {family} missing +Inf "
                        "bucket before _count")
                elif float(match.group("value")) != state[3]:
                    problems.append(
                        f"line {lineno}: {family}_count != +Inf bucket count")
    for name in helped:
        if name not in typed:
            problems.append(f"family {name}: HELP without TYPE")
    return problems


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def events(registry: MetricsRegistry | None = None,
           tracer: Tracer | None = None,
           meta: dict[str, object] | None = None) -> list[dict[str, object]]:
    """The capture as a list of JSON-ready event dicts.

    Line order: one ``meta`` header, spans in start order, metric
    snapshots, structured event-log lines (``type: "event"``), then
    retained request exemplars (``type: "exemplar"``, full span trees).
    When *registry*/*tracer* are passed explicitly (offline renders of
    foreign state) the global event log and exemplar reservoir are
    skipped — they only describe the live global capture.
    """
    offline = registry is not None or tracer is not None
    registry = registry if registry is not None else config.get_registry()
    tracer = tracer if tracer is not None else config.get_tracer()
    event_log = [] if offline else list(config._STATE.events)
    exemplars = ([] if offline
                 else config.get_exemplars().snapshot())
    header: dict[str, object] = {
        "type": "meta",
        "epoch_wall": tracer.epoch_wall,
        "spans": len(tracer.spans),
        "metrics": len(registry),
        "events": len(event_log),
        "exemplars": len(exemplars),
    }
    if tracer.dropped_spans:
        header["dropped_spans"] = tracer.dropped_spans
    if meta:
        header.update(meta)
    out: list[dict[str, object]] = [header]
    out.extend(span.snapshot() for span in tracer.ordered())
    out.extend(registry.snapshot())
    out.extend(event_log)
    out.extend(exemplars)
    return out


def write_jsonl(path: str | pathlib.Path,
                registry: MetricsRegistry | None = None,
                tracer: Tracer | None = None,
                meta: dict[str, object] | None = None) -> pathlib.Path:
    """Write the capture to *path* as JSON lines; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(event, sort_keys=True)
             for event in events(registry, tracer, meta)]
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[dict[str, object]]:
    """Parse a capture written by :func:`write_jsonl`."""
    out = []
    for i, line in enumerate(pathlib.Path(path).read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: not valid JSON: {exc}") from None
    return out


# ----------------------------------------------------------------------
# Human rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def _metric_line(event: dict[str, object]) -> str:
    labels = event.get("labels") or {}
    label_str = ("{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
                 + "}") if labels else ""
    name = f"{event['name']}{label_str}"
    if event["kind"] == "histogram":
        count = event["count"]
        mean = (event["sum"] / count) if count else 0.0
        return (f"  {name}  count={count} mean={mean:.4g} "
                f"min={event['min']} max={event['max']}")
    if event["kind"] == "quantile":
        estimates = event.get("quantiles") or {}
        rendered = " ".join(
            f"p{format(float(q) * 100, 'g')}="
            + ("-" if est is None else f"{est:.4g}")
            for q, est in sorted(estimates.items(), key=lambda kv: float(kv[0])))
        return f"  {name}  count={event['count']} {rendered}"
    return f"  {name}  {event['value']:g}"


def _trace_lines(spans: list[dict[str, object]], title: str) -> list[str]:
    lines = [title, "-" * len(title)]
    for span in sorted(spans, key=lambda s: s["index"]):
        indent = "  " * int(span["depth"])
        attrs = span.get("attrs") or {}
        attr_str = (" [" + ", ".join(f"{k}={v}" for k, v in attrs.items())
                    + "]") if attrs else ""
        lines.append(f"{indent}{span['name']}  "
                     f"{_format_seconds(float(span['duration']))}{attr_str}")
    return lines


def _span_total_lines(spans: list[dict[str, object]], title: str) -> list[str]:
    # Per-name aggregate mirrors Tracer.aggregate for offline captures.
    grouped: dict[str, list[float]] = {}
    for span in spans:
        grouped.setdefault(str(span["name"]), []).append(float(span["duration"]))
    lines = [title, "-" * len(title)]
    width = max(len(n) for n in grouped)
    for name in sorted(grouped):
        durations = grouped[name]
        lines.append(
            f"  {name.ljust(width)}  calls={len(durations):<5d} "
            f"total={_format_seconds(sum(durations)):>9s} "
            f"mean={_format_seconds(sum(durations) / len(durations)):>9s} "
            f"max={_format_seconds(max(durations)):>9s}")
    return lines


def _event_line(event: dict[str, object]) -> str:
    extras = {k: v for k, v in event.items()
              if k not in ("type", "name", "time", "trace_id")}
    extra_str = (" " + " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
                 if extras else "")
    trace = event.get("trace_id") or "-"
    return f"  {event['name']}  trace={trace}{extra_str}"


def _exemplar_summary_line(exemplar: dict[str, object]) -> str:
    spans = exemplar.get("spans") or []
    tag = (f"error={exemplar['error']}" if exemplar.get("error")
           else "slow")
    return (f"  [{tag}] {exemplar['name']}  "
            f"{_format_seconds(float(exemplar['duration']))}  "
            f"trace={exemplar['trace_id']}  spans={len(spans)}")


def render_exemplars(captured: list[dict[str, object]]) -> str:
    """Render every retained request exemplar as a full span tree."""
    exemplars = [e for e in captured if e.get("type") == "exemplar"]
    if not exemplars:
        return "(no exemplars in capture)"
    lines: list[str] = []
    for exemplar in exemplars:
        if lines:
            lines.append("")
        title = (f"Exemplar [{exemplar['reason']}] {exemplar['name']}  "
                 f"{_format_seconds(float(exemplar['duration']))}  "
                 f"trace={exemplar['trace_id']}")
        if exemplar.get("error"):
            title += f"  error={exemplar['error']}"
        spans = list(exemplar.get("spans") or [])
        lines.extend(_trace_lines(spans, title) if spans
                     else [title, "-" * len(title), "  (no spans captured)"])
    return "\n".join(lines)


def render_report(captured: list[dict[str, object]]) -> str:
    """Pretty-print a parsed JSONL capture: span tree + metric list."""
    spans = [e for e in captured if e.get("type") == "span"]
    metrics = [e for e in captured if e.get("type") == "metric"]
    event_log = [e for e in captured if e.get("type") == "event"]
    exemplars = [e for e in captured if e.get("type") == "exemplar"]
    lines: list[str] = []
    if spans:
        lines.extend(_trace_lines(spans, "Trace"))
        lines.append("")
        lines.extend(_span_total_lines(spans, "Span totals"))
    if metrics:
        if lines:
            lines.append("")
        lines.append("Metrics")
        lines.append("-------")
        lines.extend(_metric_line(m) for m in metrics)
    if event_log:
        if lines:
            lines.append("")
        lines.append("Events")
        lines.append("------")
        lines.extend(_event_line(e) for e in event_log)
    if exemplars:
        if lines:
            lines.append("")
        lines.append("Exemplars (render trees with: report --exemplars)")
        lines.append("--------------------------------------------------")
        lines.extend(_exemplar_summary_line(e) for e in exemplars)
    if not lines:
        lines.append("(empty capture: no spans, no metrics)")
    return "\n".join(lines)


def render_multi_report(captures: list[tuple[str, list[dict[str, object]]]]) -> str:
    """Merge several parsed captures into one labelled report.

    Each capture keeps its own trace tree and metric list (sections are
    labelled with the source name — counters from different runs must
    not be summed), while span durations are additionally aggregated
    across *all* captures so per-stage totals over, say, a whole
    benchmark suite read off one table.
    """
    if len(captures) == 1:
        return render_report(captures[0][1])
    lines: list[str] = []
    all_spans: list[dict[str, object]] = []
    for label, captured in captures:
        spans = [e for e in captured if e.get("type") == "span"]
        if not spans:
            continue
        all_spans.extend(spans)
        if lines:
            lines.append("")
        lines.extend(_trace_lines(spans, f"Trace — {label}"))
    if all_spans:
        lines.append("")
        lines.extend(_span_total_lines(
            all_spans, f"Span totals ({len(captures)} captures)"))
    for label, captured in captures:
        metrics = [e for e in captured if e.get("type") == "metric"]
        if not metrics:
            continue
        if lines:
            lines.append("")
        title = f"Metrics — {label}"
        lines.append(title)
        lines.append("-" * len(title))
        lines.extend(_metric_line(m) for m in metrics)
    if not lines:
        lines.append("(empty captures: no spans, no metrics)")
    return "\n".join(lines)


def console_summary(registry: MetricsRegistry | None = None,
                    tracer: Tracer | None = None) -> str:
    """Human summary of the live in-process capture."""
    return render_report(events(registry, tracer)[1:])
