"""repro.resilience — fault injection, checkpoints, guards, and retry.

The fault-tolerance layer of the pipeline. Four cooperating pieces:

- :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (``REPRO_FAULTS=site:prob:seed,...``) whose
  :func:`~repro.resilience.faults.maybe_fail` hooks sit at corpus load,
  artifact verify/load, SEM embedding, trainer batch steps, and serving
  query/ingest sites, raising typed
  :class:`~repro.errors.InjectedFault` errors reproducibly;
- :mod:`repro.resilience.checkpoint` — atomic (tmp+fsync+rename,
  sha256-manifested) per-epoch training checkpoints with keep-last-N
  retention and **bit-identical** resume;
- :mod:`repro.resilience.guards` — NaN/Inf and divergence detection
  raising :class:`~repro.errors.NumericalError`, plus the bounded
  rollback/LR-halving recovery policy trainers apply on a trip;
- :mod:`repro.resilience.retry` — a deterministic exponential-backoff
  retry decorator raising :class:`~repro.errors.RetryExhaustedError`
  with a full attempt log, used by data IO and the serving layer before
  degrading.

See docs/API.md (section "repro.resilience") for the fault-site table
and the on-disk checkpoint layout.
"""

from repro.errors import InjectedFault, NumericalError, RetryExhaustedError
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    TrainState,
)
from repro.resilience.faults import (
    ENV_VAR,
    KNOWN_SITES,
    FaultPlan,
    FaultRule,
    active,
    clear,
    inject,
    install,
    maybe_fail,
)
from repro.resilience.guards import GuardPolicy, NumericGuard
from repro.resilience.retry import Backoff, RetryAttempt, retry

__all__ = [
    # faults
    "FaultPlan", "FaultRule", "maybe_fail", "inject", "install", "clear",
    "active", "KNOWN_SITES", "ENV_VAR",
    # checkpoints
    "CheckpointManager", "TrainState", "CHECKPOINT_SCHEMA_VERSION",
    # guards
    "NumericGuard", "GuardPolicy",
    # retry
    "retry", "Backoff", "RetryAttempt",
    # errors (re-exported for convenience)
    "InjectedFault", "NumericalError", "RetryExhaustedError",
]
