"""Deterministic fault injection for exercising recovery paths.

A :class:`FaultPlan` maps *fault sites* — named hook points placed on the
failure-prone edges of the pipeline (data IO, artifact verification, SEM
embedding, trainer batch steps, serving queries and ingestion) — to a
firing probability and a private RNG seed. Call sites invoke
:func:`maybe_fail`; when the active plan's per-site uniform draw lands
under the probability, a typed :class:`~repro.errors.InjectedFault` is
raised. Everything is deterministic: the same plan and the same sequence
of calls produce the same faults, so every recovery path in the library
(retry, degradation, checkpoint rollback) is testable in CI.

Plans come from three places::

    # 1. the environment (chaos CI): REPRO_FAULTS=site:prob:seed,...
    REPRO_FAULTS="data.load_corpus:0.05:7,artifact.verify:0.05:11"

    # 2. programmatically, installed for a scope
    with faults.inject("serve.query:1.0"):
        ...

    # 3. permanently for the process
    faults.install(FaultPlan.parse("trainer.batch:0.01:3"))

No plan (the default) makes :func:`maybe_fail` a near-free no-op.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.errors import InjectedFault

#: Environment variable read by :func:`active` on first use.
ENV_VAR = "REPRO_FAULTS"

#: Sites hooked by the library itself, with the failure they emulate.
KNOWN_SITES: dict[str, str] = {
    "data.load_corpus": "transient read error while loading a corpus JSON",
    "artifact.verify": "manifest verification failure on a model artifact",
    "artifact.load": "deserialisation failure while rebuilding a pipeline",
    "sem.embed": "failure computing a paper's subspace embedding",
    "trainer.batch": "failure inside one optimisation batch step",
    "serve.query": "failure answering a top-K serving query",
    "serve.ingest": "failure ingesting a new paper into the serving pool",
    "serve.wal.append": "crash before the write-ahead log records an ingest",
    "serve.wal.replay": "transient failure reapplying one recovered record",
    "serve.swap.load": "failure loading a candidate artifact for hot swap",
}


@dataclass(frozen=True)
class FaultRule:
    """One site's firing rule: probability per call, private RNG seed."""

    site: str
    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}")


class FaultPlan:
    """A set of :class:`FaultRule`\\ s with per-site deterministic RNGs.

    The k-th :func:`maybe_fail` call at a site draws the k-th uniform
    variate of that site's private PCG64 stream, so whether a given call
    fires depends only on the rule's seed and the call's ordinal — not on
    any global RNG state.
    """

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self.rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ValueError(f"duplicate fault rule for site {rule.site!r}")
            self.rules[rule.site] = rule
        self._rngs = {site: np.random.default_rng(rule.seed)
                      for site, rule in self.rules.items()}
        #: site -> number of draws taken so far.
        self.draws: dict[str, int] = {site: 0 for site in self.rules}
        #: site -> number of faults actually fired.
        self.fired: dict[str, int] = {site: 0 for site in self.rules}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from ``"site:prob[:seed],site:prob[:seed],..."``.

        The seed defaults to 0. Whitespace around entries is ignored and
        empty entries are skipped, so trailing commas are harmless.
        """
        rules = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected site:prob[:seed]")
            site = parts[0].strip()
            try:
                probability = float(parts[1])
                seed = int(parts[2]) if len(parts) == 3 else 0
            except ValueError as exc:
                raise ValueError(f"bad fault spec {chunk!r}: {exc}") from exc
            rules.append(FaultRule(site, probability, seed))
        return cls(rules)

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "FaultPlan | None":
        """The plan described by :data:`ENV_VAR`, or ``None`` if unset."""
        spec = (environ if environ is not None else os.environ).get(ENV_VAR)
        if not spec:
            return None
        return cls.parse(spec)

    def should_fail(self, site: str) -> bool:
        """Draw once for *site*; True when the injected fault fires."""
        rule = self.rules.get(site)
        if rule is None:
            return False
        draw = float(self._rngs[site].random())
        self.draws[site] += 1
        if draw < rule.probability:
            self.fired[site] += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{r.site}:{r.probability}:{r.seed}"
                         for r in self.rules.values())
        return f"FaultPlan({body})"


#: Sentinel meaning "environment not consulted yet".
_UNSET = object()
_ACTIVE: "FaultPlan | None | object" = _UNSET


def install(plan: "FaultPlan | str | None") -> "FaultPlan | None":
    """Make *plan* (or a spec string) the process-wide active plan."""
    global _ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _ACTIVE = plan
    return plan


def clear() -> None:
    """Deactivate fault injection (the environment is *not* re-read)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> "FaultPlan | None":
    """The currently active plan, lazily loading :data:`ENV_VAR` once."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        _ACTIVE = FaultPlan.from_env()
    return _ACTIVE  # type: ignore[return-value]


@contextmanager
def inject(plan: "FaultPlan | str | None") -> Iterator["FaultPlan | None"]:
    """Context manager scoping *plan* as the active plan.

    The previous plan (including "unset, read the environment later") is
    restored on exit, so tests can inject faults without leaking state.
    """
    global _ACTIVE
    previous = _ACTIVE
    try:
        yield install(plan)
    finally:
        _ACTIVE = previous


def maybe_fail(site: str) -> None:
    """Raise :class:`InjectedFault` when the active plan fires at *site*.

    This is the hook the library places on its failure-prone edges; with
    no active plan it costs one global read and one dict miss.
    """
    plan = active()
    if plan is None or not plan.rules:
        return
    if plan.should_fail(site):
        draw = plan.draws[site] - 1
        obs.count("resilience.faults.injected", site=site)
        # Black-box the firing while the spans are still open: by the
        # time the fault is caught the stack has unwound, so this entry
        # is the postmortem's only record of where the crash hit.
        obs.get_flight_recorder().note_fault(site, draw)
        raise InjectedFault(
            f"injected fault at site {site!r} (draw #{draw})",
            site=site, draw=draw)
