"""Numeric guards: NaN/Inf detection, divergence bounds, rollback policy.

A :class:`NumericGuard` sits inside a trainer's epoch loop and turns
silent numeric corruption into typed, recoverable failures:

- :meth:`~NumericGuard.check_loss` / :meth:`~NumericGuard.check_gradients`
  raise :class:`~repro.errors.NumericalError` the moment a batch loss or
  any parameter gradient goes non-finite — before the bad update is
  applied anywhere downstream;
- :meth:`~NumericGuard.check_epoch` raises when the epoch loss exceeds
  ``divergence_factor`` times the best (rolling minimum) epoch loss seen;
- the rollback half — :meth:`~NumericGuard.admit_rollback` and
  :meth:`~NumericGuard.decay_lr` — lets the trainer restore the last good
  state, halve the learning rate, and retry, a bounded number of times.

Every trip and recovery action is counted under ``resilience.guard.*``
so chaos runs are observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro import obs
from repro.errors import NumericalError
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class GuardPolicy:
    """Tunable thresholds for :class:`NumericGuard`.

    Parameters
    ----------
    divergence_factor:
        An epoch loss above ``factor * best_epoch_loss`` counts as
        divergence. Generous by default — early epochs are noisy.
    max_rollbacks:
        Total rollback-and-retry attempts allowed per training run.
    lr_backoff:
        Multiplier applied to the learning rate on each rollback.
    min_lr:
        Floor under the decayed learning rate.
    check_gradients:
        Whether per-batch gradient finiteness is checked (the loss check
        is always on; the gradient sweep costs one ``isfinite`` pass per
        parameter per batch).
    """

    divergence_factor: float = 25.0
    max_rollbacks: int = 2
    lr_backoff: float = 0.5
    min_lr: float = 1e-7
    check_gradients: bool = True

    def __post_init__(self) -> None:
        if self.divergence_factor <= 1.0:
            raise ValueError(
                f"divergence_factor must be > 1, got {self.divergence_factor}")
        if self.max_rollbacks < 0:
            raise ValueError(
                f"max_rollbacks must be >= 0, got {self.max_rollbacks}")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError(
                f"lr_backoff must be in (0, 1), got {self.lr_backoff}")


class NumericGuard:
    """Stateful guard for one training run (do not share across runs)."""

    def __init__(self, policy: GuardPolicy | None = None) -> None:
        self.policy = policy or GuardPolicy()
        self.best_loss = math.inf
        self.rollbacks_used = 0

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def check_loss(self, value: float, where: str) -> float:
        """Pass *value* through, raising on NaN/Inf."""
        if not math.isfinite(value):
            obs.count("resilience.guard.trips", kind="nonfinite_loss")
            obs.get_flight_recorder().trip("guard_nonfinite_loss")
            raise NumericalError(f"non-finite loss {value!r} at {where}")
        return value

    def check_gradients(self, params: Iterable[Tensor], where: str) -> None:
        """Raise when any parameter gradient contains NaN/Inf."""
        if not self.policy.check_gradients:
            return
        for i, param in enumerate(params):
            if param.grad is not None and not np.isfinite(param.grad).all():
                obs.count("resilience.guard.trips", kind="nonfinite_grad")
                obs.get_flight_recorder().trip("guard_nonfinite_grad")
                raise NumericalError(
                    f"non-finite gradient in parameter #{i} "
                    f"(shape {param.grad.shape}) at {where}")

    def check_epoch(self, mean_loss: float, epoch: int) -> None:
        """End-of-epoch check: finiteness plus the divergence bound."""
        self.check_loss(mean_loss, f"epoch {epoch} mean loss")
        if (math.isfinite(self.best_loss)
                and mean_loss > self.policy.divergence_factor * self.best_loss):
            obs.count("resilience.guard.trips", kind="divergence")
            obs.get_flight_recorder().trip("guard_divergence")
            raise NumericalError(
                f"divergence at epoch {epoch}: loss {mean_loss:.6g} exceeds "
                f"{self.policy.divergence_factor:g} x best "
                f"{self.best_loss:.6g}")
        self.best_loss = min(self.best_loss, mean_loss)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def admit_rollback(self) -> bool:
        """Whether one more rollback-and-retry is within budget."""
        if self.rollbacks_used >= self.policy.max_rollbacks:
            obs.count("resilience.guard.retries_exhausted")
            return False
        self.rollbacks_used += 1
        obs.count("resilience.guard.rollbacks")
        return True

    def decay_lr(self, optimizer: Optimizer) -> float:
        """Halve (by ``lr_backoff``) the optimiser LR; returns the new LR."""
        optimizer.lr = max(optimizer.lr * self.policy.lr_backoff,
                           self.policy.min_lr)
        obs.count("resilience.guard.lr_decays")
        return optimizer.lr
