"""Atomic per-epoch training checkpoints with bit-identical resume.

A checkpoint directory holds one subdirectory per snapshot::

    <root>/
        epoch-0001/
            state.npz       model weights, Adam moments, shuffle order
            meta.json       epoch, Adam t/lr, RNG state, history, schema
            manifest.json   sha256 per file (the serve.artifacts convention)
        epoch-0002/
        ...

Writes are crash-safe: every file is written inside a hidden temp
directory, fsynced, and the whole directory is atomically renamed into
place (`os.replace`), so a kill at any instant leaves either the previous
complete set of checkpoints or the previous set plus one complete new
snapshot — never a truncated one. Retention keeps the newest *keep_last*
snapshots.

A :class:`TrainState` captures everything a trainer's epoch loop
consumes — model ``state_dict``, Adam moments/step/lr, the shuffle RNG's
``bit_generator.state``, the (persistently shuffled) epoch order array,
and the per-epoch history columns — which is exactly the set needed for
a resumed run to be bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import copy
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import ArtifactError
from repro.nn.layers import Module
from repro.nn.optim import Adam

#: On-disk checkpoint layout version; mismatches refuse to load.
CHECKPOINT_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"

_MODEL_PREFIX = "model."
_ADAM_M_PREFIX = "adam.m."
_ADAM_V_PREFIX = "adam.v."
_ORDER_KEY = "order"


def _sha256(path: Path) -> str:
    import hashlib
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class TrainState:
    """Everything needed to resume an epoch loop bit-identically.

    *epoch* counts **completed** epochs: a state captured with
    ``epoch=k`` resumes training at epoch ``k`` (0-based), and its
    history columns hold exactly ``k`` entries each.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    rng_state: dict
    order: np.ndarray
    history: dict[str, list[float]]

    @classmethod
    def capture(cls, epoch: int, module: Module, optimizer: Adam,
                rng: np.random.Generator, order: np.ndarray,
                history: dict[str, list[float]]) -> "TrainState":
        """Deep-copy the live training state (cheap relative to an epoch)."""
        return cls(
            epoch=int(epoch),
            model_state=module.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=copy.deepcopy(rng.bit_generator.state),
            order=np.asarray(order).copy(),
            history={name: list(column) for name, column in history.items()},
        )

    def restore(self, module: Module, optimizer: Adam,
                rng: np.random.Generator, order: np.ndarray,
                history: dict[str, list[float]]) -> None:
        """Write this state back into the live training objects."""
        if order.shape != self.order.shape:
            raise ArtifactError(
                f"checkpoint was taken over {self.order.shape[0]} training "
                f"examples but the current run has {order.shape[0]}; resume "
                "requires the identical training set")
        module.load_state_dict(self.model_state)
        optimizer.load_state_dict(self.optimizer_state)
        rng.bit_generator.state = copy.deepcopy(self.rng_state)
        order[:] = self.order
        for name, column in history.items():
            column[:] = list(self.history.get(name, ()))


class CheckpointManager:
    """Owns one checkpoint directory: atomic saves, retention, resume.

    Parameters
    ----------
    directory:
        Root directory for snapshots; created on first save.
    keep_last:
        Number of newest snapshots retained after each save.
    """

    def __init__(self, directory: str | os.PathLike, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.root = Path(directory)
        self.keep_last = keep_last

    # ------------------------------------------------------------------
    def _slot(self, epoch: int) -> Path:
        return self.root / f"epoch-{epoch:04d}"

    def epochs(self) -> list[int]:
        """Completed-epoch numbers with a snapshot on disk, ascending."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name.startswith("epoch-"):
                try:
                    found.append(int(entry.name.split("-", 1)[1]))
                except ValueError:
                    continue
        return sorted(found)

    # ------------------------------------------------------------------
    def save(self, state: TrainState) -> Path:
        """Atomically persist *state*; returns the snapshot directory."""
        self.root.mkdir(parents=True, exist_ok=True)
        final = self._slot(state.epoch)
        tmp = self.root / f".tmp-{final.name}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()

        arrays: dict[str, np.ndarray] = {
            f"{_MODEL_PREFIX}{name}": value
            for name, value in state.model_state.items()
        }
        for i, m in enumerate(state.optimizer_state["m"]):
            arrays[f"{_ADAM_M_PREFIX}{i}"] = m
        for i, v in enumerate(state.optimizer_state["v"]):
            arrays[f"{_ADAM_V_PREFIX}{i}"] = v
        arrays[_ORDER_KEY] = np.asarray(state.order, dtype=np.int64)
        np.savez(tmp / "state.npz", **arrays)

        meta = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "epoch": state.epoch,
            "adam": {"t": int(state.optimizer_state["t"]),
                     "lr": float(state.optimizer_state["lr"]),
                     "n_params": len(state.optimizer_state["m"])},
            "rng_state": state.rng_state,
            "history": state.history,
        }
        with open(tmp / "meta.json", "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_path(tmp / "state.npz")

        manifest = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "kind": "train-checkpoint",
            "files": {name: _sha256(tmp / name)
                      for name in ("state.npz", "meta.json")},
        }
        with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_path(tmp)

        # A pre-existing slot for the same epoch (e.g. a rerun) cannot be
        # replaced in one rename; remove it first. A crash between the
        # two steps leaves only the hidden tmp dir, which loaders skip —
        # the previous epoch's snapshot remains the resume point.
        if final.exists():
            shutil.rmtree(final)
        os.replace(tmp, final)
        _fsync_path(self.root)
        obs.count("resilience.checkpoint.saved")
        self._prune()
        return final

    def _prune(self) -> None:
        epochs = self.epochs()
        for epoch in epochs[:-self.keep_last]:
            shutil.rmtree(self._slot(epoch), ignore_errors=True)
            obs.count("resilience.checkpoint.pruned")

    # ------------------------------------------------------------------
    def load(self, epoch: int) -> TrainState:
        """Load and integrity-check the snapshot for *epoch*.

        Raises :class:`ArtifactError` when the snapshot is missing, was
        written under another schema version, or fails its checksums.
        """
        slot = self._slot(epoch)
        manifest_path = slot / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ArtifactError(f"no checkpoint manifest at {slot}")
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArtifactError(f"corrupt checkpoint manifest {manifest_path}: "
                                f"{exc}") from exc
        if manifest.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise ArtifactError(
                f"checkpoint {slot} has schema version "
                f"{manifest.get('schema_version')!r}; this build reads "
                f"{CHECKPOINT_SCHEMA_VERSION}")
        bad = []
        for name, checksum in manifest.get("files", {}).items():
            path = slot / name
            if not path.is_file():
                bad.append(f"{name} (missing)")
            elif _sha256(path) != checksum:
                bad.append(f"{name} (checksum mismatch)")
        if bad:
            raise ArtifactError(
                f"checkpoint {slot} failed integrity checks: {', '.join(bad)}")

        with open(slot / "meta.json", encoding="utf-8") as handle:
            meta = json.load(handle)
        with np.load(slot / "state.npz") as archive:
            arrays = {name: archive[name] for name in archive.files}

        model_state = {name[len(_MODEL_PREFIX):]: value
                       for name, value in arrays.items()
                       if name.startswith(_MODEL_PREFIX)}
        n_params = int(meta["adam"]["n_params"])
        optimizer_state = {
            "t": int(meta["adam"]["t"]),
            "lr": float(meta["adam"]["lr"]),
            "m": [arrays[f"{_ADAM_M_PREFIX}{i}"] for i in range(n_params)],
            "v": [arrays[f"{_ADAM_V_PREFIX}{i}"] for i in range(n_params)],
        }
        return TrainState(
            epoch=int(meta["epoch"]),
            model_state=model_state,
            optimizer_state=optimizer_state,
            rng_state=meta["rng_state"],
            order=arrays[_ORDER_KEY],
            history={name: [float(x) for x in column]
                     for name, column in meta["history"].items()},
        )

    def latest(self) -> TrainState | None:
        """The newest loadable snapshot, or ``None``.

        Snapshots that fail integrity checks (e.g. a partially deleted
        slot) are skipped with a ``resilience.checkpoint.corrupt`` count,
        falling back to the next-newest — a truncated tail never blocks
        resume.
        """
        for epoch in reversed(self.epochs()):
            try:
                return self.load(epoch)
            except ArtifactError:
                obs.count("resilience.checkpoint.corrupt")
                continue
        return None
