"""Deterministic retry with exponential backoff and a full attempt log.

The :func:`retry` decorator re-runs a callable on a configurable set of
exception types, sleeping a *deterministic* exponential-backoff delay
between attempts (no jitter — reproducibility beats thundering-herd
avoidance at this scale). When every attempt fails it raises
:class:`~repro.errors.RetryExhaustedError` carrying the ordered attempt
log, so callers can degrade gracefully and tests can assert exactly what
happened on each attempt.

The sleep function is injectable, which keeps unit tests instant and
lets servers substitute an async-friendly sleeper.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, NamedTuple, TypeVar

from repro import obs
from repro.errors import RetryExhaustedError


@dataclass(frozen=True)
class Backoff:
    """Deterministic exponential backoff schedule.

    Attempt *n* (1-based) waits ``min(base * factor**(n-1), max_delay)``
    seconds before the next attempt.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {attempt}")
        return min(self.base * self.factor ** (attempt - 1), self.max_delay)


class RetryAttempt(NamedTuple):
    """One failed attempt: its ordinal, the error, and the delay slept."""

    attempt: int
    error: BaseException
    delay: float


_F = TypeVar("_F", bound=Callable)


def retry(attempts: int = 3, backoff: Backoff | None = None,
          retry_on: tuple[type[BaseException], ...] = (Exception,),
          sleep: Callable[[float], None] = time.sleep,
          name: str | None = None) -> Callable[[_F], _F]:
    """Decorator retrying the wrapped callable on *retry_on* exceptions.

    Parameters
    ----------
    attempts:
        Total number of attempts (the first call included); must be >= 1.
    backoff:
        Delay schedule between attempts (default :class:`Backoff()`).
        No delay follows the final attempt.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately (a programming error should never be retried).
    sleep:
        Called with the computed delay between attempts. Injectable for
        tests (``sleep=lambda s: None``).
    name:
        Label used for the ``resilience.retry.*`` obs counters; defaults
        to the wrapped function's qualified name.

    Raises
    ------
    RetryExhaustedError
        After the final failed attempt, chained from the last error and
        carrying the ordered :class:`RetryAttempt` log.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    schedule = backoff if backoff is not None else Backoff()

    def deco(fn: _F) -> _F:
        label = name or getattr(fn, "__qualname__", repr(fn))

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            log: list[RetryAttempt] = []
            for attempt in range(1, attempts + 1):
                try:
                    return fn(*args, **kwargs)
                except retry_on as exc:
                    final = attempt == attempts
                    delay = 0.0 if final else schedule.delay(attempt)
                    log.append(RetryAttempt(attempt, exc, delay))
                    obs.count("resilience.retry.attempts", op=label)
                    if final:
                        obs.count("resilience.retry.exhausted", op=label)
                        raise RetryExhaustedError(
                            f"{label}: all {attempts} attempts failed; "
                            f"last error: {exc!r}",
                            attempts=attempts, attempt_log=log) from exc
                    sleep(delay)
            raise AssertionError("unreachable")  # pragma: no cover

        return wrapper  # type: ignore[return-value]

    return deco
