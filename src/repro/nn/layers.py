"""Stateful neural building blocks (Module, Linear, MLP, Embedding, ...).

The :class:`Module` base class mirrors the familiar torch.nn contract at a
miniature scale: parameters are discovered recursively through attributes,
``state_dict``/``load_state_dict`` round-trip weights, and a ``training``
flag toggles dropout behaviour.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.nn import init as initializers
from repro.nn.functional import dropout
from repro.nn.tensor import Tensor, parameter
from repro.utils.rng import as_generator


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Tensor` parameters and child ``Module``s as
    plain attributes; :meth:`parameters` and :meth:`state_dict` find them by
    reflection, in deterministic (sorted attribute name) order.
    """

    training: bool = True

    def parameters(self) -> list[Tensor]:
        """All trainable tensors of this module and its children."""
        params: list[Tensor] = []
        for _, value in self._components():
            if isinstance(value, Tensor):
                if value.requires_grad:
                    params.append(value)
            else:
                params.extend(value.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` for every trainable parameter."""
        for name, value in self._components():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor):
                if value.requires_grad:
                    yield full, value
            else:
                yield from value.named_parameters(prefix=f"{full}.")

    def _components(self) -> list[tuple[str, "Tensor | Module"]]:
        found: list[tuple[str, Tensor | Module]] = []
        for name in sorted(vars(self)):
            value = getattr(self, name)
            if isinstance(value, (Tensor, Module)):
                found.append((name, value))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, (Tensor, Module)):
                        found.append((f"{name}.{i}", item))
        return found

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for _, value in self._components():
            if isinstance(value, Module):
                value.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: tensor.data.copy() for name, tensor in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict matching).

        The load is atomic: every key and shape is validated against the
        module *before* any parameter is touched, so a mismatch raises
        with the module left exactly as it was (no partial overwrite).
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        staged: dict[str, np.ndarray] = {}
        mismatched: list[str] = []
        for name, tensor in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != tensor.data.shape:
                mismatched.append(
                    f"{name!r}: model {tensor.data.shape}, state {value.shape}")
            else:
                staged[name] = value
        if mismatched:
            raise ValueError(
                "parameter shape mismatch (no parameters were modified): "
                + "; ".join(mismatched))
        for name, tensor in own.items():
            tensor.data = staged[name].copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Seed or generator for Xavier initialisation.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | int | None = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Linear dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = parameter(
            initializers.xavier_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias = parameter(initializers.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout layer; a no-op in eval mode."""

    def __init__(self, rate: float = 0.1, rng: np.random.Generator | int | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Chain modules, feeding each output into the next input."""

    def __init__(self, *modules: Module) -> None:
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x


class Tanh(Module):
    """Elementwise tanh as a layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    """Elementwise ReLU as a layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Elementwise sigmoid as a layer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MLP(Module):
    """Multi-layer perceptron with tanh hidden activations (paper Eqs. 7-8).

    Parameters
    ----------
    sizes:
        Layer widths, e.g. ``[768, 128, 64]`` builds two affine layers.
    activation:
        ``"tanh"`` (paper default), ``"relu"``, or ``"sigmoid"``.
    final_activation:
        Whether to apply the nonlinearity after the last layer too.
    """

    _ACTIVATIONS = {"tanh": Tanh, "relu": ReLU, "sigmoid": Sigmoid}

    def __init__(self, sizes: Sequence[int], activation: str = "tanh",
                 final_activation: bool = True, dropout_rate: float = 0.0,
                 rng: np.random.Generator | int | None = None) -> None:
        sizes = list(sizes)
        if len(sizes) < 2:
            raise ValueError(f"MLP needs at least input and output sizes, got {sizes}")
        if activation not in self._ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(self._ACTIVATIONS)}")
        generator = as_generator(rng)
        steps: list[Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            steps.append(Linear(fan_in, fan_out, rng=generator))
            last = i == len(sizes) - 2
            if not last or final_activation:
                steps.append(self._ACTIVATIONS[activation]())
            if dropout_rate > 0 and not last:
                steps.append(Dropout(dropout_rate, rng=generator))
        self.net = Sequential(*steps)
        self.sizes = sizes

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class Embedding(Module):
    """Learnable lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | int | None = None, std: float = 0.1) -> None:
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError(
                f"Embedding sizes must be positive, got ({num_embeddings}, {dim})"
            )
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = parameter(initializers.normal((num_embeddings, dim), std=std, rng=rng),
                                name="embedding")

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight[ids]
