"""Weight initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    rng = as_generator(rng)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He/Kaiming normal init: N(0, sqrt(2 / fan_in)) — suited to ReLU."""
    rng = as_generator(rng)
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal(shape: tuple[int, ...], std: float = 0.02, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Plain Gaussian init with configurable standard deviation."""
    return as_generator(rng).normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
