"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write *module*'s parameters to an ``.npz`` archive at *path*."""
    np.savez(os.fspath(path), **module.state_dict())


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into *module* (strict)."""
    with np.load(os.fspath(path)) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
    return module
