"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write *module*'s parameters to an ``.npz`` archive at *path*."""
    np.savez(os.fspath(path), **module.state_dict())


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into *module* (strict).

    Every archive key must match a module parameter by name *and* shape.
    Validation happens before any parameter is written, so a mismatched
    archive (e.g. weights saved from a differently-sized architecture)
    raises a clear error naming the archive and the offending parameters
    while leaving *module* untouched — weights are never silently
    broadcast or partially overwritten.
    """
    path = os.fspath(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        kind = type(module).__name__
        raise type(exc)(
            f"cannot load {path!r} into {kind}: {exc}") from exc
    return module
