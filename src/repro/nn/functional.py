"""Composite differentiable functions built on the Tensor primitives.

Everything here is a pure function of :class:`~repro.nn.tensor.Tensor`
inputs; stateful building blocks live in :mod:`repro.nn.layers`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along *axis*.

    Implemented as ``exp(x - max(x)) / sum(exp(x - max(x)))`` with the max
    treated as a constant shift (its gradient contribution cancels).
    """
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along *axis*."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Scale rows of *x* to unit Euclidean norm."""
    norm = (x * x).sum(axis=axis, keepdims=True) + eps
    return x / norm**0.5


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between corresponding rows of *a* and *b*."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)


def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product of two ``(n, d)`` tensors, yielding ``(n,)``."""
    return (a * b).sum(axis=-1)


def euclidean_distance(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Row-wise Euclidean distance of two ``(n, d)`` tensors."""
    diff = a - b
    return ((diff * diff).sum(axis=-1) + eps) ** 0.5


def tanh(x: Tensor) -> Tensor:
    """Functional alias for :meth:`Tensor.tanh`."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Functional alias for :meth:`Tensor.sigmoid`."""
    return x.sigmoid()


def relu(x: Tensor) -> Tensor:
    """Functional alias for :meth:`Tensor.relu`."""
    return x.relu()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero a fraction *rate* of entries and rescale."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError(f"dropout rate must be < 1, got {rate}")
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * as_tensor(mask)
