"""First-order optimisers (SGD with momentum, Adam) and LR schedules."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser: holds parameters and implements ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with decoupled weight decay option."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update using accumulated gradients."""
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Copy of the optimiser state: step count, lr, first/second moments.

        Together with the model's ``state_dict`` and the shuffle RNG state
        this is everything needed to resume training bit-identically (see
        :mod:`repro.resilience.checkpoint`).
        """
        return {
            "t": self._t,
            "lr": self.lr,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (strict shape match).

        Validated against the managed parameters before anything is
        written, so a mismatched state (e.g. from a differently shaped
        model) raises without partially overwriting the moments.
        """
        moments_m = [np.asarray(m, dtype=np.float64) for m in state["m"]]
        moments_v = [np.asarray(v, dtype=np.float64) for v in state["v"]]
        if len(moments_m) != len(self.params) or len(moments_v) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(moments_m)}/{len(moments_v)} "
                f"moment arrays for {len(self.params)} parameters")
        for i, (param, m, v) in enumerate(zip(self.params, moments_m, moments_v)):
            if m.shape != param.data.shape or v.shape != param.data.shape:
                raise ValueError(
                    f"optimizer state shape mismatch at parameter {i}: "
                    f"param {param.data.shape}, m {m.shape}, v {v.shape}")
        self._t = int(state["t"])
        self.lr = float(state["lr"])
        self._m = [m.copy() for m in moments_m]
        self._v = [v.copy() for v in moments_v]


class StepLR:
    """Multiply the optimiser learning rate by *gamma* every *step_size* epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying the learning rate on boundaries."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Rescale gradients in-place so their global L2 norm is <= *max_norm*.

    Returns the pre-clipping norm, useful for monitoring training health.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
