"""Attention building blocks used by the subspace fusion network.

Two mechanisms from the paper:

* :class:`GlobalAttentionPooling` — Eq. 9: pools a sequence of hidden
  vectors into a single subspace vector via a learned context matrix.
* :func:`cross_subspace_attention` — Eqs. 10-11: mixes the other subspaces'
  vectors into a context vector, weighted by dot-product similarity.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concat, parameter, stack
from repro.nn import init as initializers
from repro.utils.rng import as_generator


class GlobalAttentionPooling(Module):
    """Pool ``(n, d)`` sentence vectors to a single ``(d_out,)`` vector.

    Implements the paper's Eq. 9, ``c_hat = m^k tanh(M h + b)``: hidden
    vectors are passed through a shared affine map ``M``/``b`` and a tanh,
    scored against a learned subspace query ``m^k`` to get attention
    weights, and averaged with those weights.
    """

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | int | None = None) -> None:
        generator = as_generator(rng)
        self.proj = Linear(in_dim, out_dim, rng=generator)
        self.query = parameter(initializers.normal((out_dim,), std=0.1, rng=generator),
                               name="attention_query")

    def forward(self, hidden: Tensor) -> Tensor:
        """*hidden* is ``(n, d_in)``; returns ``(d_out,)``."""
        transformed = self.proj(hidden).tanh()  # (n, out_dim)
        scores = transformed @ self.query  # (n,)
        weights = softmax(scores, axis=-1)  # (n,)
        return weights @ transformed  # (out_dim,)


def cross_subspace_attention(vectors: list[Tensor]) -> list[Tensor]:
    """Compute context vectors c_tilde_k (paper Eqs. 10-11).

    For each subspace ``k``, the other subspaces' vectors are combined with
    weights ``a_j = softmax_j(c_k . c_j)`` (j != k), giving a context vector
    that carries cross-subspace information.

    Parameters
    ----------
    vectors:
        One ``(d,)`` tensor per subspace.

    Returns
    -------
    list of ``(d,)`` context tensors, one per subspace. With K = 1 there is
    no "other" subspace; the context is a zero vector.
    """
    k_total = len(vectors)
    if k_total == 0:
        raise ValueError("cross_subspace_attention requires at least one subspace vector")
    contexts: list[Tensor] = []
    for k, anchor in enumerate(vectors):
        others = [vectors[j] for j in range(k_total) if j != k]
        if not others:
            contexts.append(Tensor(np.zeros_like(anchor.data)))
            continue
        stacked = stack(others, axis=0)  # (K-1, d)
        scores = stacked @ anchor  # (K-1,)
        weights = softmax(scores, axis=-1)
        contexts.append(weights @ stacked)
    return contexts


def fuse_with_context(vectors: list[Tensor]) -> list[Tensor]:
    """Concatenate each subspace vector with its attention context (Eq. 12).

    Returns one ``(2d,)`` tensor per subspace: ``c_k = [c_hat_k ; c_tilde_k]``.
    """
    contexts = cross_subspace_attention(vectors)
    return [concat([own, ctx], axis=0) for own, ctx in zip(vectors, contexts)]
