"""Loss functions: hinge/margin ranking (paper Eq. 14), BCE, CE, MSE."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor, as_tensor


def margin_ranking_loss(pos_distance: Tensor, neg_distance: Tensor,
                        margin: float = 1.0) -> Tensor:
    """Hinge contrastive loss from paper Eq. 14 (without the L2 term).

    For a triplet (p, q, q') annotated so the *positive* pair (p, q) should
    have the **larger** difference, the loss penalises orderings where the
    model's D(p, q) does not exceed D(p, q') by at least *margin*:

    ``mean(max(0, D(p, q') - D(p, q) + margin))``

    Parameters
    ----------
    pos_distance:
        Model distance of pairs annotated as *more different* — should end
        up larger.
    neg_distance:
        Model distance of pairs annotated as *less different*.
    margin:
        The epsilon slack in Eq. 14.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    return (neg_distance - pos_distance + margin).clip_min(0.0).mean()


def l2_regularization(params: list[Tensor], weight: float) -> Tensor:
    """``weight * sum(||theta||^2)`` — the lambda term of Eqs. 14 and 23."""
    if weight < 0:
        raise ValueError(f"regularization weight must be non-negative, got {weight}")
    total = as_tensor(0.0)
    for param in params:
        total = total + (param * param).sum()
    return total * weight


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Numerically stable BCE on raw scores (paper Eq. 23 likelihood term).

    Uses the log-sum-exp identity
    ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    target_t = as_tensor(targets)
    positive_part = logits.clip_min(0.0)
    softplus_term = ((-(logits.abs())).exp() + 1.0).log()
    return (positive_part - logits * target_t + softplus_term).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer *targets* under *logits*.

    *logits* is ``(n, classes)``; *targets* is an ``(n,)`` int array.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - as_tensor(target)
    return (diff * diff).mean()
