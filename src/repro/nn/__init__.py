"""A miniature numpy autograd framework.

This subpackage replaces the paper's PyTorch/DGL dependency with a small,
auditable reverse-mode autodiff engine: :class:`Tensor` with a recorded
operation graph, layer modules, optimisers, and the loss functions the
paper's models require (hinge contrastive Eq. 14, cross-entropy Eq. 23).
"""

from repro.nn.attention import (
    GlobalAttentionPooling,
    cross_subspace_attention,
    fuse_with_context,
)
from repro.nn.functional import (
    cosine_similarity,
    dot_rows,
    dropout,
    euclidean_distance,
    l2_normalize,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    l2_regularization,
    margin_ranking_loss,
    mse_loss,
)
from repro.nn.optim import SGD, Adam, Optimizer, StepLR, clip_grad_norm
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor, as_tensor, concat, parameter, stack

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "parameter",
    "Module", "Linear", "MLP", "Embedding", "Sequential", "Dropout",
    "Tanh", "ReLU", "Sigmoid",
    "GlobalAttentionPooling", "cross_subspace_attention", "fuse_with_context",
    "softmax", "log_softmax", "l2_normalize", "cosine_similarity",
    "dot_rows", "euclidean_distance", "tanh", "sigmoid", "relu", "dropout",
    "margin_ranking_loss", "l2_regularization", "cross_entropy",
    "binary_cross_entropy_with_logits", "mse_loss",
    "Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm",
    "save_module", "load_module",
]
