"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class — a thin wrapper around an
``numpy.ndarray`` that records the operations applied to it and can replay
them backwards to accumulate gradients. It supports exactly the operations
the paper's models need (dense layers, attention, GCN message passing,
contrastive and cross-entropy losses) while staying small enough to audit.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray), only on
  tensors created with ``requires_grad=True`` or downstream of one.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` sums gradients
  back down to each parent's shape.
* The graph is a DAG of ``Tensor`` nodes; :meth:`Tensor.backward` runs a
  topological sort and calls each node's locally stored backward closure.
* All data is stored as ``float64`` for numerical robustness at the small
  model scales used in this reproduction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ShapeError

ArrayLike = "np.ndarray | float | int | Sequence[float] | Tensor"


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* over broadcast dimensions so it matches *shape*."""
    if grad.shape == shape:
        return grad
    # Sum out prepended broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast gradient {grad.shape} to {shape}")
    return grad


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ndarray.
    requires_grad:
        Whether gradients should be accumulated for this leaf.
    parents:
        The tensors this one was computed from (internal use).
    backward_fn:
        Closure propagating ``self.grad`` into the parents (internal use).
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward_fn: Callable[[], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value; raises if not a single element."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ShapeError(f"item() requires a scalar tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad}{label})"

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Incoming gradient. Defaults to 1.0, which requires ``self`` to
            be a scalar (the usual "loss.backward()" case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    f"backward() without an explicit gradient requires a scalar, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn()

    @staticmethod
    def _result(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[["Tensor"], Callable[[], None]],
    ) -> "Tensor":
        """Build an op result, wiring the backward closure only if needed."""
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, parents=parents if requires else ())
        if requires:
            out._backward_fn = backward_fn(out)
        return out

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other_t.data

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad)
                if other_t.requires_grad:
                    other_t._accumulate(out.grad)

            return backward

        return Tensor._result(data, (self, other_t), make)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(-out.grad)

            return backward

        return Tensor._result(-self.data, (self,), make)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other_t.data

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * other_t.data)
                if other_t.requires_grad:
                    other_t._accumulate(out.grad * self.data)

            return backward

        return Tensor._result(data, (self, other_t), make)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other_t.data

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / other_t.data)
                if other_t.requires_grad:
                    other_t._accumulate(-out.grad * self.data / (other_t.data**2))

            return backward

        return Tensor._result(data, (self, other_t), make)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        data = self.data**exponent

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            return backward

        return Tensor._result(data, (self,), make)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product following ``numpy.matmul`` semantics (2-D case)."""
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data @ other_t.data

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                grad = out.grad
                if self.requires_grad:
                    if other_t.data.ndim == 1:
                        self._accumulate(np.outer(grad, other_t.data) if grad.ndim else grad * other_t.data)
                    else:
                        self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
                if other_t.requires_grad:
                    if self.data.ndim == 1:
                        other_t._accumulate(np.outer(self.data, grad) if grad.ndim else self.data * grad)
                    else:
                        other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

            return backward

        return Tensor._result(data, (self, other_t), make)

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        """Swap the last two axes (matrix transpose)."""
        data = np.swapaxes(self.data, -1, -2)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(np.swapaxes(out.grad, -1, -2))

            return backward

        return Tensor._result(data, (self,), make)

    @property
    def T(self) -> "Tensor":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a tensor viewing the same elements in a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original))

            return backward

        return Tensor._result(data, (self,), make)

    def __getitem__(self, index) -> "Tensor":
        """Differentiable indexing/slicing (supports integer-array gather)."""
        data = self.data[index]

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)

            return backward

        return Tensor._result(data, (self,), make)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Differentiable sum over *axis*."""
        data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.data.shape

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = (axis,) if isinstance(axis, int) else tuple(axis)
                    for ax in sorted(a % len(in_shape) for a in axes):
                        grad = np.expand_dims(grad, ax)
                self._accumulate(np.broadcast_to(grad, in_shape))

            return backward

        return Tensor._result(data, (self,), make)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean over *axis*."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Differentiable max; gradient flows to the (first) argmax entries."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if not self.requires_grad:
                    return
                grad_out = out.grad
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                if axis is not None and not keepdims:
                    grad_out = np.expand_dims(grad_out, axis)
                self._accumulate(mask * grad_out)

            return backward

        return Tensor._result(data, (self,), make)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * data)

            return backward

        return Tensor._result(data, (self,), make)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        data = np.log(self.data)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return backward

        return Tensor._result(data, (self,), make)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        data = np.tanh(self.data)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - data**2))

            return backward

        return Tensor._result(data, (self,), make)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        data = np.where(self.data >= 0, 1.0 / (1.0 + np.exp(-self.data)),
                        np.exp(self.data) / (1.0 + np.exp(self.data)))

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * data * (1.0 - data))

            return backward

        return Tensor._result(data, (self,), make)

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        data = self.data * mask

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return backward

        return Tensor._result(data, (self,), make)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at zero)."""
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * sign)

            return backward

        return Tensor._result(data, (self,), make)

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` — the hinge building block."""
        mask = self.data > minimum
        data = np.maximum(self.data, minimum)

        def make(out: "Tensor") -> Callable[[], None]:
            def backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return backward

        return Tensor._result(data, (self,), make)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation of *tensors* along *axis*."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make(out: Tensor) -> Callable[[], None]:
        def backward() -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(int(start), int(stop))
                    tensor._accumulate(out.grad[tuple(slicer)])

        return backward

    return Tensor._result(data, tuple(tensors), make)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking of equal-shaped *tensors* on a new axis."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def make(out: Tensor) -> Callable[[], None]:
        def backward() -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(out.grad, i, axis=axis))

        return backward

    return Tensor._result(data, tuple(tensors), make)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce *value* to a :class:`Tensor` (no-op if it already is one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def parameter(data: ArrayLike, name: str | None = None) -> Tensor:
    """Create a trainable leaf tensor."""
    return Tensor(data, requires_grad=True, name=name)


def no_grad_params(params: Iterable[Tensor]) -> None:
    """Zero the gradient buffers of *params* in place."""
    for param in params:
        param.zero_grad()
