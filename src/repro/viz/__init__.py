"""Dependency-free SVG chart rendering for the paper's figures."""

from repro.viz.svg import PALETTE, grouped_bars_svg, save_svg, scatter_svg

__all__ = ["scatter_svg", "grouped_bars_svg", "save_svg", "PALETTE"]
