"""Dependency-free SVG charts for the paper's figures.

matplotlib is not available offline, so the figure experiments render
their scatter/bar panels as standalone SVG files with this tiny writer.
Only the two chart types the paper needs are implemented: scatter plots
with an optional regression line (Figs. 3 and 5) and grouped bar charts
(Figs. 2 and 6).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Brand-neutral categorical palette (dark-on-light friendly).
PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5")


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


@dataclass
class _Canvas:
    width: int = 480
    height: int = 320
    margin: int = 48
    elements: list[str] = field(default_factory=list)

    def line(self, x1, y1, x2, y2, stroke="#444", width=1.0, dash="") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>')

    def circle(self, x, y, r, fill) -> None:
        self.elements.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}" '
            f'fill-opacity="0.75"/>')

    def rect(self, x, y, w, h, fill) -> None:
        self.elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}"/>')

    def text(self, x, y, content, size=11, anchor="middle", color="#222") -> None:
        self.elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-family="sans-serif">{_escape(str(content))}</text>')

    def render(self) -> str:
        body = "\n  ".join(self.elements)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'  <rect width="100%" height="100%" fill="white"/>\n'
                f'  {body}\n</svg>\n')


def _axes(canvas: _Canvas, title: str, x_label: str, y_label: str) -> None:
    m = canvas.margin
    canvas.line(m, canvas.height - m, canvas.width - m, canvas.height - m)
    canvas.line(m, m, m, canvas.height - m)
    canvas.text(canvas.width / 2, 20, title, size=13)
    canvas.text(canvas.width / 2, canvas.height - 10, x_label, size=11)
    canvas.text(14, canvas.height / 2, y_label, size=11)


def _scale(values: np.ndarray, lo_px: float, hi_px: float) -> np.ndarray:
    vmin, vmax = float(values.min()), float(values.max())
    if vmax - vmin < 1e-12:
        return np.full_like(values, (lo_px + hi_px) / 2.0)
    return lo_px + (values - vmin) / (vmax - vmin) * (hi_px - lo_px)


def scatter_svg(x: Sequence[float], y: Sequence[float],
                labels: Sequence[int] | None = None, title: str = "",
                x_label: str = "", y_label: str = "",
                trend: tuple[float, float] | None = None) -> str:
    """Render a scatter plot; *trend* is an optional (slope, intercept)
    line in data coordinates. *labels* colour points by group index."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"x and y must match, got {x.shape} vs {y.shape}")
    if x.size == 0:
        raise ValueError("cannot plot an empty scatter")
    canvas = _Canvas()
    m = canvas.margin
    _axes(canvas, title, x_label, y_label)
    xs = _scale(x, m + 6, canvas.width - m - 6)
    ys = _scale(y, canvas.height - m - 6, m + 6)
    groups = np.zeros(x.size, dtype=int) if labels is None else np.asarray(labels)
    for px, py, g in zip(xs, ys, groups):
        canvas.circle(px, py, 3.5, PALETTE[int(g) % len(PALETTE)])
    if trend is not None:
        slope, intercept = trend
        tx = np.array([x.min(), x.max()])
        ty = slope * tx + intercept
        # clip to data range so the line stays inside the axes
        ty = np.clip(ty, min(y.min(), ty.min()), max(y.max(), ty.max()))
        txp = _scale(np.concatenate([x, tx]), m + 6, canvas.width - m - 6)[-2:]
        typ = _scale(np.concatenate([y, ty]), canvas.height - m - 6, m + 6)[-2:]
        canvas.line(txp[0], typ[0], txp[1], typ[1], stroke="#d33",
                    width=1.6, dash="5,3")
    # axis extremes
    canvas.text(m, canvas.height - m + 14, f"{x.min():.3g}", size=9, anchor="start")
    canvas.text(canvas.width - m, canvas.height - m + 14, f"{x.max():.3g}",
                size=9, anchor="end")
    canvas.text(m - 4, canvas.height - m, f"{y.min():.3g}", size=9, anchor="end")
    canvas.text(m - 4, m + 4, f"{y.max():.3g}", size=9, anchor="end")
    return canvas.render()


def grouped_bars_svg(group_names: Sequence[str], series: dict[str, Sequence[float]],
                     title: str = "", y_label: str = "") -> str:
    """Render grouped bars: one cluster per group, one bar per series."""
    if not series:
        raise ValueError("series must be non-empty")
    names = list(group_names)
    matrix = np.array([list(values) for values in series.values()], dtype=np.float64)
    if matrix.shape[1] != len(names):
        raise ValueError(
            f"every series needs {len(names)} values, got shape {matrix.shape}")
    canvas = _Canvas(width=max(480, 90 * len(names) + 160))
    m = canvas.margin
    _axes(canvas, title, "", y_label)
    top = float(max(matrix.max(), 1e-9))
    plot_w = canvas.width - 2 * m
    cluster_w = plot_w / len(names)
    bar_w = min(22.0, cluster_w * 0.8 / matrix.shape[0])
    for gi, name in enumerate(names):
        cluster_x = m + gi * cluster_w + cluster_w / 2
        start = cluster_x - bar_w * matrix.shape[0] / 2
        for si in range(matrix.shape[0]):
            value = matrix[si, gi]
            h = (canvas.height - 2 * m) * value / top
            canvas.rect(start + si * bar_w, canvas.height - m - h, bar_w - 1.5,
                        h, PALETTE[si % len(PALETTE)])
        canvas.text(cluster_x, canvas.height - m + 14, name, size=10)
    # legend
    lx = m
    for si, label in enumerate(series):
        canvas.rect(lx, 28, 10, 10, PALETTE[si % len(PALETTE)])
        canvas.text(lx + 14, 37, label, size=10, anchor="start")
        lx += 14 + 7 * len(label) + 16
    canvas.text(m - 4, m + 4, f"{top:.3g}", size=9, anchor="end")
    return canvas.render()


def save_svg(svg: str, path: str | os.PathLike) -> None:
    """Write an SVG document to *path*."""
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write(svg)
