"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or
a ready :class:`numpy.random.Generator`. :func:`as_generator` normalises
both into a ``Generator`` so downstream code never touches the legacy
global numpy RNG, keeping all experiments reproducible end to end.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything accepted as a seed: an int, a ready generator, or ``None``
#: for a fresh nondeterministic stream.
SeedLike: TypeAlias = int | np.random.Generator | None


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a fresh nondeterministic generator, an ``int`` yields a
    seeded PCG64 generator, and an existing ``Generator`` is passed through
    unchanged (so a caller can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Split *seed* into *count* independent child generators.

    Children are derived through ``Generator.spawn`` so that streams are
    statistically independent yet fully determined by the parent seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return as_generator(seed).spawn(count)


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``self.rng``.

    Subclasses set ``self._seed`` (int, Generator, or None) in ``__init__``;
    the ``rng`` property materialises the generator on first use so that
    pickling/config round-trips stay cheap.
    """

    _seed: SeedLike = None
    _rng: np.random.Generator | None = None

    @property
    def rng(self) -> np.random.Generator:
        """The component's private random generator."""
        if self._rng is None:
            self._rng = as_generator(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator, e.g. between repeated experiment runs."""
        self._seed = seed
        self._rng = None
