"""Shared utilities: seeded RNG management, validation helpers, and IO."""

from repro.utils.rng import RngMixin, as_generator, spawn_generators
from repro.utils.validation import (
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "RngMixin",
    "as_generator",
    "spawn_generators",
    "check_fitted",
    "check_in_range",
    "check_positive",
    "check_probability",
]
