"""Small argument-validation helpers used across the library.

They exist to turn silent numerical nonsense (negative dimensions,
probabilities outside [0, 1], use-before-fit) into immediate, descriptive
exceptions, following the "errors should never pass silently" principle.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NotFittedError


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless *value* is positive (or >= 0 if not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_fitted(model: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` if *attribute* is missing or ``None``.

    Conventionally fitted state carries a trailing underscore
    (``embeddings_``, ``components_``), mirroring scikit-learn.
    """
    if getattr(model, attribute, None) is None:
        raise NotFittedError(
            f"{type(model).__name__} is not fitted yet: call fit() before "
            f"using an estimator method that relies on '{attribute}'"
        )
