"""Fixed-size neighbourhood sampling for graph convolution.

NPRec (like KGCN) aggregates a fixed number of neighbours K per node per
layer; nodes with fewer neighbours are sampled with replacement, nodes
with none receive an empty sample (their aggregation falls back to the
self vector alone).
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero import HeterogeneousGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

_VIEWS = ("interest", "influence", "two_way", "all")


def sample_neighbors(graph: HeterogeneousGraph, index: int, k: int,
                     view: str = "all",
                     rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Sample *k* neighbour indices of node *index* under *view*.

    Returns an int array of length ``k`` (with replacement when the true
    neighbourhood is smaller), or length 0 for isolated nodes.
    """
    check_positive("k", k)
    if view not in _VIEWS:
        raise ValueError(f"view must be one of {_VIEWS}, got {view!r}")
    if view == "interest":
        neighbours = graph.interest_neighbors(index)
    elif view == "influence":
        neighbours = graph.influence_neighbors(index)
    elif view == "two_way":
        neighbours = graph.two_way_neighbors(index)
    else:
        neighbours = graph.all_neighbors(index)
    if not neighbours:
        return np.empty(0, dtype=int)
    rng = as_generator(rng)
    if len(neighbours) >= k:
        picked = rng.choice(len(neighbours), size=k, replace=False)
    else:
        picked = rng.choice(len(neighbours), size=k, replace=True)
    return np.asarray([neighbours[i] for i in picked], dtype=int)


def sample_multi_hop(graph: HeterogeneousGraph, index: int, k: int, hops: int,
                     view: str = "all",
                     rng: np.random.Generator | int | None = None) -> list[np.ndarray]:
    """Layered receptive field: hop h holds up to ``k**h`` sampled indices.

    The first element is ``[index]`` itself; element h contains the
    sampled neighbours of element h-1 (flattened), mirroring the KGCN
    receptive-field construction.
    """
    check_positive("hops", hops)
    rng = as_generator(rng)
    layers: list[np.ndarray] = [np.asarray([index], dtype=int)]
    for _ in range(hops):
        frontier: list[int] = []
        for node in layers[-1]:
            sampled = sample_neighbors(graph, int(node), k, view=view, rng=rng)
            if sampled.size == 0:  # keep the receptive field aligned
                sampled = np.full(k, int(node), dtype=int)
            frontier.extend(int(s) for s in sampled)
        layers.append(np.asarray(frontier, dtype=int))
    return layers
