"""Heterogeneous academic network G = (E, R, T_E, T_R) from Sec. IV-A.

Seven entity types and seven relation types, with the citation relation
treated as the single **one-way** (asymmetric) association: ``p cites q``
sends interest from p and influence from q, while the other six relations
are two-way. The graph exposes exactly the neighbourhood views NPRec
needs:

* ``interest_neighbors(p)`` — two-way neighbours plus papers *p cites*
  (the paper's N-with-left-arrow);
* ``influence_neighbors(p)`` — two-way neighbours plus papers *citing p*
  (the paper's N-with-right-arrow).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import GraphError

#: The seven entity types of T_E.
ENTITY_TYPES = (
    "paper", "author", "affiliation", "venue", "category", "keyword", "year",
)

#: The seven relation types of T_R; ``cites`` is the only one-way relation.
RELATION_TYPES = (
    "cites",            # paper -> paper           (one-way)
    "written_by",       # paper <-> author
    "published_in",     # paper <-> venue
    "published_year",   # paper <-> year
    "affiliated_with",  # author <-> affiliation
    "has_keyword",      # paper <-> keyword
    "classified_as",    # paper <-> category
)

ONE_WAY_RELATIONS = frozenset({"cites"})


@dataclass(frozen=True)
class EntityKey:
    """Typed identifier of a graph entity."""

    type: str
    id: str

    def __post_init__(self) -> None:
        if self.type not in ENTITY_TYPES:
            raise GraphError(f"unknown entity type {self.type!r}")


class HeterogeneousGraph:
    """Mutable-at-build, index-based heterogeneous graph.

    Entities are registered first (each gets a dense integer index), then
    edges are added by relation type. Two-way relations automatically
    index both directions; ``cites`` indexes the two directions separately
    so the asymmetric neighbourhood views stay distinguishable.
    """

    def __init__(self) -> None:
        self._index: dict[EntityKey, int] = {}
        self._keys: list[EntityKey] = []
        self._two_way: dict[int, list[tuple[int, str]]] = defaultdict(list)
        self._cites_out: dict[int, list[int]] = defaultdict(list)
        self._cites_in: dict[int, list[int]] = defaultdict(list)
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_entity(self, entity_type: str, entity_id: str) -> int:
        """Register an entity (idempotent); returns its dense index."""
        key = EntityKey(entity_type, entity_id)
        existing = self._index.get(key)
        if existing is not None:
            return existing
        index = len(self._keys)
        self._index[key] = index
        self._keys.append(key)
        return index

    def add_edge(self, relation: str, source: EntityKey, target: EntityKey) -> None:
        """Add one typed edge; both endpoints must be registered."""
        if relation not in RELATION_TYPES:
            raise GraphError(f"unknown relation type {relation!r}")
        src = self._index.get(source)
        dst = self._index.get(target)
        if src is None or dst is None:
            missing = source if src is None else target
            raise GraphError(f"edge endpoint not registered: {missing}")
        if relation in ONE_WAY_RELATIONS:
            if source.type != "paper" or target.type != "paper":
                raise GraphError("cites edges must connect paper entities")
            self._cites_out[src].append(dst)
            self._cites_in[dst].append(src)
        else:
            self._two_way[src].append((dst, relation))
            self._two_way[dst].append((src, relation))
        self._edge_count += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def index_of(self, entity_type: str, entity_id: str) -> int:
        """Dense index of an entity; raises :class:`GraphError` if absent."""
        key = EntityKey(entity_type, entity_id)
        index = self._index.get(key)
        if index is None:
            raise GraphError(f"entity not in graph: {key}")
        return index

    def __contains__(self, key: tuple[str, str]) -> bool:
        entity_type, entity_id = key
        return EntityKey(entity_type, entity_id) in self._index

    def key_of(self, index: int) -> EntityKey:
        """Inverse of :meth:`index_of`."""
        return self._keys[index]

    @property
    def num_entities(self) -> int:
        """Total registered entities."""
        return len(self._keys)

    @property
    def num_edges(self) -> int:
        """Total edges added (two-way edges count once)."""
        return self._edge_count

    def entities_of_type(self, entity_type: str) -> list[int]:
        """Indices of all entities of *entity_type*."""
        if entity_type not in ENTITY_TYPES:
            raise GraphError(f"unknown entity type {entity_type!r}")
        return [i for i, key in enumerate(self._keys) if key.type == entity_type]

    # ------------------------------------------------------------------
    # Neighbourhood views (Sec. IV-A)
    # ------------------------------------------------------------------
    def two_way_neighbors(self, index: int) -> list[int]:
        """Neighbours over the six symmetric relations."""
        return [dst for dst, _ in self._two_way.get(index, [])]

    def cited_papers(self, index: int) -> list[int]:
        """Papers this paper cites (out-citations)."""
        return list(self._cites_out.get(index, []))

    def citing_papers(self, index: int) -> list[int]:
        """Papers citing this paper (in-citations)."""
        return list(self._cites_in.get(index, []))

    def interest_neighbors(self, index: int) -> list[int]:
        """Two-way neighbours + cited papers — the interest view of p."""
        return self.two_way_neighbors(index) + self.cited_papers(index)

    def influence_neighbors(self, index: int) -> list[int]:
        """Two-way neighbours + citing papers — the influence view of p."""
        return self.two_way_neighbors(index) + self.citing_papers(index)

    def all_neighbors(self, index: int) -> list[int]:
        """Every neighbour regardless of direction."""
        return (self.two_way_neighbors(index)
                + self.cited_papers(index) + self.citing_papers(index))

    # ------------------------------------------------------------------
    # Persistence (repro.serve artifact store)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serialisable snapshot preserving indices and adjacency
        order exactly (adjacency order matters: neighbourhood sampling
        draws positions into these lists)."""
        return {
            "entities": [[key.type, key.id] for key in self._keys],
            "two_way": {str(src): [[dst, rel] for dst, rel in neighbours]
                        for src, neighbours in self._two_way.items()},
            "cites_out": {str(src): list(dsts)
                          for src, dsts in self._cites_out.items()},
            "cites_in": {str(dst): list(srcs)
                         for dst, srcs in self._cites_in.items()},
            "edge_count": self._edge_count,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "HeterogeneousGraph":
        """Rebuild a graph saved by :meth:`to_payload`, bit-identically:
        same entity indices, same adjacency-list ordering."""
        graph = cls()
        for entity_type, entity_id in payload["entities"]:
            graph.add_entity(entity_type, entity_id)
        for src, neighbours in payload["two_way"].items():
            graph._two_way[int(src)] = [(int(dst), rel)
                                        for dst, rel in neighbours]
        for src, dsts in payload["cites_out"].items():
            graph._cites_out[int(src)] = [int(d) for d in dsts]
        for dst, srcs in payload["cites_in"].items():
            graph._cites_in[int(dst)] = [int(s) for s in srcs]
        graph._edge_count = int(payload["edge_count"])
        return graph
