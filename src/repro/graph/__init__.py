"""Heterogeneous academic network substrate (Sec. IV-A)."""

from repro.graph.builder import attach_paper_to_network, build_academic_network
from repro.graph.hetero import (
    ENTITY_TYPES,
    ONE_WAY_RELATIONS,
    RELATION_TYPES,
    EntityKey,
    HeterogeneousGraph,
)
from repro.graph.sampling import sample_multi_hop, sample_neighbors

__all__ = [
    "HeterogeneousGraph", "EntityKey",
    "ENTITY_TYPES", "RELATION_TYPES", "ONE_WAY_RELATIONS",
    "build_academic_network", "attach_paper_to_network",
    "sample_neighbors", "sample_multi_hop",
]
