"""Building the heterogeneous academic network from a corpus.

The builder takes the *training* paper set (papers published before the
split year); citation edges pointing at papers outside the set are
dropped, matching the paper's protocol where new papers join the graph
without citation history (the cold-start condition NPRec addresses).
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Iterable

from repro import obs
from repro.data.corpus import Corpus
from repro.data.schema import Paper
from repro.errors import GraphError
from repro.graph.hetero import ENTITY_TYPES, EntityKey, HeterogeneousGraph


def build_academic_network(corpus: Corpus, papers: Iterable[Paper] | None = None,
                           include_citations: bool = True,
                           citation_whitelist: set[str] | None = None) -> HeterogeneousGraph:
    """Construct the 7-type academic network over *papers*.

    Parameters
    ----------
    corpus:
        Source of author metadata (affiliations).
    papers:
        Paper subset to include; defaults to the whole corpus.
    include_citations:
        Whether to add the asymmetric ``cites`` edges (disabled for the
        NPRec+SC ablation which drops network structure entirely).
    citation_whitelist:
        When given, citation edges are added only between papers whose ids
        are *both* in this set. This is how new (test) papers join the
        graph with their metadata but without citation history — the
        cold-start condition of Sec. IV.
    """
    graph = HeterogeneousGraph()
    paper_list = list(papers) if papers is not None else corpus.papers
    included = {p.id for p in paper_list}
    edge_tally: _TallyCounter[str] = _TallyCounter()

    with obs.trace("graph.build", papers=len(paper_list),
                   include_citations=include_citations) as span:
        for paper in paper_list:
            graph.add_entity("paper", paper.id)
        for paper in paper_list:
            paper_key = EntityKey("paper", paper.id)
            for author_id in paper.authors:
                graph.add_entity("author", author_id)
                graph.add_edge("written_by", paper_key, EntityKey("author", author_id))
                edge_tally["written_by"] += 1
                author = corpus.get_author(author_id) if corpus.authors else None
                if author is not None and author.affiliation:
                    graph.add_entity("affiliation", author.affiliation)
                    graph.add_edge("affiliated_with", EntityKey("author", author_id),
                                   EntityKey("affiliation", author.affiliation))
                    edge_tally["affiliated_with"] += 1
            if paper.venue is not None:
                graph.add_entity("venue", paper.venue)
                graph.add_edge("published_in", paper_key, EntityKey("venue", paper.venue))
                edge_tally["published_in"] += 1
            year_id = str(paper.year)
            graph.add_entity("year", year_id)
            graph.add_edge("published_year", paper_key, EntityKey("year", year_id))
            edge_tally["published_year"] += 1
            for keyword in paper.keywords:
                graph.add_entity("keyword", keyword)
                graph.add_edge("has_keyword", paper_key, EntityKey("keyword", keyword))
                edge_tally["has_keyword"] += 1
            if paper.category_path:
                leaf = paper.category_path[-1]
                graph.add_entity("category", leaf)
                graph.add_edge("classified_as", paper_key, EntityKey("category", leaf))
                edge_tally["classified_as"] += 1
            if include_citations:
                allowed = citation_whitelist is None or paper.id in citation_whitelist
                for ref in paper.references:
                    if ref in included and allowed and (
                            citation_whitelist is None or ref in citation_whitelist):
                        graph.add_edge("cites", paper_key, EntityKey("paper", ref))
                        edge_tally["cites"] += 1
        span.set("entities", graph.num_entities)
        span.set("edges", graph.num_edges)
        if obs.is_enabled():
            for entity_type in ENTITY_TYPES:
                obs.gauge("graph.nodes", len(graph.entities_of_type(entity_type)),
                          type=entity_type)
            for relation, n_edges in edge_tally.items():
                obs.gauge("graph.edges", n_edges, relation=relation)
    return graph


def attach_paper_to_network(graph: HeterogeneousGraph, paper: Paper,
                            author_affiliations: dict[str, str] | None = None
                            ) -> int:
    """Attach one newly published paper to an existing network in place.

    The incremental counterpart of :func:`build_academic_network` for the
    serving path (Sec. IV-E cold start): the paper joins with its metadata
    relations only — authors, venue, year, keywords, category — and never
    with citation edges, exactly how a new paper enters the graph at
    training time. Unknown metadata entities (novel keywords, first-time
    authors) are registered on the fly.

    Parameters
    ----------
    graph:
        The network to mutate.
    paper:
        The new paper; its id must not already be in the graph.
    author_affiliations:
        Optional ``author id -> affiliation`` map (from the corpus) so
        known affiliations keep their ``affiliated_with`` edges.

    Returns
    -------
    The dense entity index assigned to the new paper node.
    """
    if ("paper", paper.id) in graph:
        raise GraphError(f"paper {paper.id!r} is already in the graph")
    affiliations = author_affiliations or {}
    index = graph.add_entity("paper", paper.id)
    paper_key = EntityKey("paper", paper.id)
    for author_id in paper.authors:
        graph.add_entity("author", author_id)
        graph.add_edge("written_by", paper_key, EntityKey("author", author_id))
        affiliation = affiliations.get(author_id)
        if affiliation:
            graph.add_entity("affiliation", affiliation)
            graph.add_edge("affiliated_with", EntityKey("author", author_id),
                           EntityKey("affiliation", affiliation))
    if paper.venue is not None:
        graph.add_entity("venue", paper.venue)
        graph.add_edge("published_in", paper_key, EntityKey("venue", paper.venue))
    year_id = str(paper.year)
    graph.add_entity("year", year_id)
    graph.add_edge("published_year", paper_key, EntityKey("year", year_id))
    for keyword in paper.keywords:
        graph.add_entity("keyword", keyword)
        graph.add_edge("has_keyword", paper_key, EntityKey("keyword", keyword))
    if paper.category_path:
        leaf = paper.category_path[-1]
        graph.add_entity("category", leaf)
        graph.add_edge("classified_as", paper_key, EntityKey("category", leaf))
    obs.count("graph.papers_attached")
    return index
