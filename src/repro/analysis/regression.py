"""Simple linear regression — the Fig. 3 trend-line machinery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept`` plus fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: "Sequence[float] | float") -> np.ndarray:
        """Evaluate the fitted line at *x*."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_regression(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares on one predictor."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two points")
    x_mean, y_mean = x.mean(), y.mean()
    ss_x = ((x - x_mean) ** 2).sum()
    if ss_x == 0:
        return LinearFit(0.0, float(y_mean), 0.0)
    slope = float(((x - x_mean) * (y - y_mean)).sum() / ss_x)
    intercept = float(y_mean - slope * x_mean)
    residual = y - (slope * x + intercept)
    ss_total = ((y - y_mean) ** 2).sum()
    r_squared = 0.0 if ss_total == 0 else float(1.0 - (residual**2).sum() / ss_total)
    return LinearFit(slope, intercept, r_squared)
