"""Evaluation metrics: Spearman correlation and ranking metrics.

Implements exactly the measures the paper reports: Spearman's rho for the
difference-vs-citation studies (Tab. I, Fig. 2/3), and nDCG@k / MRR / MAP
for the recommendation experiments (Tab. IV-VIII, Fig. 6). The nDCG
definition matches Sec. IV-D: relevance 5 for actually-cited candidates,
0 otherwise, with ``IDCG`` computed over the user's true citations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Relevance assigned to a truly cited paper ("we set rel_i = 5 based on
#: experience").
CITED_RELEVANCE = 5.0


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Average ranks of *values* (1-based, ties share the mean rank)."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values))
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman's rank correlation coefficient between two sequences."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two observations")
    ra, rb = rankdata(a), rankdata(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denominator = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denominator == 0:
        return 0.0
    return float((ra * rb).sum() / denominator)


def dcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of the first *k* relevances."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevances = np.asarray(relevances, dtype=np.float64)[:k]
    if relevances.size == 0:
        return 0.0
    discounts = np.log2(np.arange(2, relevances.size + 2))
    return float((relevances / discounts).sum())


def ndcg_at_k(ranked_ids: Sequence[str], relevant_ids: set[str], k: int) -> float:
    """nDCG@k as defined in Sec. IV-D.

    Parameters
    ----------
    ranked_ids:
        Candidate ids sorted by model score, best first.
    relevant_ids:
        Ids the user actually cited.
    k:
        Cutoff.
    """
    if not relevant_ids:
        raise ValueError("relevant_ids must be non-empty for nDCG")
    gains = [CITED_RELEVANCE if pid in relevant_ids else 0.0 for pid in ranked_ids]
    ideal = [CITED_RELEVANCE] * len(relevant_ids)
    idcg = dcg_at_k(ideal, len(ideal))
    return dcg_at_k(gains, k) / idcg


def reciprocal_rank(ranked_ids: Sequence[str], relevant_ids: set[str]) -> float:
    """1/rank of the first relevant item (0 when none appears)."""
    for i, pid in enumerate(ranked_ids, start=1):
        if pid in relevant_ids:
            return 1.0 / i
    return 0.0


def average_precision(ranked_ids: Sequence[str], relevant_ids: set[str]) -> float:
    """Mean of precision@hit over all relevant items (AP)."""
    if not relevant_ids:
        raise ValueError("relevant_ids must be non-empty for AP")
    hits = 0
    total = 0.0
    for i, pid in enumerate(ranked_ids, start=1):
        if pid in relevant_ids:
            hits += 1
            total += hits / i
    return total / len(relevant_ids)


def mean_metric(per_user_values: Sequence[float]) -> float:
    """Average a per-user metric, guarding against empty input."""
    values = np.asarray(per_user_values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("no per-user values to average")
    return float(values.mean())


def precision_at_k(ranked_ids: Sequence[str], relevant_ids: set[str], k: int) -> float:
    """Fraction of the top-*k* candidates that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top = list(ranked_ids)[:k]
    if not top:
        return 0.0
    return sum(1 for pid in top if pid in relevant_ids) / len(top)
