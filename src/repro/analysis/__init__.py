"""Evaluation machinery: metrics, correlation studies, regression."""

from repro.analysis.correlation import (
    OutlierCitationStudy,
    clustered_outlier_scores,
    normalize_scores,
    outlier_citation_study,
    score_citation_correlation,
)
from repro.analysis.metrics import (
    CITED_RELEVANCE,
    average_precision,
    dcg_at_k,
    mean_metric,
    ndcg_at_k,
    precision_at_k,
    rankdata,
    reciprocal_rank,
    spearman_correlation,
)
from repro.analysis.regression import LinearFit, linear_regression

__all__ = [
    "spearman_correlation", "rankdata",
    "dcg_at_k", "ndcg_at_k", "reciprocal_rank", "average_precision",
    "precision_at_k", "mean_metric", "CITED_RELEVANCE",
    "LinearFit", "linear_regression",
    "OutlierCitationStudy", "outlier_citation_study",
    "clustered_outlier_scores", "normalize_scores",
    "score_citation_correlation",
]
