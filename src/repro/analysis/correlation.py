"""Outlier-vs-citation correlation studies (Sec. III-C/E/F/G machinery).

The paper quantifies a paper's *difference* inside a subspace as its Local
Outlier Factor among "closely related papers", where relatedness comes
from Gaussian-mixture clustering of the subspace embeddings (component
count by BIC). This module packages that pipeline and the Spearman
comparison against citation ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.metrics import spearman_correlation
from repro.analysis.regression import LinearFit, linear_regression
from repro.cluster.gmm import select_components_bic
from repro.cluster.lof import local_outlier_factor


def clustered_outlier_scores(embeddings: np.ndarray, lof_k: int = 10,
                             max_components: int = 6,
                             seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """LOF of each row among its GMM cluster peers.

    Clusters with too few members for a meaningful neighbourhood fall back
    to the global point set, so every paper receives a score.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    n = embeddings.shape[0]
    if n < 3:
        raise ValueError("need at least three papers for outlier analysis")
    mixture = select_components_bic(embeddings, max_components=max_components, seed=seed)
    labels = mixture.predict(embeddings)
    scores = np.zeros(n)
    global_scores: np.ndarray | None = None
    for cluster in np.unique(labels):
        members = np.where(labels == cluster)[0]
        if len(members) >= max(4, lof_k // 2 + 2):
            scores[members] = local_outlier_factor(
                embeddings[members], k=min(lof_k, len(members) - 1)
            )
        else:
            if global_scores is None:
                global_scores = local_outlier_factor(embeddings, k=min(lof_k, n - 1))
            scores[members] = global_scores[members]
    return scores


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Min-max scale to [0, 1] (constant input maps to zeros)."""
    scores = np.asarray(scores, dtype=np.float64)
    low, high = scores.min(), scores.max()
    if high - low < 1e-12:
        return np.zeros_like(scores)
    return (scores - low) / (high - low)


@dataclass(frozen=True)
class OutlierCitationStudy:
    """Result of one difference-vs-citation analysis.

    Attributes
    ----------
    outlier_scores:
        Normalised LOF per paper (the paper's Fig. 3 vertical axis).
    citations:
        Ground-truth citation counts.
    spearman:
        Rank correlation between the two (Tab. I cells).
    trend:
        Least-squares line of score on log1p(citations) (Fig. 3 lines).
    """

    outlier_scores: np.ndarray
    citations: np.ndarray
    spearman: float
    trend: LinearFit


def outlier_citation_study(embeddings: np.ndarray, citations: Sequence[int],
                           lof_k: int = 10,
                           seed: int | np.random.Generator | None = 0) -> OutlierCitationStudy:
    """Run the full GMM -> LOF -> Spearman pipeline for one subspace."""
    citations = np.asarray(citations, dtype=np.float64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.shape[0] != citations.shape[0]:
        raise ValueError(
            f"{embeddings.shape[0]} embeddings but {citations.shape[0]} citation counts"
        )
    raw = clustered_outlier_scores(embeddings, lof_k=lof_k, seed=seed)
    scores = normalize_scores(raw)
    rho = spearman_correlation(scores, citations)
    trend = linear_regression(np.log1p(citations), scores)
    return OutlierCitationStudy(scores, citations, rho, trend)


def score_citation_correlation(scores: Sequence[float], citations: Sequence[int]) -> float:
    """Spearman rho between arbitrary quality scores and citations.

    Used for the baseline rows of Tab. I, where CLT/CSJ/HP produce scalar
    quality scores directly rather than embeddings.
    """
    return spearman_correlation(scores, citations)
