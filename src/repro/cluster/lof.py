"""Local Outlier Factor (Breunig et al., SIGMOD 2000) [32].

The paper uses LOF over subspace embeddings as the *difference score* of a
paper: the more a paper's embedding deviates from the local density of its
neighbours, the more different (novel) the paper is.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def _pairwise_distances(data: np.ndarray) -> np.ndarray:
    # Centre first: the ||x||^2 + ||y||^2 - 2xy expansion loses precision
    # catastrophically when the data sits far from the origin, and LOF
    # should be translation-invariant anyway.
    data = data - data.mean(axis=0)
    squared = (data**2).sum(axis=1)
    gram = data @ data.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(np.maximum(d2, 0.0))


def local_outlier_factor(data: np.ndarray, k: int = 10) -> np.ndarray:
    """LOF score per row of *data*; > 1 means locally sparser than peers.

    Parameters
    ----------
    data:
        ``(n, d)`` embedding matrix.
    k:
        Neighbourhood size (``MinPts``). Clamped to ``n - 1``.

    Returns
    -------
    ``(n,)`` array of LOF values. Degenerate cases (duplicate points with
    zero reach distance) score 1.0, i.e. perfectly inlying.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected 2-D data, got shape {data.shape}")
    n = data.shape[0]
    if n < 2:
        raise ValueError("LOF requires at least two points")
    check_positive("k", k)
    k = min(k, n - 1)

    distances = _pairwise_distances(data)
    # k nearest neighbours of each point (excluding itself)
    order = np.argsort(distances, axis=1)
    neighbours = order[:, 1:k + 1]
    k_distance = distances[np.arange(n), neighbours[:, -1]]

    # reachability distance: max(k-distance(neighbour), d(point, neighbour))
    reach = np.maximum(k_distance[neighbours], distances[np.arange(n)[:, None], neighbours])
    lrd_denominator = reach.mean(axis=1)
    with np.errstate(divide="ignore"):
        lrd = np.where(lrd_denominator > 0, 1.0 / lrd_denominator, np.inf)

    with np.errstate(invalid="ignore", divide="ignore"):
        ratios = lrd[neighbours] / lrd[:, None]               # (n, k)
        # inf/inf -> duplicates everywhere; define as perfectly inlying
        ratios = np.where(np.isfinite(ratios), ratios, 1.0)
        return ratios.mean(axis=1)


def normalized_lof(data: np.ndarray, k: int = 10) -> np.ndarray:
    """LOF scaled to [0, 1] by min-max — the paper's Fig. 3 vertical axis."""
    scores = local_outlier_factor(data, k=k)
    low, high = scores.min(), scores.max()
    if high - low < 1e-12:
        return np.zeros_like(scores)
    return (scores - low) / (high - low)
