"""K-means clustering (used to initialise Gaussian mixtures)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


def kmeans_plus_plus(data: np.ndarray, k: int,
                     rng: np.random.Generator | int | None = None) -> np.ndarray:
    """k-means++ seeding: spread initial centres by D^2 sampling."""
    rng = as_generator(rng)
    n = data.shape[0]
    centres = [data[int(rng.integers(n))]]
    for _ in range(1, k):
        distances = np.min(
            [np.sum((data - centre) ** 2, axis=1) for centre in centres], axis=0
        )
        total = distances.sum()
        if total <= 0:  # all points identical / already covered
            centres.append(data[int(rng.integers(n))])
            continue
        centres.append(data[int(rng.choice(n, p=distances / total))])
    return np.stack(centres)


class KMeans:
    """Lloyd's algorithm with k-means++ init.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    max_iter:
        Iteration budget.
    tol:
        Stop when centroid movement falls below this threshold.
    seed:
        Seeding randomness.
    """

    def __init__(self, n_clusters: int, max_iter: int = 100, tol: float = 1e-6,
                 seed: int | np.random.Generator | None = 0) -> None:
        check_positive("n_clusters", n_clusters)
        check_positive("max_iter", max_iter)
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self._seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster *data* of shape ``(n, d)``."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {data.shape}")
        if data.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} points, got {data.shape[0]}"
            )
        rng = as_generator(self._seed)
        centres = kmeans_plus_plus(data, self.n_clusters, rng)
        labels = np.zeros(data.shape[0], dtype=int)
        for _ in range(self.max_iter):
            distances = ((data[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            new_centres = centres.copy()
            for j in range(self.n_clusters):
                members = data[labels == j]
                if len(members):
                    new_centres[j] = members.mean(axis=0)
                else:  # re-seed an empty cluster at the farthest point
                    new_centres[j] = data[int(distances.min(axis=1).argmax())]
            shift = float(np.abs(new_centres - centres).max())
            centres = new_centres
            if shift < self.tol:
                break
        self.centers_ = centres
        self.labels_ = labels
        self.inertia_ = float(((data - centres[labels]) ** 2).sum())
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign each row of *data* to its nearest centre."""
        if self.centers_ is None:
            raise RuntimeError("KMeans.fit must be called before predict()")
        data = np.asarray(data, dtype=np.float64)
        distances = ((data[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)
