"""Exact-gradient t-SNE (van der Maaten & Hinton, 2008) [50].

Only used for 2-D visualisation coordinates (Figs. 3 and 5); the small
per-experiment sample sizes make the O(n^2) exact gradient plenty fast.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


def _conditional_probabilities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    """Binary-search per-point bandwidths to hit the target perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 1e-20, 1e20
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(64):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = exp_row / total
            entropy = -np.sum(p[p > 0] * np.log(p[p > 0]))
            if abs(entropy - target_entropy) < 1e-5:
                break
            if entropy > target_entropy:
                beta_lo = beta
                beta = beta * 2 if beta_hi >= 1e20 else (beta + beta_hi) / 2
            else:
                beta_hi = beta
                beta = beta / 2 if beta_lo <= 1e-20 else (beta + beta_lo) / 2
        probabilities[i] = exp_row / max(total, 1e-12)
        probabilities[i, i] = 0.0
    return probabilities


def tsne(data: np.ndarray, n_components: int = 2, perplexity: float = 15.0,
         n_iter: int = 300, learning_rate: float = 100.0,
         seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Embed *data* ``(n, d)`` into ``(n, n_components)`` with t-SNE.

    Standard recipe: symmetrised conditional probabilities with early
    exaggeration for the first quarter of the iterations, Student-t
    low-dimensional kernel, momentum gradient descent.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected 2-D data, got shape {data.shape}")
    n = data.shape[0]
    check_positive("perplexity", perplexity)
    check_positive("n_iter", n_iter)
    if n < 3:
        raise ValueError("t-SNE requires at least three points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    squared = (data**2).sum(axis=1)
    d2 = np.maximum(squared[:, None] + squared[None, :] - 2.0 * data @ data.T, 0.0)
    p_conditional = _conditional_probabilities(d2, perplexity)
    p_joint = (p_conditional + p_conditional.T) / (2.0 * n)
    p_joint = np.maximum(p_joint, 1e-12)

    rng = as_generator(seed)
    embedding = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(embedding)
    exaggeration_end = max(1, n_iter // 4)
    for iteration in range(n_iter):
        exaggeration = 4.0 if iteration < exaggeration_end else 1.0
        momentum = 0.5 if iteration < exaggeration_end else 0.8

        sq = (embedding**2).sum(axis=1)
        num = 1.0 / (1.0 + np.maximum(
            sq[:, None] + sq[None, :] - 2.0 * embedding @ embedding.T, 0.0))
        np.fill_diagonal(num, 0.0)
        q_joint = np.maximum(num / num.sum(), 1e-12)

        coefficient = (exaggeration * p_joint - q_joint) * num
        gradient = 4.0 * ((np.diag(coefficient.sum(axis=1)) - coefficient) @ embedding)

        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding
