"""Gaussian mixture models with BIC-based model selection.

The paper clusters subspace embeddings with Gaussian mixtures, choosing
the number of components by the Bayesian information criterion [31]
(mclust-style). :class:`GaussianMixture` is a diagonal-covariance EM
implementation; :func:`select_components_bic` sweeps component counts.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.errors import NotFittedError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

_LOG_2PI = float(np.log(2.0 * np.pi))


class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fitted by EM.

    Parameters
    ----------
    n_components:
        Number of Gaussians.
    max_iter, tol:
        EM stopping criteria (log-likelihood improvement threshold).
    reg_covar:
        Variance floor keeping components from collapsing onto points.
    seed:
        Randomness for the k-means initialisation.
    """

    def __init__(self, n_components: int, max_iter: int = 100, tol: float = 1e-4,
                 reg_covar: float = 1e-6, seed: int | np.random.Generator | None = 0) -> None:
        check_positive("n_components", n_components)
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self._seed = seed
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.log_likelihood_: float | None = None
        self.n_iter_: int | None = None

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "GaussianMixture":
        """Run EM on *data* of shape ``(n, d)``."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {data.shape}")
        n, d = data.shape
        if n < self.n_components:
            raise ValueError(
                f"need at least n_components={self.n_components} points, got {n}"
            )
        rng = as_generator(self._seed)
        km = KMeans(self.n_components, seed=rng).fit(data)
        means = km.centers_.copy()
        variances = np.full((self.n_components, d), data.var(axis=0) + self.reg_covar)
        weights = np.bincount(km.labels_, minlength=self.n_components).astype(float)
        weights = np.maximum(weights, 1.0)
        weights /= weights.sum()

        previous = -np.inf
        for iteration in range(self.max_iter):
            log_resp, log_likelihood = self._e_step(data, weights, means, variances)
            resp = np.exp(log_resp)
            # M-step
            totals = resp.sum(axis=0) + 1e-12
            weights = totals / n
            means = (resp.T @ data) / totals[:, None]
            for j in range(self.n_components):
                diff = data - means[j]
                variances[j] = (resp[:, j][:, None] * diff**2).sum(axis=0) / totals[j]
            variances = np.maximum(variances, self.reg_covar)
            if abs(log_likelihood - previous) < self.tol:
                previous = log_likelihood
                break
            previous = log_likelihood
        self.weights_, self.means_, self.variances_ = weights, means, variances
        self.log_likelihood_ = float(previous)
        self.n_iter_ = iteration + 1
        return self

    def _e_step(self, data, weights, means, variances):
        log_prob = self._log_prob(data, means, variances) + np.log(weights)[None, :]
        norm = _logsumexp(log_prob, axis=1)
        return log_prob - norm[:, None], float(norm.sum())

    @staticmethod
    def _log_prob(data: np.ndarray, means: np.ndarray, variances: np.ndarray) -> np.ndarray:
        n, d = data.shape
        k = means.shape[0]
        out = np.empty((n, k))
        for j in range(k):
            diff = data - means[j]
            out[:, j] = -0.5 * (
                d * _LOG_2PI + np.log(variances[j]).sum()
                + (diff**2 / variances[j]).sum(axis=1)
            )
        return out

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.means_ is None:
            raise NotFittedError("GaussianMixture.fit must be called first")

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Posterior responsibilities, shape ``(n, n_components)``."""
        self._require_fitted()
        data = np.asarray(data, dtype=np.float64)
        log_resp, _ = self._e_step(data, self.weights_, self.means_, self.variances_)
        return np.exp(log_resp)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard component assignments."""
        return self.predict_proba(data).argmax(axis=1)

    def score(self, data: np.ndarray) -> float:
        """Total log-likelihood of *data* under the fitted mixture."""
        self._require_fitted()
        data = np.asarray(data, dtype=np.float64)
        _, ll = self._e_step(data, self.weights_, self.means_, self.variances_)
        return ll

    def bic(self, data: np.ndarray) -> float:
        """Bayesian information criterion (lower is better)."""
        data = np.asarray(data, dtype=np.float64)
        n, d = data.shape
        # weights (k-1) + means (k*d) + diagonal variances (k*d)
        n_params = (self.n_components - 1) + 2 * self.n_components * d
        return -2.0 * self.score(data) + n_params * np.log(n)


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    peak = a.max(axis=axis, keepdims=True)
    return (peak + np.log(np.exp(a - peak).sum(axis=axis, keepdims=True))).squeeze(axis)


def select_components_bic(data: np.ndarray, max_components: int = 8,
                          seed: int | np.random.Generator | None = 0) -> GaussianMixture:
    """Fit mixtures with 1..max_components and return the lowest-BIC one.

    Component counts exceeding the sample size are skipped automatically.
    """
    data = np.asarray(data, dtype=np.float64)
    check_positive("max_components", max_components)
    rng = as_generator(seed)
    best: GaussianMixture | None = None
    best_bic = np.inf
    for k in range(1, max_components + 1):
        if k > data.shape[0]:
            break
        model = GaussianMixture(k, seed=rng.spawn(1)[0]).fit(data)
        bic = model.bic(data)
        if bic < best_bic:
            best, best_bic = model, bic
    if best is None:
        raise ValueError("no mixture could be fitted (empty data?)")
    return best
