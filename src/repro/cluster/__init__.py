"""Clustering and outlier analysis: k-means, GMM+BIC, LOF, t-SNE."""

from repro.cluster.gmm import GaussianMixture, select_components_bic
from repro.cluster.kmeans import KMeans, kmeans_plus_plus
from repro.cluster.lof import local_outlier_factor, normalized_lof
from repro.cluster.tsne import tsne

__all__ = [
    "KMeans", "kmeans_plus_plus",
    "GaussianMixture", "select_components_bic",
    "local_outlier_factor", "normalized_lof",
    "tsne",
]
