"""Zero-downtime artifact hot swap with canary validation and rollback.

Before this module the only way to adopt a retrained artifact was to
stop serving, rebuild a :class:`~repro.serve.index.ServingIndex`, and
re-point every caller at the new object. :class:`HotSwapper` replaces
that with the standard blue/green recipe, entirely in process:

1. **Load** the candidate artifact in the background — the live index
   keeps serving untouched. The load passes the ``serve.swap.load``
   fault site inside a retry; exhaustion (or a candidate that comes up
   degraded) ends the attempt with ``outcome="load_failed"`` and the
   incumbent keeps serving.
2. **Catch up**: the candidate is constructed over a snapshot of the
   live pool — which *is* the live write-ahead log's contents plus the
   last compaction — so every paper ingested since the incumbent's
   artifact was written is replayed onto the candidate through the
   normal cold-start path.
3. **Canary**: a golden query set (registered users) is answered by
   both indexes and compared (mean overlap@k must reach
   ``min_overlap``), and the candidate must pass its structural
   ``health()`` checks (artifact manifest, finite embeddings, fallback
   probe). Process-global SLO state is deliberately ignored — it
   reflects the *live* traffic history, not the candidate.
4. **Cutover** — only if the canary passes: under the scheduler's
   drain barrier (:meth:`BatchScheduler.quiesce`, so no batch is
   mid-score against internals about to be replaced) and the serving
   lock, papers and users that arrived *during* steps 1–3 are replayed
   onto the candidate, then the candidate's state is transplanted into
   the live index object in place (:meth:`ServingIndex._adopt`) —
   callers never re-point at anything.
5. **Rollback** is the default, not an action: a failed canary simply
   leaves the incumbent untouched, stamped ``outcome="rolled_back"``
   on the ``serve.swap`` counter and a trace-carrying ``obs.event``.

The attached WAL (if any) is deliberately left as-is across a swap: its
records cover ingests the *new* artifact has not compacted either, so a
crash right after the swap still replays them. Run
:meth:`ServingIndex.compact` after a successful swap to bake the pool
into the new artifact and empty the log.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.errors import ArtifactError, InjectedFault, RetryExhaustedError
from repro.resilience import faults
from repro.resilience.retry import Backoff, retry
from repro.serve.index import ServingIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.scheduler import BatchScheduler


@dataclass
class SwapReport:
    """Outcome of one :meth:`HotSwapper.swap` attempt."""

    outcome: str  # "swapped" | "rolled_back" | "load_failed"
    directory: str
    #: Per-golden-user overlap@k between candidate and live answers.
    overlaps: dict[str, float] = field(default_factory=dict)
    mean_overlap: float | None = None
    min_overlap: float = 0.0
    golden_k: int = 0
    #: Failed structural health checks on the candidate (names).
    failed_checks: list[str] = field(default_factory=list)
    #: Papers replayed onto the candidate during cutover (arrived while
    #: the candidate was loading/canarying).
    delta_papers: int = 0
    error: str | None = None

    @property
    def swapped(self) -> bool:
        """True when the candidate was adopted."""
        return self.outcome == "swapped"

    def snapshot(self) -> dict:
        """JSON-ready dump (CLI output, logs)."""
        return {
            "outcome": self.outcome, "directory": self.directory,
            "overlaps": dict(self.overlaps),
            "mean_overlap": self.mean_overlap,
            "min_overlap": self.min_overlap, "golden_k": self.golden_k,
            "failed_checks": list(self.failed_checks),
            "delta_papers": self.delta_papers, "error": self.error,
        }


#: Most recent swap outcome in this process (``/debug/vars`` surfaces it).
_LAST_REPORT: SwapReport | None = None


def last_swap_report() -> SwapReport | None:
    """The most recent :class:`SwapReport` of this process, if any."""
    return _LAST_REPORT


def _conclude(report: SwapReport) -> SwapReport:
    """Stamp *report* as the process' latest; trip the recorder on failure."""
    global _LAST_REPORT
    _LAST_REPORT = report
    if report.outcome != "swapped":
        obs.get_flight_recorder().trip(f"swap_{report.outcome}")
    return report


class HotSwapper:
    """Swap a live :class:`ServingIndex` to a new artifact without downtime.

    Parameters
    ----------
    index:
        The live index; mutated in place on a successful swap.
    scheduler:
        The :class:`BatchScheduler` serving the index, when one is.
        Defaults to the index's attached scheduler; the cutover runs
        under its :meth:`~BatchScheduler.quiesce` drain barrier so no
        in-flight batch straddles the swap.
    golden_users:
        User ids for the canary query set; defaults to every registered
        user, capped at *max_golden*.
    golden_k:
        ``k`` of the canary queries.
    min_overlap:
        Minimum mean overlap@k between candidate and live answers for
        the canary to pass. The two indexes run *different* models, so
        1.0 is not the bar — the bar is "not answering garbage".
    max_golden:
        Cap on the default golden set size.
    retry_attempts:
        Attempts for the candidate artifact load (``serve.swap.load``
        fault site).
    """

    def __init__(self, index: ServingIndex,
                 scheduler: "BatchScheduler | None" = None,
                 golden_users: Sequence[str] | None = None,
                 golden_k: int = 10, min_overlap: float = 0.6,
                 max_golden: int = 8, retry_attempts: int = 3) -> None:
        if golden_k < 1:
            raise ValueError(f"golden_k must be >= 1, got {golden_k}")
        if not 0.0 <= min_overlap <= 1.0:
            raise ValueError(
                f"min_overlap must be in [0, 1], got {min_overlap}")
        if max_golden < 1:
            raise ValueError(f"max_golden must be >= 1, got {max_golden}")
        self.index = index
        self.scheduler = scheduler
        self.golden_users = (list(golden_users)
                             if golden_users is not None else None)
        self.golden_k = int(golden_k)
        self.min_overlap = float(min_overlap)
        self.max_golden = int(max_golden)
        self.retry_attempts = int(retry_attempts)

    # ------------------------------------------------------------------
    def swap(self, directory: "str | Path") -> SwapReport:
        """Attempt to adopt the artifact at *directory*; never raises
        out of a failed canary or load — the incumbent keeps serving and
        the report says why (``InjectedFault``/``RetryExhaustedError``
        surface only through ``outcome="load_failed"``).
        """
        live = self.index
        directory = str(directory)
        with obs.request("serve.swap", directory=directory) as span:
            # -- snapshot the live surface (pool + users) --------------
            with live._serve_lock:
                snapshot_papers = list(live._papers)
                snapshot_count = len(snapshot_papers)
                profiles = {uid: list(papers)
                            for uid, (papers, _) in live._profiles.items()}

            # -- load + catch up (no live lock held) -------------------
            try:
                candidate = self._load_candidate(directory, snapshot_papers)
            except (RetryExhaustedError, ArtifactError) as exc:
                span.set("outcome", "load_failed")
                obs.count("serve.swap", outcome="load_failed")
                obs.event("serve.swap", outcome="load_failed",
                          directory=directory, error=str(exc))
                return _conclude(SwapReport(
                    outcome="load_failed", directory=directory,
                    min_overlap=self.min_overlap,
                    golden_k=self.golden_k, error=str(exc)))
            for uid, papers in profiles.items():
                candidate.register_user(uid, papers)

            # -- canary ------------------------------------------------
            passed, report = self._canary(live, candidate, directory)
            if not passed:
                span.set("outcome", "rolled_back")
                obs.count("serve.swap", outcome="rolled_back")
                # Trace-stamped: the event carries this request's
                # trace id, joining the rollback to its canary spans.
                obs.event("serve.swap", outcome="rolled_back",
                          directory=directory,
                          mean_overlap=report.mean_overlap,
                          failed_checks=list(report.failed_checks))
                return _conclude(report)

            # -- cutover -----------------------------------------------
            scheduler = (self.scheduler if self.scheduler is not None
                         else live.scheduler)
            barrier = (scheduler.quiesce() if scheduler is not None
                       else contextlib.nullcontext())
            with obs.trace("serve.swap.cutover"), barrier:
                with live._serve_lock:
                    delta = live._papers[snapshot_count:]
                    for paper in delta:
                        if paper.id not in candidate._positions:
                            candidate.add_paper(paper)
                    for uid, (papers, _) in live._profiles.items():
                        if uid not in candidate._profiles:
                            candidate.register_user(uid, list(papers))
                    live._adopt(candidate)
            span.set("outcome", "swapped")
            obs.count("serve.swap", outcome="swapped")
            obs.event("serve.swap", outcome="swapped", directory=directory,
                      delta_papers=len(delta))
            report.outcome = "swapped"
            report.delta_papers = len(delta)
            return _conclude(report)

    # ------------------------------------------------------------------
    def _load_candidate(self, directory: str,
                        snapshot_papers: list) -> ServingIndex:
        """Build the candidate index over the live pool snapshot."""
        live = self.index

        @retry(attempts=self.retry_attempts, backoff=Backoff(base=0.02),
               retry_on=(InjectedFault,), name="serve.swap.load")
        def _load() -> ServingIndex:
            faults.maybe_fail("serve.swap.load")
            with obs.trace("serve.swap.load", directory=directory):
                candidate = ServingIndex.from_artifact(
                    directory, papers=snapshot_papers,
                    block_size=live.block_size,
                    cache_size=live.cache_size, index=live.index_kind,
                    nprobe=live.nprobe, n_lists=live._n_lists,
                    ann_seed=live._ann_seed)
            if candidate.degraded:
                # A degraded candidate would *downgrade* the service;
                # treat it exactly like an unloadable artifact.
                raise ArtifactError(
                    f"candidate at {directory} came up degraded "
                    f"({candidate._degraded_reason}); refusing to swap "
                    "a healthy index for it")
            return candidate

        return _load()

    def _canary(self, live: ServingIndex, candidate: ServingIndex,
                directory: str) -> "tuple[bool, SwapReport]":
        """Validate the candidate: (passed, report-with-canary-evidence).

        The report carries the per-user overlaps either way — a
        successful swap's report shows *how well* the canary agreed,
        not just that it did.
        """
        report = self._base_report("rolled_back", directory)
        golden = self.golden_users
        if golden is None:
            golden = sorted(candidate._profiles)[:self.max_golden]
        with obs.trace("serve.swap.canary", users=len(golden)):
            overlaps: dict[str, float] = {}
            for uid in golden:
                live_ids = live.top_k(uid, self.golden_k)
                cand_ids = candidate.top_k(uid, self.golden_k)
                denom = max(len(live_ids), len(cand_ids), 1)
                overlaps[uid] = len(set(live_ids) & set(cand_ids)) / denom
            report.overlaps = overlaps
            if overlaps:
                report.mean_overlap = sum(overlaps.values()) / len(overlaps)
                if report.mean_overlap < self.min_overlap:
                    report.error = (
                        f"canary overlap@{self.golden_k} = "
                        f"{report.mean_overlap:.3f} under the "
                        f"{self.min_overlap:.3f} floor")
                    return False, report
            # Structural checks only: the global SLO registry reflects
            # the live process' traffic history and would spuriously
            # veto any candidate during a latency burn.
            health = candidate.health(probe=True)
            failed = [name for name, entry in health["checks"].items()
                      if not entry.get("ok", True)]
            if failed or health["degraded"]:
                report.failed_checks = failed
                report.error = ("candidate failed structural health "
                                f"checks: {failed or ['degraded']}")
                return False, report
        return True, report

    def _base_report(self, outcome: str, directory: str) -> SwapReport:
        return SwapReport(outcome=outcome, directory=directory,
                          min_overlap=self.min_overlap,
                          golden_k=self.golden_k)
