"""repro.serve — persistent model artifacts + incremental serving.

The deployment half of the reproduction (ROADMAP north star): a fitted
SEM -> NPRec pipeline is split into a **persistent artifact** (a
versioned on-disk directory with a manifest and checksums, written by
:func:`save_pipeline` and reread by :func:`load_pipeline`) and an
**online scoring path** (:class:`ServingIndex`: precomputed interest /
influence embeddings, blockwise top-K retrieval, a bounded query cache,
and :meth:`ServingIndex.add_paper` cold-start ingestion of newly
published papers without retraining — Sec. IV-E's serving condition).

Guarantees:

* round trip is exact — ``load_pipeline(save_pipeline(r)).rank(...)``
  equals ``r.rank(...)`` bit for bit (weights, graph adjacency order,
  sampled receptive fields, and the field-sampler RNG state are all
  persisted);
* artifacts fail loudly — checksum or schema-version mismatches raise
  :class:`repro.errors.ArtifactError` / ``SchemaVersionError``;
* serving degrades gracefully — unknown users or unloadable artifacts
  fall back to the TF-IDF content ranker, with the downgrade recorded
  under the ``serve.degraded`` obs counter; artifact loads are retried
  (:mod:`repro.resilience.retry`) before degradation kicks in, and
  :meth:`ServingIndex.health` re-verifies checksums, probes the
  fallback, and self-heals rebuildable state in place;
* retrieval scales past brute force — ``ServingIndex(index="ivf")``
  probes a pure-numpy IVF coarse quantizer (:mod:`repro.serve.ann`)
  instead of scoring the whole pool, with measured recall@K against
  the exact oracle gated in CI, and the clustered quantizer persists
  inside the artifact (:func:`save_ann_index`) so serving startup
  never re-clusters.

* concurrent traffic batches — :class:`BatchScheduler`
  (:mod:`repro.serve.scheduler`) coalesces concurrent queries into
  single batched matrix passes (:meth:`ServingIndex.batch_top_k`,
  bit-identical to serial execution), with a bounded admission queue
  and SLO-driven load-shedding to the TF-IDF degraded path.

* ingestion survives crashes — :class:`WriteAheadLog`
  (:mod:`repro.serve.wal`) durably logs every ``add_paper`` before it
  is applied; a restarted process replays the log
  (:meth:`ServingIndex.attach_wal`) and reproduces the never-crashed
  pool bit for bit, and :meth:`ServingIndex.compact` bakes the log
  into the artifact. :class:`HotSwapper` (:mod:`repro.serve.swap`)
  adopts a retrained artifact with zero downtime — canary-validated
  against the live index, rolled back on failure.

CLI: ``python -m repro.serve
warmup|query|smoke|health|loadtest|compact|swap``.
"""

from repro.serve.ann import (
    IVFIndex,
    ProbeStats,
    batch_exact_top_k,
    exact_top_k,
    exact_top_k_scored,
    pooled_scores,
    rank_candidates,
)
from repro.serve.artifacts import (
    SCHEMA_VERSION,
    has_ann_index,
    load_ann_index,
    load_author_affiliations,
    load_pipeline,
    load_pool,
    pool_fingerprint,
    save_ann_index,
    save_pipeline,
    save_pool,
)
from repro.serve.index import BatchQueryResult, ServingIndex
from repro.serve.scheduler import BatchScheduler, SheddingGovernor, Ticket
from repro.serve.swap import HotSwapper, SwapReport
from repro.serve.wal import WALRecord, WriteAheadLog

__all__ = [
    "SCHEMA_VERSION",
    "save_pipeline", "load_pipeline", "load_author_affiliations",
    "save_ann_index", "load_ann_index", "has_ann_index", "pool_fingerprint",
    "save_pool", "load_pool",
    "IVFIndex", "ProbeStats", "exact_top_k", "exact_top_k_scored",
    "batch_exact_top_k", "rank_candidates", "pooled_scores",
    "ServingIndex", "BatchQueryResult",
    "BatchScheduler", "SheddingGovernor", "Ticket",
    "WriteAheadLog", "WALRecord",
    "HotSwapper", "SwapReport",
]
