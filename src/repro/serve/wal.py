"""Write-ahead log for serving ingestion: durable ``add_paper``.

The cold-start path (:meth:`repro.serve.index.ServingIndex.add_paper`)
mutates only RAM — before this module, a restart silently lost every
paper ingested since the artifact was written. :class:`WriteAheadLog`
closes that hole with the classic recipe:

* **append-only JSONL** — one record per ingested paper, written and
  ``fsync``'d *before* the in-memory mutation runs (log-then-apply), so
  an acknowledged ingest is always recoverable;
* **per-record checksum** — each line carries the SHA-256 of its own
  canonical payload, so a torn tail (the half-written record a crash
  leaves behind) is detected instead of deserialised; torn records are
  dropped, counted under ``serve.wal.torn_records``, and the file is
  repaired in place to the last durable byte;
* **ordered replay** — :meth:`ServingIndex.attach_wal` replays the
  recovered records through the normal ingestion path in append order,
  so a restarted process reproduces the never-crashed process' pool
  (and, because the artifact persists the field-sampler RNG state,
  reproduces its ``top_k`` bit for bit);
* **compaction** — :meth:`ServingIndex.compact` re-saves the artifact
  (baking the WAL-covered mutations into the durable model + a
  ``pool/pool.json`` snapshot of the serving pool) and truncates the
  log. ``serve.wal.lag`` — records accumulated since the last
  compaction — is exported as a gauge and bounded by a declarative SLO
  (:func:`repro.obs.slo.wal_lag_slo`) so ``health()`` pages before the
  log grows unbounded.

Record schema (one JSON object per line, sorted keys)::

    {"paper": {<paper_to_dict payload>},
     "pool_version": <index pool version at append time>,
     "seq": <0-based record ordinal since the last compaction>,
     "sha256": <hex SHA-256 of the record minus this field>}

Fault sites: ``serve.wal.append`` fires *before* any byte is written —
an injected fault there is the canonical simulated crash (nothing
logged, nothing applied, nothing acknowledged); ``serve.wal.replay``
fires per replayed record and is retried like other transient sites.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.data.io import paper_to_dict
from repro.data.schema import Paper
from repro.errors import WALError
from repro.resilience import faults

#: Keys every durable record must carry (``sha256`` covers the rest).
_RECORD_KEYS = frozenset({"seq", "pool_version", "paper", "sha256"})


def _canonical(payload: dict) -> bytes:
    """Deterministic byte serialisation the record checksum is over."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _record_digest(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass(frozen=True)
class WALRecord:
    """One recovered (checksum-verified) write-ahead-log record."""

    seq: int
    pool_version: int
    paper: dict

    @classmethod
    def validate(cls, raw: bytes, expected_seq: int) -> "WALRecord | None":
        """Parse+verify one log line; ``None`` when the line is torn.

        A line is torn when it is not JSON, misses a required key, its
        checksum does not match its canonical payload, or its sequence
        number is not the expected next ordinal (an out-of-order record
        means everything from here on postdates the corruption point and
        cannot be trusted to replay in order).
        """
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or not _RECORD_KEYS <= set(entry):
            return None
        stored = entry.pop("sha256")
        if stored != _record_digest(entry):
            return None
        if entry["seq"] != expected_seq:
            return None
        return cls(seq=int(entry["seq"]),
                   pool_version=int(entry["pool_version"]),
                   paper=dict(entry["paper"]))


class WriteAheadLog:
    """Append-only, fsync'd, checksummed ingestion log.

    Parameters
    ----------
    path:
        The log file. Created (with parents) on first append; an
        existing file is recovered — torn-tail records dropped and the
        file truncated to its last durable byte — before any append.
    fsync:
        When True (default) every append is flushed and ``fsync``'d
        before returning, so an acknowledged record survives a crash.
        ``fsync=False`` trades that guarantee for speed in tests and
        benchmarks that simulate crashes above the filesystem.

    Thread safety is the caller's job: :class:`ServingIndex` appends
    under ``_serve_lock``, which already serialises ingestion.
    """

    def __init__(self, path: "str | os.PathLike", fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._handle = None
        #: Records currently in the log (== records since last compaction).
        self._count = 0
        #: Torn records dropped by the last :meth:`recover`.
        self.torn_records = 0
        self._recovered = False

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> list[WALRecord]:
        """Read, verify, and repair the log; return the durable records.

        Scans the file line by line, validating each record's checksum
        and sequence number. The first invalid line marks the torn
        tail: it and everything after it are dropped (counted under
        ``serve.wal.torn_records``) and the file is truncated back to
        the last durable byte so subsequent appends never interleave
        with garbage. Idempotent; called automatically before the first
        append when the caller has not replayed explicitly.
        """
        self._close_handle()
        self._recovered = True
        self.torn_records = 0
        if not self.path.exists():
            self._count = 0
            return []
        raw = self.path.read_bytes()
        records: list[WALRecord] = []
        durable_bytes = 0
        torn = 0
        segments = raw.split(b"\n")
        # A clean file ends with "\n", leaving one empty trailing
        # segment; anything non-empty after the last newline is a
        # half-written record.
        for i, segment in enumerate(segments):
            if segment == b"" and i == len(segments) - 1:
                break
            record = WALRecord.validate(segment, expected_seq=len(records))
            if record is None:
                torn = sum(1 for s in segments[i:] if s != b"")
                break
            records.append(record)
            durable_bytes += len(segment) + 1
        if torn:
            self.torn_records = torn
            obs.count("serve.wal.torn_records", torn)
            obs.event("serve.wal.torn_records", path=str(self.path),
                      dropped=torn, kept=len(records))
            with open(self.path, "r+b") as handle:
                handle.truncate(durable_bytes)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        self._count = len(records)
        return records

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, paper: Paper, pool_version: int) -> WALRecord:
        """Durably log one ingest *before* the pool mutation runs.

        Raises :class:`~repro.errors.InjectedFault` when the
        ``serve.wal.append`` site fires (the simulated crash: nothing
        written, nothing to replay) and :class:`~repro.errors.WALError`
        when the write itself cannot be made durable.
        """
        faults.maybe_fail("serve.wal.append")
        if not self._recovered:
            self.recover()
        payload = {"seq": self._count, "pool_version": int(pool_version),
                   "paper": paper_to_dict(paper)}
        line = json.dumps({**payload, "sha256": _record_digest(payload)},
                          sort_keys=True, separators=(",", ":"))
        try:
            handle = self._ensure_handle()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise WALError(
                f"could not durably append record #{self._count} to WAL at "
                f"{self.path}: {exc}") from exc
        record = WALRecord(seq=self._count, pool_version=int(pool_version),
                           paper=payload["paper"])
        self._count += 1
        obs.count("serve.wal.appends")
        obs.gauge("serve.wal.lag", float(self._count))
        return record

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def truncate(self) -> int:
        """Drop every record (the compaction tail step); returns how many.

        Only call after the state the records describe has been made
        durable elsewhere (:meth:`ServingIndex.compact` re-saves the
        artifact first) — truncating an unsaved log *loses* ingests.
        """
        dropped = self._count
        self._close_handle()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "wb") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._count = 0
        self._recovered = True
        obs.count("serve.wal.compactions")
        obs.gauge("serve.wal.lag", 0.0)
        return dropped

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        """Records appended since the last compaction (or file birth)."""
        return self._count

    def _ensure_handle(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Release the file handle (the log itself is always durable)."""
        self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WriteAheadLog({str(self.path)!r}, records={self._count}, "
                f"torn={self.torn_records})")
