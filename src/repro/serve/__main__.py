"""CLI for the serving layer: ``python -m repro.serve <command>``.

Commands
--------
``warmup``
    Fit the full SEM -> NPRec pipeline on a synthetic ACM corpus and
    persist it as an artifact directory (the offline half of serving).
``query``
    Reload the artifact written by ``warmup``, build a
    :class:`~repro.serve.index.ServingIndex` over the evaluation pool,
    and print the top-K recommendations for one user.
``smoke``
    End-to-end serving check used by CI: fit, save, reload, verify the
    reloaded ranking is bit-identical, ingest one never-seen paper, and
    assert it surfaces in the user's top-10 — all without retraining.
``health``
    Load the artifact (with retries), run the
    :meth:`~repro.serve.index.ServingIndex.health` checks (artifact
    checksums, embedding finiteness, fallback probe + self-heal, cache
    stats, registered SLOs), print the JSON report on stdout (one
    human-readable line per SLO goes to stderr), and exit non-zero when
    unhealthy — a degraded index is serving, but it is not healthy, and
    neither is one breaching a latency or error-budget objective.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
from pathlib import Path

from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.core.sem import SEMConfig
from repro.data import load_acm
from repro.experiments.protocol import RecommendationTask, split_task_by_year
from repro.serve.artifacts import load_pipeline, save_pipeline
from repro.serve.index import ServingIndex


def _fit_config(seed: int) -> NPRecConfig:
    """A lightened NPRec configuration for CLI-scale corpora."""
    return NPRecConfig(sem=SEMConfig(n_triplets=60, epochs=2),
                       epochs=4, max_positives=120, seed=seed)


def _build_task(scale: float, seed: int, split_year: int,
                n_users: int) -> RecommendationTask:
    corpus = load_acm(scale=scale, seed=seed if seed else None)
    return split_task_by_year(corpus, split_year, n_users=n_users,
                              candidate_size=50, seed=seed)


def cmd_warmup(args: argparse.Namespace) -> int:
    task = _build_task(args.scale, args.seed, args.split_year, args.users)
    recommender = NPRecRecommender(_fit_config(args.seed))
    print(f"fitting NPRec on {len(task.train_papers)} train / "
          f"{len(task.new_papers)} new papers ...")
    recommender.fit(task.corpus, task.train_papers, task.new_papers)
    path = save_pipeline(recommender, args.dir, corpus=task.corpus,
                         extra_metadata={
                             "corpus": "acm", "scale": args.scale,
                             "seed": args.seed, "split_year": args.split_year,
                             "users": args.users,
                         })
    print(f"artifact written to {path}")
    return 0


def _reload_task(directory: str) -> RecommendationTask:
    """Rebuild the evaluation task a warmup artifact was fitted on."""
    manifest = json.loads(
        (Path(directory) / "manifest.json").read_text(encoding="utf-8"))
    extra = manifest.get("extra", {})
    return _build_task(float(extra.get("scale", 1.0)),
                       int(extra.get("seed", 0)),
                       int(extra.get("split_year", 2014)),
                       int(extra.get("users", 12)))


def cmd_query(args: argparse.Namespace) -> int:
    task = _reload_task(args.dir)
    index = ServingIndex.from_artifact(args.dir, papers=task.new_papers)
    if index.degraded:
        print("WARNING: artifact unusable, serving degraded TF-IDF results",
              file=sys.stderr)
    users = {u.author_id: u for u in task.users}
    if args.user is not None:
        if args.user not in users:
            print(f"unknown user {args.user!r}; known: {sorted(users)}",
                  file=sys.stderr)
            return 2
        user = users[args.user]
    else:
        user = task.users[0]
    top = index.top_k(list(user.train_papers), k=args.k)
    print(f"top-{args.k} for user {user.author_id} "
          f"(pool of {index.num_papers} papers):")
    for rank, pid in enumerate(top, start=1):
        marker = "*" if pid in user.relevant_ids else " "
        print(f"  {rank:2d}. {marker} {pid}")
    print("(* = held-out ground-truth citation)")
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    task = _build_task(args.scale, args.seed, 2014, 8)
    recommender = NPRecRecommender(_fit_config(args.seed))
    print(f"[1/5] fitting on {len(task.train_papers)} train papers ...")
    recommender.fit(task.corpus, task.train_papers, task.new_papers)
    user = task.users[0]
    candidates = user.candidate_set(20)
    before = recommender.rank(list(user.train_papers), candidates)

    with tempfile.TemporaryDirectory() as scratch:
        directory = args.dir or str(Path(scratch) / "artifact")
        print(f"[2/5] saving artifact to {directory} ...")
        save_pipeline(recommender, directory, corpus=task.corpus)
        print("[3/5] reloading and checking rank() round trip ...")
        reloaded = load_pipeline(directory)
        after = reloaded.rank(list(user.train_papers), candidates)
        if before != after:
            print("FAIL: reloaded ranking differs from the original",
                  file=sys.stderr)
            return 1
        print("[4/5] ingesting one never-seen paper ...")
        index = ServingIndex.from_artifact(directory,
                                           papers=task.new_papers)
        if index.degraded:
            print("FAIL: freshly written artifact failed to load",
                  file=sys.stderr)
            return 1
        # The ingested paper mirrors the user's latest publication (same
        # text and metadata, fresh id): a correct cold-start path must
        # surface it near the top of that user's feed.
        template = user.train_papers[-1]
        fresh = dataclasses.replace(template, id="smoke-ingested-paper",
                                    references=(), citation_count=0)
        index.add_paper(fresh)
        print("[5/5] querying top-10 ...")
        top = index.top_k(list(user.train_papers), k=10)
        if fresh.id not in top:
            print(f"FAIL: ingested paper not in top-10 ({top})",
                  file=sys.stderr)
            return 1
    print("serve smoke OK: exact round trip + cold-start ingestion")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    from repro import obs

    # Capture the health probe itself so latency SLOs have data even in
    # a one-shot CLI run (the load + fallback probe both record); the
    # prior obs state is restored so the CLI helper stays side-effect
    # free for embedding callers.
    was_enabled = obs.is_enabled()
    obs.configure(enabled=True)
    try:
        index = ServingIndex.from_artifact(args.dir,
                                           retry_attempts=args.retries)
        report = index.health()
    finally:
        obs.configure(enabled=was_enabled)
    # stdout stays pure JSON (machine-readable); the per-SLO summary
    # lines go to stderr alongside any UNHEALTHY banner.
    print(json.dumps(report, indent=2, sort_keys=True))
    for status in report["slos"]:
        state = ("no data" if status["no_data"]
                 else "ok" if status["ok"] else "BREACH")
        print(f"SLO [{status['slo']}] ({status['kind']}): {state}"
              + (f" — {status['detail']}" if status["detail"] else ""),
              file=sys.stderr)
    if not report["healthy"]:
        print("UNHEALTHY: see checks above", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persist and serve a fitted NPRec pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    warmup = sub.add_parser("warmup", help="fit and persist a pipeline")
    warmup.add_argument("--dir", default="artifacts/serve")
    warmup.add_argument("--scale", type=float, default=0.5)
    warmup.add_argument("--seed", type=int, default=0)
    warmup.add_argument("--split-year", type=int, default=2014)
    warmup.add_argument("--users", type=int, default=12)
    warmup.set_defaults(fn=cmd_warmup)

    query = sub.add_parser("query", help="top-K from a saved artifact")
    query.add_argument("--dir", default="artifacts/serve")
    query.add_argument("--user", default=None,
                       help="author id (defaults to the first test user)")
    query.add_argument("-k", type=int, default=10)
    query.set_defaults(fn=cmd_query)

    smoke = sub.add_parser("smoke",
                           help="save/reload/ingest/query end-to-end check")
    smoke.add_argument("--dir", default=None,
                       help="artifact directory (default: temporary)")
    smoke.add_argument("--scale", type=float, default=0.35)
    smoke.add_argument("--seed", type=int, default=7)
    smoke.set_defaults(fn=cmd_smoke)

    health = sub.add_parser(
        "health", help="artifact + index health checks, exit 1 on unhealthy")
    health.add_argument("--dir", default="artifacts/serve")
    health.add_argument("--retries", type=int, default=3,
                        help="artifact load attempts before degrading")
    health.set_defaults(fn=cmd_health)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
