"""CLI for the serving layer: ``python -m repro.serve <command>``.

Commands
--------
``warmup``
    Fit the full SEM -> NPRec pipeline on a synthetic ACM corpus and
    persist it as an artifact directory (the offline half of serving).
``query``
    Reload the artifact written by ``warmup``, build a
    :class:`~repro.serve.index.ServingIndex` over the evaluation pool,
    and print the top-K recommendations for one user.
``smoke``
    End-to-end serving check used by CI: fit, save, reload, verify the
    reloaded ranking is bit-identical, ingest one never-seen paper, and
    assert it surfaces in the user's top-10 — all without retraining.
``health``
    Load the artifact (with retries), run the
    :meth:`~repro.serve.index.ServingIndex.health` checks (artifact
    checksums, embedding finiteness, fallback probe + self-heal, cache
    stats, registered SLOs), print the JSON report on stdout (one
    human-readable line per SLO goes to stderr), and exit non-zero when
    unhealthy — a degraded index is serving, but it is not healthy, and
    neither is one breaching a latency or error-budget objective.
``compact``
    Replay the ingestion write-ahead log into the artifact: load the
    artifact with the WAL attached (recovering torn tails, reapplying
    every durable record), re-save the pipeline plus a
    ``pool/pool.json`` snapshot, and truncate the log — after which a
    restart replays nothing and ``serve.wal.lag`` is back to zero.
``swap``
    Zero-downtime adoption of a retrained artifact: build the live
    index (registering the evaluation users), then
    :class:`~repro.serve.swap.HotSwapper` loads the candidate, replays
    the live pool onto it, canary-compares golden queries, and either
    cuts over in place or rolls back (exit 1) leaving the incumbent
    serving.
``loadtest``
    Drive a warm index with a seeded closed- or open-loop workload
    (:mod:`repro.loadgen`): load the artifact when present (fit and
    persist one otherwise), register every evaluation user, warm the
    cache, run the schedule from real threads, and write
    ``BENCH_serve_load.json``, a JSONL observability capture, and a
    run-registry snapshot that CI gates against the committed baseline.
``serve``
    Long-running serving daemon: fit-or-load the artifact, register the
    evaluation users, attach the ingestion WAL (and optionally the
    batch scheduler), arm the flight recorder, and serve the embedded
    HTTP ops plane (:class:`repro.obs.server.ObsServer` — ``/metrics``,
    ``/healthz``, ``/readyz``, ``/slo``, ``/debug/vars``,
    ``/exemplars``) until SIGTERM/SIGINT or ``--duration`` elapses;
    shutdown drains the scheduler through its quiesce barrier and can
    emit a final postmortem bundle.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
from pathlib import Path

from repro.core.nprec import NPRecConfig, NPRecRecommender
from repro.core.sem import SEMConfig
from repro.data import load_acm
from repro.experiments.protocol import RecommendationTask, split_task_by_year
from repro.serve.artifacts import (load_pipeline, save_ann_index,
                                   save_pipeline)
from repro.serve.index import ServingIndex


def _fit_config(seed: int) -> NPRecConfig:
    """A lightened NPRec configuration for CLI-scale corpora."""
    return NPRecConfig(sem=SEMConfig(n_triplets=60, epochs=2),
                       epochs=4, max_positives=120, seed=seed)


def _build_task(scale: float, seed: int, split_year: int,
                n_users: int) -> RecommendationTask:
    corpus = load_acm(scale=scale, seed=seed if seed else None)
    return split_task_by_year(corpus, split_year, n_users=n_users,
                              candidate_size=50, seed=seed)


def _index_kwargs(args: argparse.Namespace) -> dict:
    """Retrieval-strategy kwargs shared by every index-building command."""
    return {"index": args.index, "nprobe": args.nprobe,
            "n_lists": args.n_lists}


def _add_scheduler_args(parser: argparse.ArgumentParser,
                        shed_threshold: bool = False) -> None:
    parser.add_argument("--scheduler", action="store_true",
                        help="route queries through the micro-batching "
                             "BatchScheduler (coalesced matrix passes, "
                             "admission control, load-shedding)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="requests per batch flush (a full batch "
                             "flushes immediately)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="max milliseconds a lone request waits for "
                             "batch co-riders before flushing")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="admission-queue bound; overflow sheds to "
                             "the TF-IDF degraded path")
    if shed_threshold:
        parser.add_argument("--shed-threshold", type=float, default=0.25,
                            help="governor latency threshold (seconds) "
                                 "above which requests count against the "
                                 "SLO burn budget")


def _add_index_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--index", choices=("exact", "ivf"), default="exact",
                        help="retrieval strategy: exact blockwise scan "
                             "(default, the oracle) or approximate IVF")
    parser.add_argument("--nprobe", type=int, default=8,
                        help="IVF lists probed per query (clamped to the "
                             "list count; == list count reproduces exact)")
    parser.add_argument("--n-lists", type=int, default=None,
                        help="IVF coarse-cluster count "
                             "(default: round(sqrt(pool)))")


def cmd_warmup(args: argparse.Namespace) -> int:
    task = _build_task(args.scale, args.seed, args.split_year, args.users)
    recommender = NPRecRecommender(_fit_config(args.seed))
    print(f"fitting NPRec on {len(task.train_papers)} train / "
          f"{len(task.new_papers)} new papers ...")
    recommender.fit(task.corpus, task.train_papers, task.new_papers)
    path = save_pipeline(recommender, args.dir, corpus=task.corpus,
                         extra_metadata={
                             "corpus": "acm", "scale": args.scale,
                             "seed": args.seed, "split_year": args.split_year,
                             "users": args.users,
                         })
    print(f"artifact written to {path}")
    if args.index == "ivf":
        # Cluster the evaluation pool once, offline, and persist the
        # quantizer into the artifact — `query`/`loadtest --index ivf`
        # adopt it by pool fingerprint and never re-cluster at startup.
        index = ServingIndex.from_artifact(str(path), papers=task.new_papers,
                                           **_index_kwargs(args))
        ivf = index.build_ann_index()
        save_ann_index(path, ivf, index.paper_ids)
        print(f"IVF quantizer ({ivf.num_lists} lists over "
              f"{ivf.num_rows} papers) persisted to {path / 'ann'}")
    return 0


def _reload_task(directory: str) -> RecommendationTask:
    """Rebuild the evaluation task a warmup artifact was fitted on."""
    manifest = json.loads(
        (Path(directory) / "manifest.json").read_text(encoding="utf-8"))
    extra = manifest.get("extra", {})
    return _build_task(float(extra.get("scale", 1.0)),
                       int(extra.get("seed", 0)),
                       int(extra.get("split_year", 2014)),
                       int(extra.get("users", 12)))


def cmd_query(args: argparse.Namespace) -> int:
    task = _reload_task(args.dir)
    index = ServingIndex.from_artifact(args.dir, papers=task.new_papers,
                                       **_index_kwargs(args))
    if index.degraded:
        print("WARNING: artifact unusable, serving degraded TF-IDF results",
              file=sys.stderr)
    users = {u.author_id: u for u in task.users}
    if args.user is not None:
        if args.user not in users:
            print(f"unknown user {args.user!r}; known: {sorted(users)}",
                  file=sys.stderr)
            return 2
        user = users[args.user]
    else:
        user = task.users[0]
    top = index.top_k(list(user.train_papers), k=args.k)
    strategy = (f"ivf, nprobe={index.nprobe}" if args.index == "ivf"
                else "exact")
    print(f"top-{args.k} for user {user.author_id} "
          f"(pool of {index.num_papers} papers, {strategy}):")
    for rank, pid in enumerate(top, start=1):
        marker = "*" if pid in user.relevant_ids else " "
        print(f"  {rank:2d}. {marker} {pid}")
    print("(* = held-out ground-truth citation)")
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    task = _build_task(args.scale, args.seed, 2014, 8)
    recommender = NPRecRecommender(_fit_config(args.seed))
    print(f"[1/5] fitting on {len(task.train_papers)} train papers ...")
    recommender.fit(task.corpus, task.train_papers, task.new_papers)
    user = task.users[0]
    candidates = user.candidate_set(20)
    before = recommender.rank(list(user.train_papers), candidates)

    with tempfile.TemporaryDirectory() as scratch:
        directory = args.dir or str(Path(scratch) / "artifact")
        print(f"[2/5] saving artifact to {directory} ...")
        save_pipeline(recommender, directory, corpus=task.corpus)
        print("[3/5] reloading and checking rank() round trip ...")
        reloaded = load_pipeline(directory)
        after = reloaded.rank(list(user.train_papers), candidates)
        if before != after:
            print("FAIL: reloaded ranking differs from the original",
                  file=sys.stderr)
            return 1
        print("[4/5] ingesting one never-seen paper ...")
        index = ServingIndex.from_artifact(directory,
                                           papers=task.new_papers)
        if index.degraded:
            print("FAIL: freshly written artifact failed to load",
                  file=sys.stderr)
            return 1
        # The ingested paper mirrors the user's latest publication (same
        # text and metadata, fresh id): a correct cold-start path must
        # surface it near the top of that user's feed.
        template = user.train_papers[-1]
        fresh = dataclasses.replace(template, id="smoke-ingested-paper",
                                    references=(), citation_count=0)
        index.add_paper(fresh)
        print("[5/5] querying top-10 ...")
        top = index.top_k(list(user.train_papers), k=10)
        if fresh.id not in top:
            print(f"FAIL: ingested paper not in top-10 ({top})",
                  file=sys.stderr)
            return 1
    print("serve smoke OK: exact round trip + cold-start ingestion")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    from repro import obs

    # Capture the health probe itself so latency SLOs have data even in
    # a one-shot CLI run (the load + fallback probe both record); the
    # prior obs state is restored so the CLI helper stays side-effect
    # free for embedding callers.
    was_enabled = obs.is_enabled()
    obs.configure(enabled=True)
    scheduler = None
    try:
        index = ServingIndex.from_artifact(args.dir,
                                           retry_attempts=args.retries)
        if args.wal:
            # Attach (and replay) the ingestion WAL so the report
            # carries the "wal" check and the compaction-lag SLO judges
            # the actual log size — `health --wal` exits 1 when the log
            # has grown past the lag bound.
            from repro.serve.wal import WriteAheadLog
            index.attach_wal(WriteAheadLog(args.wal),
                             lag_bound=args.wal_lag_bound)
        if args.scheduler:
            # Attach a live scheduler so the report includes the
            # "scheduler" check (queue depth, in-flight batches, shed
            # rate) exactly as a long-running server would publish it.
            from repro.serve.scheduler import BatchScheduler
            scheduler = BatchScheduler(index, max_batch=args.max_batch,
                                       max_wait_ms=args.max_wait_ms,
                                       queue_depth=args.queue_depth)
        report = index.health()
    finally:
        if scheduler is not None:
            scheduler.close()
        obs.configure(enabled=was_enabled)
    # stdout stays pure JSON (machine-readable); the per-SLO summary
    # lines go to stderr alongside any UNHEALTHY banner.
    print(json.dumps(report, indent=2, sort_keys=True))
    for status in report["slos"]:
        state = ("no data" if status["no_data"]
                 else "ok" if status["ok"] else "BREACH")
        print(f"SLO [{status['slo']}] ({status['kind']}): {state}"
              + (f" — {status['detail']}" if status["detail"] else ""),
              file=sys.stderr)
    if not report["healthy"]:
        print("UNHEALTHY: see checks above", file=sys.stderr)
        return 1
    return 0


def _default_wal(directory: str) -> str:
    """WAL path convention: a sibling of the artifact directory.

    The log must live *outside* the artifact tree — the manifest
    checksums every file under the directory, and a log that keeps
    growing after ``save_pipeline`` would fail verification on the next
    health probe.
    """
    return str(Path(directory).with_name(Path(directory).name + ".wal"))


def cmd_compact(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.serve.wal import WriteAheadLog

    was_enabled = obs.is_enabled()
    obs.configure(enabled=True)
    try:
        wal_path = args.wal or _default_wal(args.dir)
        # Attaching replays every durable record (recovering any torn
        # tail first), so the in-memory pool is exactly what a crashed
        # server would come back with — that is what gets baked in.
        index = ServingIndex.from_artifact(
            args.dir, wal=WriteAheadLog(wal_path),
            retry_attempts=args.retries, **_index_kwargs(args))
        if index.degraded:
            print(f"cannot compact: artifact at {args.dir} is unusable "
                  f"({index._degraded_reason})", file=sys.stderr)
            return 2
        summary = index.compact()
    finally:
        obs.configure(enabled=was_enabled)
    summary["wal"] = wal_path
    print(json.dumps(summary, indent=2, sort_keys=True))
    print(f"compacted {summary['records_compacted']} WAL records into "
          f"{summary['directory']} (pool of {summary['pool_size']})",
          file=sys.stderr)
    return 0


def cmd_swap(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.serve.swap import HotSwapper
    from repro.serve.wal import WriteAheadLog

    was_enabled = obs.is_enabled()
    obs.configure(enabled=True)
    try:
        task = _reload_task(args.dir)
        wal = WriteAheadLog(args.wal) if args.wal else None
        index = ServingIndex.from_artifact(args.dir, papers=task.new_papers,
                                           wal=wal,
                                           retry_attempts=args.retries,
                                           **_index_kwargs(args))
        if index.degraded:
            print(f"cannot swap: live artifact at {args.dir} is unusable "
                  f"({index._degraded_reason})", file=sys.stderr)
            return 2
        # The evaluation users double as the canary golden set — both
        # indexes answer the same queries and must mostly agree.
        for user in task.users:
            index.register_user(user.author_id, list(user.train_papers))
        swapper = HotSwapper(index, golden_k=args.k,
                             min_overlap=args.min_overlap,
                             retry_attempts=args.retries)
        report = swapper.swap(args.candidate)
    finally:
        obs.configure(enabled=was_enabled)
    print(json.dumps(report.snapshot(), indent=2, sort_keys=True))
    if report.swapped:
        print(f"swapped to {args.candidate} "
              f"({report.delta_papers} papers replayed at cutover)",
              file=sys.stderr)
        return 0
    print(f"NOT swapped ({report.outcome}): {report.error}", file=sys.stderr)
    return 1


def cmd_loadtest(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.loadgen import (LoadRunner, WorkloadMix, build_report,
                               build_schedule, write_report)
    from repro.obs import runs

    # Fit-or-load happens *before* observability capture starts, so the
    # run snapshot holds serving-and-load metrics only — training
    # counters would drown the gate in fit noise.
    task, index = _load_or_fit_index(args)
    if index.degraded:
        print("WARNING: index is degraded; load run exercises the "
              "TF-IDF fallback only", file=sys.stderr)

    obs.configure(enabled=True, reset=True)
    for user in task.users:
        index.register_user(user.author_id, list(user.train_papers))
    user_ids = [u.author_id for u in task.users]
    for user_id in user_ids:  # warm: first miss per user is not the run's
        index.top_k(user_id, k=args.k)

    schedule = build_schedule(
        user_ids, list(task.train_papers), args.requests,
        mode=args.mode, concurrency=args.concurrency, qps=args.qps,
        mix=WorkloadMix(query=args.mix_query, ingest=args.mix_ingest,
                        probe=args.mix_probe),
        k=args.k, user_order=args.user_order, seed=args.seed)
    scheduler = None
    if args.scheduler:
        from repro.serve.scheduler import BatchScheduler, SheddingGovernor
        scheduler = BatchScheduler(
            index, max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            queue_depth=args.queue_depth,
            governor=SheddingGovernor(threshold=args.shed_threshold))
    print(f"running {len(schedule)} {schedule.mode}-loop requests "
          f"(concurrency={schedule.concurrency}, seed={schedule.seed}, "
          f"scheduler={'on' if scheduler else 'off'}, "
          f"schedule sha256 {schedule.sha256()[:12]}) ...", file=sys.stderr)
    runner = LoadRunner(index, schedule, scheduler=scheduler,
                        ops_url=args.ops_url)
    try:
        summary = runner.run()
    finally:
        if scheduler is not None:
            scheduler.close()

    meta = {"seed": args.seed, "mode": args.mode,
            "concurrency": args.concurrency, "requests": args.requests,
            "k": args.k, "target_qps": args.qps,
            "index": args.index, "nprobe": args.nprobe,
            "cache_size": args.cache_size,
            "user_order": args.user_order,
            "scheduler": bool(args.scheduler),
            "schedule_sha256": schedule.sha256()}
    if scheduler is not None:
        stats = scheduler.stats()
        meta.update({"max_batch": args.max_batch,
                     "max_wait_ms": args.max_wait_ms,
                     "queue_depth": args.queue_depth})
        # Gauges so the run-registry gate sees the batched run's shape:
        # shed_rate gates lower-is-better against the committed zero
        # baseline; batches/fast hits are informational.
        obs.gauge("serve.scheduler.shed_rate", stats["shed_rate"])
        obs.gauge("serve.scheduler.batches", float(stats["batches"]))
        obs.gauge("serve.scheduler.cache_fast_hits",
                  float(stats["cache_fast_hits"]))
        print(f"scheduler: {stats['batches']} batches, "
              f"{stats['cache_fast_hits']} cache fast hits, "
              f"{stats['shed']} shed ({stats['shed_rate']:.1%})",
              file=sys.stderr)
    report = build_report(schedule, summary, runner.telemetry,
                          registry=obs.get_registry(), meta=meta)
    out = write_report(args.out, report)
    capture = Path(args.capture)
    capture.parent.mkdir(parents=True, exist_ok=True)
    obs.write_jsonl(capture)
    snapshot = runs.write_run(args.runs_dir, run_id=args.run_id, meta=meta)

    overall = report["latency"].get("overall") or {}
    fmt = lambda key: (f"{overall[key] * 1000:.2f}ms"
                       if overall.get(key) is not None else "-")
    print(f"loadtest done: {summary.completed}/{summary.scheduled} requests "
          f"in {summary.duration:.2f}s ({summary.achieved_qps:.0f} qps), "
          f"{summary.errors} errors, "
          f"p50 {fmt('p50')} / p95 {fmt('p95')} / p99 {fmt('p99')}",
          file=sys.stderr)
    print(f"report: {out}\ncapture: {capture}\nrun snapshot: {snapshot}",
          file=sys.stderr)
    print(json.dumps({"report": str(out), "capture": str(capture),
                      "run_snapshot": str(snapshot),
                      "achieved_qps": summary.achieved_qps,
                      "errors": summary.errors,
                      "schedule_sha256": schedule.sha256()}))
    return 0 if summary.errors == 0 else 1


def _load_or_fit_index(args: argparse.Namespace):
    """Fit-or-load shared by ``loadtest`` and ``serve``: (task, index)."""
    directory = Path(args.dir)
    if (directory / "manifest.json").exists():
        print(f"loading artifact from {directory} ...", file=sys.stderr)
        task = _reload_task(str(directory))
    else:
        print(f"no artifact at {directory}; fitting one "
              f"(scale={args.scale}, seed={args.seed}) ...", file=sys.stderr)
        task = _build_task(args.scale, args.seed, args.split_year, args.users)
        recommender = NPRecRecommender(_fit_config(args.seed))
        recommender.fit(task.corpus, task.train_papers, task.new_papers)
        save_pipeline(recommender, str(directory), corpus=task.corpus,
                      extra_metadata={
                          "corpus": "acm", "scale": args.scale,
                          "seed": args.seed, "split_year": args.split_year,
                          "users": args.users,
                      })
    index = ServingIndex.from_artifact(str(directory),
                                       papers=task.new_papers,
                                       cache_size=args.cache_size,
                                       **_index_kwargs(args))
    return task, index


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading
    import time

    from repro import obs
    from repro.serve.wal import WriteAheadLog

    # Ops plane first: the flight recorder is armed before anything that
    # can crash, so even a failed warmup leaves a postmortem bundle.
    obs.configure(enabled=True, reset=True)
    recorder = obs.get_flight_recorder()
    recorder.arm(args.postmortem_dir)

    task, index = _load_or_fit_index(args)
    if index.degraded:
        print("WARNING: index is degraded; serving the TF-IDF fallback only",
              file=sys.stderr)
    for user in task.users:
        index.register_user(user.author_id, list(user.train_papers))
    wal_path = args.wal or _default_wal(args.dir)
    index.attach_wal(WriteAheadLog(wal_path), lag_bound=args.wal_lag_bound)

    scheduler = None
    if args.scheduler:
        from repro.serve.scheduler import BatchScheduler, SheddingGovernor
        scheduler = BatchScheduler(
            index, max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            queue_depth=args.queue_depth,
            governor=SheddingGovernor(threshold=args.shed_threshold))

    server = obs.ObsServer(index=index, recorder=recorder,
                           host=args.host, port=args.port)
    server.start()
    # First stdout line is the machine-readable announcement CI and the
    # daemon tests parse for the (ephemeral) port; chatter goes to stderr.
    print(json.dumps({"url": server.url, "port": server.port,
                      "pid": os.getpid(), "artifact": str(args.dir),
                      "wal": wal_path,
                      "scheduler": scheduler is not None,
                      "postmortems": args.postmortem_dir}), flush=True)
    print(f"ops plane at {server.url} "
          f"(/metrics /healthz /readyz /slo /debug/vars /exemplars); "
          "SIGTERM or SIGINT to stop", file=sys.stderr)

    stop = threading.Event()

    def _signalled(signum, frame):  # noqa: ARG001 - signal signature
        print(f"received signal {signum}; draining ...", file=sys.stderr)
        stop.set()

    previous_handlers = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _signalled)
    except ValueError:
        # Not the main thread (embedded test run): --duration bounds us.
        pass
    deadline = (time.monotonic() + args.duration
                if args.duration is not None else None)
    try:
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                print(f"duration of {args.duration}s elapsed; draining ...",
                      file=sys.stderr)
                break
            stop.wait(0.2)
    finally:
        if scheduler is not None:
            # Drain barrier first so no in-flight batch straddles
            # shutdown, then release the worker threads.
            with scheduler.quiesce():
                pass
            scheduler.close()
        if args.final_postmortem:
            path = recorder.dump_postmortem(args.postmortem_dir, "shutdown")
            print(f"final postmortem: {path}", file=sys.stderr)
        server.stop()
        if index.wal is not None:
            index.wal.close()
        recorder.disarm()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    print("serve daemon stopped cleanly", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persist and serve a fitted NPRec pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    warmup = sub.add_parser("warmup", help="fit and persist a pipeline")
    warmup.add_argument("--dir", default="artifacts/serve")
    warmup.add_argument("--scale", type=float, default=0.5)
    warmup.add_argument("--seed", type=int, default=0)
    warmup.add_argument("--split-year", type=int, default=2014)
    warmup.add_argument("--users", type=int, default=12)
    _add_index_args(warmup)
    warmup.set_defaults(fn=cmd_warmup)

    query = sub.add_parser("query", help="top-K from a saved artifact")
    query.add_argument("--dir", default="artifacts/serve")
    query.add_argument("--user", default=None,
                       help="author id (defaults to the first test user)")
    query.add_argument("-k", type=int, default=10)
    _add_index_args(query)
    query.set_defaults(fn=cmd_query)

    smoke = sub.add_parser("smoke",
                           help="save/reload/ingest/query end-to-end check")
    smoke.add_argument("--dir", default=None,
                       help="artifact directory (default: temporary)")
    smoke.add_argument("--scale", type=float, default=0.35)
    smoke.add_argument("--seed", type=int, default=7)
    smoke.set_defaults(fn=cmd_smoke)

    health = sub.add_parser(
        "health", help="artifact + index health checks, exit 1 on unhealthy")
    health.add_argument("--dir", default="artifacts/serve")
    health.add_argument("--retries", type=int, default=3,
                        help="artifact load attempts before degrading")
    health.add_argument("--wal", default=None,
                        help="ingestion WAL to attach; the report then "
                             "includes the wal check and the "
                             "serve.wal.lag SLO")
    health.add_argument("--wal-lag-bound", type=int, default=10_000,
                        help="max WAL records before the lag SLO breaches")
    _add_scheduler_args(health)
    health.set_defaults(fn=cmd_health)

    compact = sub.add_parser(
        "compact",
        help="replay the ingestion WAL into the artifact and truncate it")
    compact.add_argument("--dir", default="artifacts/serve")
    compact.add_argument("--wal", default=None,
                         help="WAL path (default: <dir>.wal, beside the "
                              "artifact — never inside it)")
    compact.add_argument("--retries", type=int, default=3)
    _add_index_args(compact)
    compact.set_defaults(fn=cmd_compact)

    swap = sub.add_parser(
        "swap",
        help="canary-validated zero-downtime swap to a retrained artifact")
    swap.add_argument("--dir", default="artifacts/serve",
                      help="live artifact directory")
    swap.add_argument("--candidate", required=True,
                      help="retrained artifact directory to adopt")
    swap.add_argument("--wal", default=None,
                      help="live ingestion WAL to attach before swapping")
    swap.add_argument("-k", type=int, default=10,
                      help="canary query depth (overlap@k)")
    swap.add_argument("--min-overlap", type=float, default=0.6,
                      help="mean canary overlap@k floor; below it the "
                           "swap rolls back")
    swap.add_argument("--retries", type=int, default=3)
    _add_index_args(swap)
    swap.set_defaults(fn=cmd_swap)

    loadtest = sub.add_parser(
        "loadtest",
        help="seeded closed/open-loop load run writing BENCH_serve_load.json")
    loadtest.add_argument("--dir", default="artifacts/serve",
                          help="artifact directory (loaded when present, "
                               "fitted and persisted otherwise)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="workload (and fit, when fitting) seed")
    loadtest.add_argument("--requests", type=int, default=300)
    loadtest.add_argument("--mode", choices=("closed", "open"),
                          default="closed")
    loadtest.add_argument("--concurrency", type=int, default=4)
    loadtest.add_argument("--qps", type=float, default=None,
                          help="open-loop target arrival rate")
    loadtest.add_argument("-k", type=int, default=10)
    loadtest.add_argument("--mix-query", type=float, default=0.90)
    loadtest.add_argument("--mix-ingest", type=float, default=0.04)
    loadtest.add_argument("--mix-probe", type=float, default=0.06)
    loadtest.add_argument("--scale", type=float, default=0.3,
                          help="corpus scale when fitting a fresh artifact")
    loadtest.add_argument("--split-year", type=int, default=2014)
    loadtest.add_argument("--users", type=int, default=12)
    loadtest.add_argument("--cache-size", type=int, default=128,
                          help="serving LRU capacity; size it below the "
                               "distinct (user, k) working set to benchmark "
                               "the rank hot path instead of the cache")
    loadtest.add_argument("--user-order", choices=("random", "round_robin"),
                          default="random",
                          help="query user selection: 'random' draws "
                               "uniform i.i.d. picks (organic traffic), "
                               "'round_robin' scans users in registration "
                               "order (digest-style batch workload; every "
                               "query misses an undersized LRU)")
    loadtest.add_argument("--out", default="results/BENCH_serve_load.json")
    loadtest.add_argument("--capture", default="results/obs/serve_load.jsonl")
    loadtest.add_argument("--runs-dir", default="results/obs/runs")
    loadtest.add_argument("--run-id", default="serve_load",
                          help="run-registry snapshot id (fixed so CI can "
                               "gate against the committed baseline)")
    loadtest.add_argument("--ops-url", default=None,
                          help="base URL of a live ops plane (see the "
                               "serve command); the runner scrapes "
                               "/metrics and /healthz at every SLO "
                               "sample and records scrape latency")
    _add_index_args(loadtest)
    _add_scheduler_args(loadtest, shed_threshold=True)
    loadtest.set_defaults(fn=cmd_loadtest)

    serve = sub.add_parser(
        "serve",
        help="long-running serving daemon with the embedded HTTP ops "
             "plane (/metrics, /healthz, /readyz, /slo, /debug/vars, "
             "/exemplars) and an armed flight recorder")
    serve.add_argument("--dir", default="artifacts/serve",
                       help="artifact directory (loaded when present, "
                            "fitted and persisted otherwise)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="ops-plane port (0: ephemeral; read it from "
                            "the first stdout JSON line)")
    serve.add_argument("--wal", default=None,
                       help="ingestion WAL path (default: <dir>.wal)")
    serve.add_argument("--wal-lag-bound", type=int, default=10_000)
    serve.add_argument("--duration", type=float, default=None,
                       help="stop after this many seconds (default: run "
                            "until SIGTERM/SIGINT)")
    serve.add_argument("--postmortem-dir", default="results/postmortems",
                       help="where flight-recorder crash bundles land")
    serve.add_argument("--final-postmortem", action="store_true",
                       help="dump a postmortem bundle on clean shutdown "
                            "too (postmortem-on-demand)")
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--split-year", type=int, default=2014)
    serve.add_argument("--users", type=int, default=12)
    serve.add_argument("--cache-size", type=int, default=128)
    _add_index_args(serve)
    _add_scheduler_args(serve, shed_threshold=True)
    serve.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
