"""Micro-batching request scheduler with admission control.

One-query-at-a-time :meth:`ServingIndex.top_k` serialises every request
behind ``_serve_lock`` — the dominant serving bottleneck once the
closed-loop load generator (PR 6) pushes concurrent traffic.
:class:`BatchScheduler` coalesces concurrent queries into single
batched matrix passes on the rank hot path (the ``BatchPairScorer``
pattern applied to serving): requests admit into a bounded queue, a
background flusher drains them in batches of up to ``max_batch`` —
flushing early the moment a batch fills, and no later than
``max_wait_ms`` after the oldest request arrived — and each batch runs
through :meth:`ServingIndex.batch_top_k`, which releases the serving
lock during the pure-numpy scoring phase. Batched answers are
bit-identical to serial execution (ids *and* scores); the equivalence
suite in ``tests/serve/test_scheduler.py`` proves it rather than
assuming it.

Admission control is three-tiered, cheapest first:

1. **Cache fast path** — a query whose ``(user, k)`` is in the LRU
   cache resolves immediately (no queue slot, no batch, no shedding),
   via :meth:`ServingIndex.cached_top_k`.
2. **SLO governor** — when the recent latency window burns the
   configured budget (:class:`SheddingGovernor`), new misses shed to
   the TF-IDF degraded path (``reason="slo_burn"``) instead of piling
   onto a queue that is already too slow. Shedding stops by itself
   once the window ages out.
3. **Bounded queue** — a full admission queue sheds the overflow
   (``reason="queue_full"``) rather than growing without bound.

Every shed is counted (``serve.shed{reason=...}``) and logged as an
``obs.event`` carrying the request's trace id; batch shape lands in the
``serve.batch.size`` / ``serve.batch.wait`` histograms. ``health()``
reports the attached scheduler's queue depth, in-flight batches, and
shed rate, and turns unhealthy when the queue saturates.

Deterministic testing: pass ``start=False`` plus a
:class:`repro.obs.testing.FakeClock` and drive flushes explicitly with
:meth:`BatchScheduler.pump` — the flush policy becomes a pure function
of the clock, with no background thread racing the assertions.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Callable, Sequence

from repro import obs
from repro.data.schema import Paper
from repro.serve.index import BatchQueryResult, ServingIndex


class SheddingGovernor:
    """Sliding-window latency burn detector driving load-shedding.

    Tracks whether recent request latencies burn the SLO budget: each
    recorded sample is flagged against *threshold* (defaulting to the
    serving query p99 objective, 250ms), and :meth:`burning` trips once
    more than ``budget`` of the samples inside the trailing ``window``
    seconds are over it — with at least ``min_samples`` of evidence, so
    one slow cold-start query cannot shed traffic on its own. Recovery
    is passive: samples age out of the window and shedding stops.

    Thread-safe; the *clock* is injectable
    (:class:`repro.obs.testing.FakeClock`) so burn and recovery are
    deterministic under test.
    """

    def __init__(self, threshold: float = 0.25, window: float = 5.0,
                 budget: float = 0.05, min_samples: int = 20,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if not 0.0 <= budget < 1.0:
            raise ValueError(f"budget must be in [0, 1), got {budget}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.threshold = float(threshold)
        self.window = float(window)
        self.budget = float(budget)
        self.min_samples = int(min_samples)
        self._clock = clock
        self._samples: "deque[tuple[float, bool]]" = deque()
        self._lock = threading.Lock()

    def record(self, latency: float) -> None:
        """Feed one served-request latency (seconds) into the window."""
        now = self._clock()
        with self._lock:
            self._samples.append((now, latency > self.threshold))
            self._prune(now)

    def burning(self) -> bool:
        """True while the trailing window exceeds the over-budget rate."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            if len(self._samples) < self.min_samples:
                return False
            over = sum(1 for _, slow in self._samples if slow)
            return over / len(self._samples) > self.budget

    def _prune(self, now: float) -> None:
        while self._samples and self._samples[0][0] < now - self.window:
            self._samples.popleft()


class Ticket:
    """One admitted request: a future resolved by a batch flush.

    Created by :meth:`BatchScheduler.submit`; :meth:`result` blocks the
    submitting thread until the batch carrying the request flushes (or
    the request resolves immediately — cache fast path, shed, or
    validation error).
    """

    __slots__ = ("user", "k", "enqueued", "trace_id", "event", "ids",
                 "scores", "pool_version", "cache", "degraded_reason",
                 "shed", "shed_reason", "error")

    def __init__(self, user: "str | Sequence[Paper]", k: int,
                 enqueued: float, trace_id: str | None) -> None:
        self.user = user
        self.k = k
        self.enqueued = enqueued
        self.trace_id = trace_id
        self.event = threading.Event()
        self.ids: list[str] = []
        self.scores = None
        self.pool_version = -1
        self.cache = "miss"
        self.degraded_reason: str | None = None
        self.shed = False
        self.shed_reason: str | None = None
        self.error: Exception | None = None

    @property
    def done(self) -> bool:
        """True once the request has resolved (successfully or not)."""
        return self.event.is_set()

    def result(self, timeout: float | None = None) -> "Ticket":
        """Wait for resolution; re-raise a per-request failure.

        Returns ``self`` so callers can read ``ids`` / ``scores`` /
        ``pool_version`` / ``cache`` in one expression. Raises
        :class:`TimeoutError` when *timeout* elapses first, or the
        stored per-request error (unknown user, bad ``k``, injected
        batch failure) when there is one.
        """
        if not self.event.wait(timeout):
            raise TimeoutError(
                f"request for user {self.user!r} did not resolve "
                f"within {timeout}s")
        if self.error is not None:
            raise self.error
        return self

    def _resolve(self, res: BatchQueryResult) -> None:
        self.ids = res.ids
        self.scores = res.scores
        self.pool_version = res.pool_version
        self.cache = res.cache
        self.degraded_reason = res.degraded_reason
        self.error = res.error
        self.event.set()

    def _fail(self, exc: Exception) -> None:
        self.error = exc
        self.event.set()


class BatchScheduler:
    """Threaded micro-batching front end for a :class:`ServingIndex`.

    Parameters
    ----------
    index:
        The serving index to batch over. The scheduler attaches itself
        (:meth:`ServingIndex.attach_scheduler`) so ``health()`` reports
        its state, and detaches on :meth:`close`.
    max_batch:
        Requests per flush; a batch this full flushes immediately.
    max_wait_ms:
        Ceiling on how long an admitted request waits for co-riders: a
        lone request flushes once it has waited this long.
    queue_depth:
        Bound on admitted-but-unflushed requests; overflow sheds to the
        TF-IDF degraded path (``reason="queue_full"``).
    governor:
        The :class:`SheddingGovernor` deciding SLO-burn shedding; a
        default one (250ms threshold, 5s window) is built when omitted.
    clock:
        Injectable monotonic time source (shared with the governor only
        if the caller wires it into both).
    start:
        When True (default) a daemon flusher thread drains the queue.
        ``start=False`` runs in *manual* mode for deterministic tests:
        nothing flushes until :meth:`pump` is called.
    """

    def __init__(self, index: ServingIndex, *, max_batch: int = 8,
                 max_wait_ms: float = 2.0, queue_depth: int = 64,
                 governor: SheddingGovernor | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 start: bool = True) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self._index = index
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.queue_depth = int(queue_depth)
        self.governor = governor if governor is not None else \
            SheddingGovernor(clock=clock)
        self._clock = clock
        self._queue: "deque[Ticket]" = deque()
        self._cv = threading.Condition()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._stopping = False
        self._quiesced = False
        self._in_flight = 0
        self._submitted = 0
        self._batches = 0
        self._fast_hits = 0
        self._shed_count = 0
        self._shed_by_reason: dict[str, int] = {}
        index.attach_scheduler(self)
        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-scheduler", daemon=True)
            self._thread.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, user: "str | Sequence[Paper]", k: int = 10) -> Ticket:
        """Admit one query; returns a :class:`Ticket` future.

        Resolution order: LRU-cache hits resolve immediately without a
        queue slot; then the SLO governor may shed
        (``reason="slo_burn"``); then a full queue sheds
        (``reason="queue_full"``); otherwise the request queues for the
        next batch flush.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        hit = self._index.cached_top_k(user, k)
        if hit is not None:
            ticket = Ticket(user, k, self._clock(), obs.current_trace_id())
            with self._stats_lock:
                self._submitted += 1
                self._fast_hits += 1
            ticket._resolve(hit)
            return ticket
        with self._stats_lock:
            self._submitted += 1
        if self.governor.burning():
            return self._shed(user, k, "slo_burn")
        with self._cv:
            # A quiesce barrier (hot swap in progress) parks new misses
            # here until the barrier lifts: the request is neither
            # failed nor shed, it just answers against whichever index
            # state wins the swap.
            while self._quiesced and not self._closed:
                self._cv.wait(timeout=0.05)
            # Re-checked under the lock: a submit racing close() must
            # not enqueue a ticket after the flusher drained and exited
            # — that ticket would never resolve.
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if len(self._queue) < self.queue_depth:
                ticket = Ticket(user, k, self._clock(),
                                obs.current_trace_id())
                self._queue.append(ticket)
                self._cv.notify()
                return ticket
        # Shed outside the condition lock: the TF-IDF fallback rank is
        # real work and must not block admissions or the flusher.
        return self._shed(user, k, "queue_full")

    def query(self, user: "str | Sequence[Paper]", k: int = 10) -> list[str]:
        """Blocking drop-in for :meth:`ServingIndex.top_k`."""
        return self.submit(user, k).result().ids

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------
    def _shed(self, user: "str | Sequence[Paper]", k: int,
              reason: str) -> Ticket:
        ticket = Ticket(user, k, self._clock(), obs.current_trace_id())
        with self._stats_lock:
            self._shed_count += 1
            self._shed_by_reason[reason] = \
                self._shed_by_reason.get(reason, 0) + 1
        try:
            # A request span (joining any enclosing trace) so the shed
            # event — and the fallback answer's spans — carry a trace id
            # a capture can join back to the individual occurrence.
            with obs.request("serve.shed", reason=reason) as span:
                obs.count("serve.shed", reason=reason)
                obs.event("serve.shed", reason=reason)
                res = self._index.shed_rank(user, k)
                if ticket.trace_id is None:
                    ticket.trace_id = span.trace_id
        except (KeyError, ValueError) as exc:
            ticket._fail(exc)
            return ticket
        ticket.shed = True
        ticket.shed_reason = reason
        ticket._resolve(res)
        # Shed latencies deliberately do NOT feed the governor: the
        # fallback is fast, and counting it would end a burn episode
        # before the *model* path has demonstrably recovered.
        return ticket

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._wait_for_batch()
            if batch is None:
                return
            self._execute(batch)

    def _wait_for_batch(self) -> "list[Ticket] | None":
        with self._cv:
            while True:
                if self._stopping and not self._queue:
                    return None
                if self._queue:
                    now = self._clock()
                    age = now - self._queue[0].enqueued
                    if (len(self._queue) >= self.max_batch
                            or self._stopping or self._quiesced
                            or age >= self.max_wait):
                        return self._take_locked()
                    self._cv.wait(timeout=max(self.max_wait - age, 1e-4))
                else:
                    self._cv.wait(timeout=0.05)

    def _take_locked(self) -> list[Ticket]:
        batch = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        if batch:
            # Counted in flight while the queue lock is still held, so
            # a quiesce barrier can never observe "queue empty, nothing
            # in flight" in the gap between a batch being taken off the
            # queue and _execute starting on it.
            with self._stats_lock:
                self._in_flight += 1
        return batch

    def pump(self) -> int:
        """Manual-mode flush: run one due batch, return its size.

        Takes a batch only when the flush policy says one is due — the
        queue holds ``max_batch`` requests, the oldest has waited
        ``max_wait_ms``, or the scheduler is draining — so FakeClock
        tests exercise the real policy, not a test-only shortcut.
        Returns 0 when nothing is due.
        """
        with self._cv:
            if not self._queue:
                return 0
            age = self._clock() - self._queue[0].enqueued
            if not (len(self._queue) >= self.max_batch
                    or self._stopping or self._quiesced
                    or age >= self.max_wait):
                return 0
            batch = self._take_locked()
        self._execute(batch)
        return len(batch)

    def _execute(self, batch: "list[Ticket]") -> None:
        # _in_flight was incremented in _take_locked (under _cv), so the
        # batch is visible to a quiesce barrier for its whole lifetime.
        try:
            now = self._clock()
            obs.observe("serve.batch.size", float(len(batch)))
            for ticket in batch:
                obs.observe("serve.batch.wait", now - ticket.enqueued)
            try:
                with obs.trace("serve.batch.flush", size=len(batch)):
                    results = self._index.batch_top_k(
                        [(t.user, t.k) for t in batch])
            except Exception as exc:  # the flusher must never die
                for ticket in batch:
                    ticket._fail(exc)
                return
            done = self._clock()
            for ticket, res in zip(batch, results):
                latency = done - ticket.enqueued
                if res.error is None:
                    self.governor.record(latency)
                    ServingIndex._observe_latency(
                        "serve.query", latency,
                        trace_id=ticket.trace_id, cache=res.cache)
                ticket._resolve(res)
        finally:
            with self._stats_lock:
                self._in_flight -= 1
                self._batches += 1

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready scheduler state (feeds ``health()``)."""
        with self._cv:
            depth = len(self._queue)
        with self._stats_lock:
            submitted = self._submitted
            shed = self._shed_count
            by_reason = dict(self._shed_by_reason)
            in_flight = self._in_flight
            batches = self._batches
            fast_hits = self._fast_hits
        return {
            "queue_depth": depth,
            "queue_capacity": self.queue_depth,
            "in_flight": in_flight,
            "submitted": submitted,
            "batches": batches,
            "cache_fast_hits": fast_hits,
            "shed": shed,
            "shed_by_reason": by_reason,
            "shed_rate": (shed / submitted) if submitted else 0.0,
            "shedding": self.governor.burning(),
            "quiesced": self._quiesced,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1000.0,
        }

    @contextlib.contextmanager
    def quiesce(self, timeout: float = 30.0):
        """Drain barrier: no request is mid-batch while the body runs.

        Needed because :meth:`ServingIndex.batch_top_k` scores *outside*
        the serving lock and re-reads index internals (``_ids``) at
        publish time — an index whose internals are swapped mid-batch
        could pair old-matrix positions with new ids. Holding
        ``_serve_lock`` alone cannot exclude that; the barrier can.

        On entry: new cache-missing submits park (un-failed, un-shed)
        until the barrier lifts; the flusher drains the already-admitted
        queue immediately (a quiesce makes every queued request "due");
        the barrier then waits until the queue is empty and no batch is
        in flight. In manual mode (``start=False``) the queue is drained
        inline. Cache hits and governor sheds keep flowing throughout —
        they never read the internals a swap replaces mid-computation.

        Raises :class:`TimeoutError` when the drain does not settle
        within *timeout* seconds (the barrier is lifted first).
        """
        with self._cv:
            self._quiesced = True
            self._cv.notify_all()
        try:
            if self._thread is None:
                while True:
                    with self._cv:
                        batch = self._take_locked()
                    if not batch:
                        break
                    self._execute(batch)
            deadline = time.monotonic() + timeout
            while True:
                with self._cv:
                    empty = not self._queue
                # Bare int read on purpose: taking _stats_lock here
                # while polling under the barrier would order-invert
                # against _take_locked's _cv -> _stats_lock.
                if empty and self._in_flight == 0:
                    break
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"scheduler did not quiesce within {timeout}s "
                        f"(queue={len(self._queue)}, "
                        f"in_flight={self._in_flight})")
                time.sleep(0.001)
            yield self
        finally:
            with self._cv:
                self._quiesced = False
                self._cv.notify_all()

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and settle every admitted request.

        ``drain=True`` (default) flushes the remaining queue through
        the index; ``drain=False`` fails queued tickets with
        :class:`RuntimeError` instead. Idempotent. Detaches from the
        index either way.
        """
        with self._cv:
            already = self._closed
            self._closed = True
            self._stopping = True
            rejected: list[Ticket] = []
            if not drain:
                rejected = list(self._queue)
                self._queue.clear()
            self._cv.notify_all()
        for ticket in rejected:
            ticket._fail(RuntimeError("scheduler closed before flush"))
        if already:
            return
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        else:
            while self.pump():
                pass
        self._index.detach_scheduler(self)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
